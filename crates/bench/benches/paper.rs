//! Criterion micro-benchmarks, one group per table/figure family.
//!
//! These complement the `src/bin/*` harnesses (which print the full
//! tables): Criterion tracks the hot kernels behind each experiment so
//! regressions in the fast operators, the codec loop or the simulator are
//! visible as timing changes.

use criterion::{criterion_group, criterion_main, Criterion};
use nvc_baseline::{HybridCodec, Profile};
use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::Dataflow;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};
use nvc_video::metrics::{ms_ssim, psnr};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;
use std::hint::black_box;

/// Fig. 8 / Table I hot path: codec rate points.
fn bench_rd_points(c: &mut Criterion) {
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 2)).generate();
    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).expect("config");
    let hybrid = HybridCodec::new(Profile::hevc_like());
    let mut g = c.benchmark_group("table1_fig8_rd");
    g.sample_size(10);
    g.bench_function("ctvc_encode_48x32x2", |b| {
        b.iter(|| black_box(ctvc.encode(&seq, RatePoint::new(1)).expect("encode")))
    });
    let coded = ctvc.encode(&seq, RatePoint::new(1)).expect("encode");
    g.bench_function("ctvc_decode_48x32x2", |b| {
        b.iter(|| black_box(ctvc.decode(&coded.bitstream).expect("decode")))
    });
    g.bench_function("hevc_like_encode_48x32x2", |b| {
        b.iter(|| black_box(hybrid.encode(&seq, 24).expect("encode")))
    });
    let hc = hybrid.encode(&seq, 24).expect("encode");
    g.bench_function("hevc_like_decode_48x32x2", |b| {
        b.iter(|| black_box(hybrid.decode(&hc.bitstream).expect("decode")))
    });
    g.finish();
}

/// §III-B fast algorithms: transform-domain operators vs direct.
fn bench_fastalg(c: &mut Criterion) {
    let x = Tensor::from_fn(Shape::new(1, 12, 48, 48), |_, ch, y, xx| {
        ((ch + y + xx) as f32 * 0.37).sin()
    });
    let conv = Conv2d::randn(12, 12, 3, 1, 1, 1).expect("conv");
    let wino = FastConv2d::from_conv(&conv).expect("fast");
    let wino_sparse =
        FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5).expect("rho")).expect("sparse");
    let deconv = DeConv2d::randn(12, 12, 4, 2, 1, 2).expect("deconv");
    let fta = FastDeConv2d::from_deconv(&deconv).expect("fast");
    let mut g = c.benchmark_group("ablation_fastalg");
    g.bench_function("direct_conv3x3_12ch_48", |b| {
        b.iter(|| black_box(conv.forward(&x).expect("fwd")))
    });
    g.bench_function("winograd_dense_12ch_48", |b| {
        b.iter(|| black_box(wino.forward(&x).expect("fwd")))
    });
    g.bench_function("winograd_sparse50_12ch_48", |b| {
        b.iter(|| black_box(wino_sparse.forward(&x).expect("fwd")))
    });
    g.bench_function("direct_deconv4x4_12ch_48", |b| {
        b.iter(|| black_box(deconv.forward(&x).expect("fwd")))
    });
    g.bench_function("fta_dense_12ch_48", |b| {
        b.iter(|| black_box(fta.forward(&x).expect("fwd")))
    });
    g.finish();
}

/// Table II / Fig. 9 hot path: the cycle-level simulator at 1080p.
fn bench_simulator(c: &mut Criterion) {
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("design");
    let wl = nvca.decoder_workload(1088, 1920);
    let mut g = c.benchmark_group("table2_fig9_simulator");
    g.bench_function("simulate_1080p_chained", |b| {
        b.iter(|| black_box(nvca.simulator().run(&wl, Dataflow::Chained)))
    });
    g.bench_function("simulate_1080p_layer_by_layer", |b| {
        b.iter(|| black_box(nvca.simulator().run(&wl, Dataflow::LayerByLayer)))
    });
    g.finish();
}

/// Fig. 8 metric kernels: PSNR and MS-SSIM.
fn bench_metrics(c: &mut Criterion) {
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(96, 64, 2)).generate();
    let (a, b2) = (&seq.frames()[0], &seq.frames()[1]);
    let mut g = c.benchmark_group("fig8_metrics");
    g.bench_function("psnr_96x64", |b| b.iter(|| black_box(psnr(a, b2).expect("psnr"))));
    g.bench_function("ms_ssim_96x64", |b| {
        b.iter(|| black_box(ms_ssim(a, b2).expect("ms-ssim")))
    });
    g.finish();
}

criterion_group!(benches, bench_rd_points, bench_fastalg, bench_simulator, bench_metrics);
criterion_main!(benches);
