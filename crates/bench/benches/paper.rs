//! Micro-benchmarks, one group per table/figure family, on a small
//! self-contained timing harness (`harness = false`; no external
//! benchmarking crates are available in the build environment).
//!
//! These complement the `src/bin/*` harnesses (which print the full
//! tables): they track the hot kernels behind each experiment so
//! regressions in the fast operators, the codec loop or the simulator are
//! visible as timing changes. Run with `cargo bench -p nvc-bench`.

use nvc_baseline::{HybridCodec, Profile};
use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::Dataflow;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};
use nvc_video::metrics::{ms_ssim, psnr};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` adaptively: warm up, then run enough iterations to fill
/// ~200 ms, and report the median of 5 batches.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    // Warm-up + calibration.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(100));
    let iters = (Duration::from_millis(40).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let med = samples[samples.len() / 2];
    let (val, unit) = if med >= 1.0 {
        (med, "s ")
    } else if med >= 1e-3 {
        (med * 1e3, "ms")
    } else {
        (med * 1e6, "µs")
    };
    println!("{group:<24} {name:<34} {val:>10.2} {unit}/iter  ({iters} iters x 5)");
}

/// Fig. 8 / Table I hot path: codec rate points.
fn bench_rd_points() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 2)).generate();
    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).expect("config");
    let hybrid = HybridCodec::new(Profile::hevc_like());
    let g = "table1_fig8_rd";
    bench(g, "ctvc_encode_48x32x2", || {
        black_box(ctvc.encode(&seq, RatePoint::new(1)).expect("encode"));
    });
    let coded = ctvc.encode(&seq, RatePoint::new(1)).expect("encode");
    bench(g, "ctvc_decode_48x32x2", || {
        black_box(ctvc.decode(&coded.bitstream).expect("decode"));
    });
    bench(g, "hevc_like_encode_48x32x2", || {
        black_box(hybrid.encode(&seq, 24).expect("encode"));
    });
    let hc = hybrid.encode(&seq, 24).expect("encode");
    bench(g, "hevc_like_decode_48x32x2", || {
        black_box(hybrid.decode(&hc.bitstream).expect("decode"));
    });
}

/// §III-B fast algorithms: transform-domain operators vs direct.
fn bench_fastalg() {
    let x = Tensor::from_fn(Shape::new(1, 12, 48, 48), |_, ch, y, xx| {
        ((ch + y + xx) as f32 * 0.37).sin()
    });
    let conv = Conv2d::randn(12, 12, 3, 1, 1, 1).expect("conv");
    let wino = FastConv2d::from_conv(&conv).expect("fast");
    let wino_sparse =
        FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5).expect("rho")).expect("sparse");
    let deconv = DeConv2d::randn(12, 12, 4, 2, 1, 2).expect("deconv");
    let fta = FastDeConv2d::from_deconv(&deconv).expect("fast");
    let g = "ablation_fastalg";
    bench(g, "direct_conv3x3_12ch_48", || {
        black_box(conv.forward(&x).expect("fwd"));
    });
    bench(g, "winograd_dense_12ch_48", || {
        black_box(wino.forward(&x).expect("fwd"));
    });
    bench(g, "winograd_sparse50_12ch_48", || {
        black_box(wino_sparse.forward(&x).expect("fwd"));
    });
    bench(g, "direct_deconv4x4_12ch_48", || {
        black_box(deconv.forward(&x).expect("fwd"));
    });
    bench(g, "fta_dense_12ch_48", || {
        black_box(fta.forward(&x).expect("fwd"));
    });
}

/// Table II / Fig. 9 hot path: the cycle-level simulator at 1080p.
fn bench_simulator() {
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("design");
    let wl = nvca.decoder_workload(1088, 1920);
    let g = "table2_fig9_simulator";
    bench(g, "simulate_1080p_chained", || {
        black_box(nvca.simulator().run(&wl, Dataflow::Chained));
    });
    bench(g, "simulate_1080p_layer_by_layer", || {
        black_box(nvca.simulator().run(&wl, Dataflow::LayerByLayer));
    });
}

/// Fig. 8 metric kernels: PSNR and MS-SSIM.
fn bench_metrics() {
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(96, 64, 2)).generate();
    let (a, b2) = (&seq.frames()[0], &seq.frames()[1]);
    let g = "fig8_metrics";
    bench(g, "psnr_96x64", || {
        black_box(psnr(a, b2).expect("psnr"));
    });
    bench(g, "ms_ssim_96x64", || {
        black_box(ms_ssim(a, b2).expect("ms-ssim"));
    });
}

fn main() {
    println!("{:<24} {:<34} {:>14}", "group", "benchmark", "median");
    bench_rd_points();
    bench_fastalg();
    bench_simulator();
    bench_metrics();
}
