//! Regenerates **Table I**: BDBR(%) against the H.265-like anchor, for
//! PSNR and MS-SSIM, on the three dataset presets.

#![forbid(unsafe_code)]

use nvc_bench::{dataset_presets, fmt_bd, msssim_curve, psnr_curve, rd_sweep, LadderCodec};
use nvc_video::bdrate::bd_rate;
use nvc_video::synthetic::Synthesizer;

fn main() {
    println!("=== Table I: BDBR(%) vs H.265-like anchor (negative = rate savings) ===");
    println!("Paper reference (UVG, PSNR): H.264 +35.27, DVC +8.45, FVC -28.71,");
    println!("  DCVC -35.00, CTVC FP -36.62, FXP -35.91, Sparse -35.19\n");

    let presets = dataset_presets();
    let sequences: Vec<_> = presets
        .iter()
        .map(|(name, cfg)| (*name, Synthesizer::new(cfg.clone()).generate()))
        .collect();

    // Anchor curves per dataset.
    let anchors: Vec<_> = sequences
        .iter()
        .map(|(name, seq)| {
            eprintln!("[anchor] {name}");
            (name, rd_sweep(LadderCodec::HevcLike, seq))
        })
        .collect();

    println!(
        "{:<22} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "codec", "UVG/PSNR", "HB/PSNR", "MCL/PSNR", "UVG/SSIM", "HB/SSIM", "MCL/SSIM"
    );
    for codec in LadderCodec::all() {
        let mut psnr_cols = Vec::new();
        let mut ssim_cols = Vec::new();
        for (i, (name, seq)) in sequences.iter().enumerate() {
            eprintln!("[{}] {name}", codec.label());
            let samples = rd_sweep(codec, seq);
            let anchor = &anchors[i].1;
            psnr_cols.push(fmt_bd(bd_rate(&psnr_curve(anchor), &psnr_curve(&samples))));
            ssim_cols.push(fmt_bd(bd_rate(
                &msssim_curve(anchor),
                &msssim_curve(&samples),
            )));
        }
        println!(
            "{:<22} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
            codec.label(),
            psnr_cols[0],
            psnr_cols[1],
            psnr_cols[2],
            ssim_cols[0],
            ssim_cols[1],
            ssim_cols[2]
        );
    }
    println!("\nShape check (see EXPERIMENTS.md E1): the classical generation gap and");
    println!("the learned-ladder ordering (DVC > FVC > CTVC in BDBR) reproduce; the");
    println!("absolute learned-vs-anchor sign does not — analytic (untrained) weights");
    println!("cap the learned codecs' quality ceiling, so their BDBR vs the anchor is");
    println!("positive even though their P-frames cost a fraction of the anchor's.");
    println!("'n/a' marks curve pairs whose distortion ranges do not overlap.");
}
