//! Ablation **E8**: input-buffer bank count vs off-chip traffic and fps —
//! why the paper's Fig. 7 input buffer has 10 banks.

#![forbid(unsafe_code)]

use nvc_model::CtvcConfig;
use nvc_sim::{Dataflow, NvcaConfig};
use nvca::Nvca;

fn main() {
    println!("=== Ablation: input-buffer banking vs off-chip traffic (1080p) ===\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10}",
        "banks", "SRAM KB", "baseline MB", "chained MB", "fps"
    );
    for banks in [2usize, 4, 6, 8, 10, 12, 16] {
        let mut hw = NvcaConfig::paper();
        hw.input_banks = banks;
        let nvca = Nvca::new(CtvcConfig::ctvc_sparse(36), hw.clone()).expect("design");
        let base = nvca.simulate_decode(1088, 1920, Dataflow::LayerByLayer);
        let chained = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
        println!(
            "{:>6} {:>12} {:>14.2} {:>14.2} {:>10.1}",
            banks,
            hw.total_sram_bytes() / 1024,
            base.dram_bytes as f64 / 1e6,
            chained.dram_bytes as f64 / 1e6,
            chained.fps
        );
    }
    println!("\nShape check: chaining benefit saturates around 10 banks — the row");
    println!("footprint of one T3(6x6,4x4) fast deconvolution chain (paper Fig. 7).");
}
