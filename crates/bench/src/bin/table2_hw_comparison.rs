//! Regenerates **Table II**: comparison with other pixel-processing
//! accelerators. Cited rows carry the paper's published numbers; the
//! "NVCA (this repo)" row comes from the cycle-level simulator; the CPU
//! row is additionally re-measured on this machine.

#![forbid(unsafe_code)]

use nvc_bench::BENCH_N;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::comparators::{cited_rows, Provenance};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;
use std::time::Instant;

fn measured_cpu_gops() -> f64 {
    // Measure real decode throughput of this machine on a small frame and
    // convert to GOPS via the workload's direct-equivalent MACs.
    let (w, h, frames) = (96usize, 64usize, 3usize);
    let seq = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();
    let cfg = CtvcConfig::ctvc_fp(BENCH_N);
    let codec = CtvcCodec::new(cfg.clone()).expect("valid config");
    let coded = codec.encode(&seq, RatePoint::new(1)).expect("encode");
    let t0 = Instant::now();
    let _ = codec.decode(&coded.bitstream).expect("decode");
    let secs = t0.elapsed().as_secs_f64();
    let graph = nvc_model::decoder_graph(&cfg, h, w);
    let macs_per_frame: u64 = graph.iter().map(|l| l.macs()).sum();
    let total_ops = 2.0 * macs_per_frame as f64 * (frames - 1) as f64;
    total_ops / secs / 1e9
}

fn main() {
    println!("=== Table II: comparison with other accelerators ===\n");
    println!(
        "{:<18} {:>5} {:>6} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}  provenance",
        "platform", "nm", "MHz", "precision", "gates M", "SRAM KB", "power W", "GOPS", "GOPS/W"
    );
    let fmt_opt = |v: Option<f64>| v.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into());
    for row in cited_rows() {
        println!(
            "{:<18} {:>5} {:>6.0} {:>10} {:>8} {:>8} {:>8.2} {:>10.1} {:>10.1}  {}",
            row.name,
            row.technology_nm,
            row.freq_mhz,
            row.precision,
            fmt_opt(row.gate_count_m),
            fmt_opt(row.sram_kb),
            row.power_w,
            row.throughput_gops,
            row.gops_per_watt(),
            match row.provenance {
                Provenance::Cited => "cited",
                Provenance::Reproduced => "reproduced",
            }
        );
    }

    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("paper design");
    let row = nvca.table2_row();
    println!(
        "{:<18} {:>5} {:>6.0} {:>10} {:>8} {:>8} {:>8.2} {:>10.1} {:>10.1}  reproduced (simulator)",
        row.name,
        row.technology_nm,
        row.freq_mhz,
        row.precision,
        fmt_opt(row.gate_count_m),
        fmt_opt(row.sram_kb),
        row.power_w,
        row.throughput_gops,
        row.gops_per_watt()
    );

    eprintln!("\nmeasuring local CPU throughput...");
    let cpu_gops = measured_cpu_gops();
    println!(
        "{:<18} {:>5} {:>6} {:>10} {:>8} {:>8} {:>8} {:>10.1} {:>10}  measured on this machine",
        "CPU (local)", "-", "-", "FP 32-32", "-", "-", "-", cpu_gops, "-"
    );

    let rep = nvca.simulate_decode(1088, 1920, nvc_sim::Dataflow::Chained);
    println!(
        "\nNVCA simulated 1080p decode: {:.1} fps, {:.2} W chip ({:.2} W with DRAM),",
        rep.fps, rep.power_w, rep.system_power_w
    );
    println!(
        "utilization {:.0}%, {:.1} GB/s off-chip.",
        rep.utilization * 100.0,
        rep.dram_bytes as f64 * rep.fps / 1e9
    );
    println!("\nShape check: NVCA-class throughput >> CPU; GOPS/W in the thousands");
    println!("(paper: 3525 GOPS, 4638 GOPS/W, 2.4x GPU / 11.1x CPU throughput).");
}
