//! Broadcast fan-out bench for `nvc-serve`: one publisher encodes a
//! stream once, K loopback subscribers receive the *same* packet bytes.
//!
//! Measures publisher encode throughput as the subscriber count grows
//! into the ten-thousands (the event-driven core must fan out without
//! slowing the encoder down *or* growing the thread count), asserts
//! every subscriber's stream is byte-identical to the publisher's, and
//! — in the full run — drives a stalled subscriber into lag eviction
//! over a real socket while the publisher and a healthy subscriber keep
//! running.
//!
//! Per sweep point the bench records the process OS-thread count (from
//! `/proc/self/status`), taken during the timed window: the serving
//! core is one poller plus a fixed worker pool, so the count must be
//! *flat* across K — that flatness is the whole point of the
//! event-driven rewrite and both gates enforce it.
//!
//! Ten thousand loopback subscribers cost two file descriptors each
//! (client end + server end). The bench reads the soft `RLIMIT_NOFILE`
//! from `/proc/self/limits` and caps the sweep to what the limit
//! affords, reporting both the requested and the effective K.
//!
//! Subscribers connect before the timed window (in parallel batches —
//! ten thousand sequential handshakes would dominate wall time) and
//! drain after it: each stream fits in the kernel's per-socket
//! buffering, so the window captures publisher encode plus the
//! poller's fan-out writes (the cost the relay adds) rather than
//! loopback reader threads, which stand in for clients on other
//! machines.
//!
//! The fps gate is core-aware at the top of the sweep. Up to K=1000
//! the publisher must hold within 15 % of K=64 on any host. At the top
//! K a multi-core host runs the poller beside the encoder, so the same
//! fps floor applies outright; on a single core every fan-out write is
//! kernel time taken *from* the encoder (~20 µs per subscriber write
//! at K=10k, measured — an irreducible double-digit share of the core
//! at any fps), so the bench instead gates *linearity*: marginal CPU
//! per subscriber-frame at the top K must stay within 3x of the K=1000
//! point. A readiness storm — e.g. re-probing every blocked socket on
//! every poll pass — blows that ratio up by an order of magnitude, so
//! the gate still catches the regressions the rewrite exists to
//! prevent. The JSON records which gate applied.
//!
//! Usage:
//!
//! ```text
//! fanout                   # full run: K in {64, 1000, 10000}, eviction
//!                          # phase, writes BENCH_PR8.json; asserts the
//!                          # core-aware gates above and a flat thread
//!                          # count
//! fanout --quick           # CI smoke: K in {64, 1000}, byte-identical,
//!                          # fps within 15% of K=64, threads flat
//!                          # (exit != 0 on failure)
//! fanout --subs K          # largest subscriber count (default 10000)
//! fanout --frames N        # frames per broadcast (default 12)
//! ```

#![forbid(unsafe_code)]

use nvc_bench::BENCH_N;
use nvc_core::ExecCtx;
use nvc_model::CtvcConfig;
use nvc_serve::{
    scrape_metrics, Hello, ServeConfig, ServeError, Server, ServerHandle, StreamClient,
    SubscribeClient, SubscribeEvent,
};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);
/// Parallel connect workers for the attach phase.
const JOINERS: usize = 8;
/// File descriptors held back from the sweep budget: listener, stdio,
/// publisher/eviction sockets, joiner transients.
const FD_RESERVE: usize = 128;

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The process's live OS-thread count (`Threads:` in
/// `/proc/self/status`); 0 where procfs is unavailable.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Process CPU time split as (user, system) seconds (`utime`/`stime`
/// in `/proc/self/stat`, summed over all threads); zeros where procfs
/// is unavailable. The split says where fan-out cost lands: encode is
/// user time, socket writes are system time.
fn cpu_split() -> (f64, f64) {
    std::fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|s| {
            // Field 2 (comm) may contain spaces; parse after the ')'.
            let rest = s.rsplit_once(')')?.1;
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let utime: f64 = fields.get(11)?.parse().ok()?;
            let stime: f64 = fields.get(12)?.parse().ok()?;
            let tick = 100.0; // USER_HZ
            Some((utime / tick, stime / tick))
        })
        .unwrap_or((0.0, 0.0))
}

/// The soft open-file limit (`Max open files` in `/proc/self/limits`);
/// effectively unlimited where procfs is unavailable.
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(usize::MAX)
}

/// Caps a requested subscriber count to what the fd limit affords: one
/// loopback subscriber holds a socket on each side of the connection.
fn affordable_subs(requested: usize) -> usize {
    let limit = fd_limit();
    let budget = limit.saturating_sub(FD_RESERVE) / 2;
    requested.min(budget.max(1))
}

fn subscribe(server: &ServerHandle, hello: Hello) -> SubscribeClient {
    let client =
        SubscribeClient::connect_with(server.addr(), hello, Some(TIMEOUT)).expect("subscribe");
    client.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    client
}

/// Attaches `subs` subscribers in parallel batches and asserts each
/// joined at the head of the broadcast.
fn attach_audience(
    server: &ServerHandle,
    name: &str,
    w: usize,
    h: usize,
    subs: usize,
) -> Vec<SubscribeClient> {
    let clients: Vec<SubscribeClient> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..JOINERS)
            .map(|j| {
                let share = subs / JOINERS + usize::from(j < subs % JOINERS);
                scope.spawn(move || {
                    (0..share)
                        .map(|_| subscribe(server, Hello::subscribe(name, w, h)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("joiner thread"))
            .collect()
    });
    for client in &clients {
        assert_eq!(client.join().start_index, 0, "pre-attached subscriber");
    }
    clients
}

/// One broadcast: K subscribers attach, the publisher encodes `source`,
/// every subscriber's drained stream is compared byte-for-byte against
/// the packets the server echoed to the publisher. Returns the
/// publisher's encode fps over the timed send+finish window, the coded
/// byte total, and the OS-thread count observed during the window.
fn run_broadcast(
    server: &ServerHandle,
    source: &Sequence,
    rate: u8,
    subs: usize,
    name: &str,
) -> (f64, usize, usize, f64) {
    let (w, h) = (source.width(), source.height());
    let mut publisher = StreamClient::connect(
        server.addr(),
        Hello::ctvc_publish(rate, w, h, name).with_gop(8),
    )
    .expect("connect publisher");
    publisher.set_read_timeout(Some(TIMEOUT)).expect("timeout");

    let clients = attach_audience(server, name, w, h, subs);

    let frames = source.frames().len();
    let (u0, s0) = cpu_split();
    let start = Instant::now();
    for frame in source.frames() {
        publisher.send_frame(frame).expect("send frame");
    }
    let sent_at = start.elapsed();
    let published = publisher.finish().expect("finish publish");
    let elapsed = start.elapsed();
    // Sampled with the whole audience attached and served: joiner
    // threads are gone, so this is `main + the server's fixed core`.
    let threads = os_threads();
    let (u1, s1) = cpu_split();
    if subs > 1 {
        println!(
            "             [{subs} subs: {:.2}s wall ({:.2}s send / {:.2}s finish), \
             {:.2}s user, {:.2}s sys]",
            elapsed.as_secs_f64(),
            sent_at.as_secs_f64(),
            (elapsed - sent_at).as_secs_f64(),
            u1 - u0,
            s1 - s0
        );
    }
    assert_eq!(published.packets.len(), frames);

    // Drain and verify outside the window: the per-socket stream is far
    // below kernel buffering, so no server-side write blocked and no
    // ring filled — every byte is already in flight.
    let expected: Vec<Vec<u8>> = published.packets.iter().map(|p| p.to_bytes()).collect();
    for (i, client) in clients.into_iter().enumerate() {
        let summary = client.collect().expect("collect subscription");
        assert_eq!(summary.packets.len(), frames, "subscriber {i} short");
        for (received, sent) in summary.packets.iter().zip(&expected) {
            assert_eq!(
                &received.to_bytes(),
                sent,
                "subscriber {i} bytes diverged from the publisher's"
            );
        }
        assert_eq!(
            summary.stats.total_bytes,
            expected.iter().map(Vec::len).sum::<usize>()
        );
    }
    let coded: usize = expected.iter().map(Vec::len).sum();
    let cpu = (u1 + s1) - (u0 + s0);
    (frames as f64 / elapsed.as_secs_f64(), coded, threads, cpu)
}

/// How much a never-reading loopback subscriber absorbs before the
/// server's ring can overflow: the kernel autotunes the server-side
/// send buffer up to `tcp_wmem[2]` while the peer refuses to read, and
/// the peer's receive buffer holds roughly `tcp_rmem[1]` more — none of
/// it visible to the server as lag. The eviction stream must
/// comfortably out-publish that absorption, so size it from the live
/// sysctl instead of a hard-coded constant that goes stale with the
/// host's tuning.
fn evict_target() -> usize {
    let wmem_max: usize = std::fs::read_to_string("/proc/sys/net/ipv4/tcp_wmem")
        .ok()
        .and_then(|s| s.split_whitespace().nth(2)?.parse().ok())
        .unwrap_or(4 << 20);
    wmem_max + (4 << 20)
}

/// Full-stack lag eviction: a subscriber that never reads while the
/// publisher pushes enough bytes to fill its socket and overflow its
/// ring must be evicted with a clean error; the publisher and a healthy
/// subscriber never stall. Returns (frames published, total coded
/// bytes, healthy-side packets, slow-side packets, eviction message).
fn run_eviction(w: usize, h: usize, target_bytes: usize) -> (usize, usize, usize, usize, String) {
    // The hybrid codec: cheap per coded byte, so the stream outruns the
    // kernel's socket buffering quickly. A shallow ring makes eviction
    // follow promptly once the stalled socket's writes block. The wide
    // write timeout keeps the server's write-stall clock — which starts
    // once the stalled socket's kernel buffering finally fills — from
    // hard-closing the socket (and losing the pending eviction notice)
    // before the post-publish drain below gets to read it.
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            subscriber_ring: 8,
            write_timeout: TIMEOUT,
            ..ServeConfig::default()
        },
    )
    .expect("spawn eviction server");
    let source = Synthesizer::new(SceneConfig::uvg_like(w, h, 8)).generate();
    let mut publisher = StreamClient::connect(
        server.addr(),
        Hello::hybrid_publish(1, w, h, "evict").with_gop(8),
    )
    .expect("connect publisher");
    publisher.set_read_timeout(Some(TIMEOUT)).expect("timeout");

    let hybrid = |name: &str| Hello::subscribe(name, w, h).with_family(nvc_serve::Family::Hybrid);
    let mut slow = subscribe(&server, hybrid("evict")); // never reads until the end
    let mut healthy = subscribe(&server, hybrid("evict"));

    // The healthy subscriber doubles as the byte meter: the publisher
    // keeps cycling the source until the audience has seen
    // `target_bytes`, which comfortably exceeds what loopback kernel
    // buffering absorbs for the stalled one before its writes block.
    let seen = std::sync::atomic::AtomicUsize::new(0);
    let (frames, total_bytes, healthy_n) = std::thread::scope(|scope| {
        let seen = &seen;
        let healthy_thread = scope.spawn(move || {
            let mut packets = 0usize;
            loop {
                match healthy.next_event() {
                    Ok(SubscribeEvent::Packet(p)) => {
                        packets += 1;
                        // order: Relaxed — a progress count the driver
                        // loop polls; no data rides on it.
                        seen.fetch_add(p.encoded_len(), std::sync::atomic::Ordering::Relaxed);
                    }
                    Ok(SubscribeEvent::End(stats)) => break (packets, stats.frames),
                    Err(e) => panic!("healthy subscriber failed: {e}"),
                }
            }
        });
        let mut sent = 0usize;
        // order: Relaxed — polled progress count, see above.
        while seen.load(std::sync::atomic::Ordering::Relaxed) < target_bytes {
            for frame in source.frames() {
                publisher.send_frame(frame).expect("send frame");
            }
            sent += source.frames().len();
        }
        let published = publisher.finish().expect("finish publish");
        assert_eq!(published.packets.len(), sent);
        let total: usize = published.packets.iter().map(|p| p.encoded_len()).sum();
        let (packets, trailer_frames) = healthy_thread.join().expect("healthy thread");
        assert_eq!(packets, sent, "healthy subscriber short");
        assert_eq!(trailer_frames, packets, "healthy trailer disagrees");
        (sent, total, packets)
    });

    // Only now does the slow client read: everything the kernel
    // buffered, then the eviction notice — never a clean trailer.
    slow.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    let mut slow_n = 0usize;
    let message = loop {
        match slow.next_event() {
            Ok(SubscribeEvent::Packet(_)) => slow_n += 1,
            Ok(SubscribeEvent::End(_)) => panic!("lagging subscriber ended cleanly"),
            Err(ServeError::Remote(m)) => break m,
            Err(e) => panic!("slow subscriber: unexpected {e}"),
        }
    };
    assert!(
        message.contains("lagging"),
        "eviction must name the cause: {message}"
    );
    assert!(
        slow_n < frames,
        "the stalled subscriber cannot have received the whole stream"
    );
    let report = server.shutdown();
    assert!(report.evicted >= 1, "server must count the eviction");
    assert_eq!(report.errors, 0, "eviction is not a session error");
    (frames, total_bytes, healthy_n, slow_n, message)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let evict_only = args.iter().any(|a| a == "--evict-only");
    let max_subs = arg_value(&args, "--subs").unwrap_or(10_000).max(1);
    let (dw, dh, n_ch, frames, sweep, margin) = if quick {
        (
            224,
            160,
            8,
            arg_value(&args, "--frames").unwrap_or(8),
            vec![64, 1000.min(max_subs)],
            0.15,
        )
    } else {
        (
            256,
            192,
            BENCH_N,
            arg_value(&args, "--frames").unwrap_or(12),
            vec![64, 1000, max_subs],
            0.15,
        )
    };
    let w = arg_value(&args, "--width").unwrap_or(dw);
    let h = arg_value(&args, "--height").unwrap_or(dh);
    let n_ch = arg_value(&args, "--n").unwrap_or(n_ch);
    // Dedup and fd-cap the sweep (a tight RLIMIT_NOFILE shrinks the top
    // end; both the requested and the effective K are reported).
    let sweep: Vec<(usize, usize)> = {
        let mut points: Vec<(usize, usize)> =
            sweep.into_iter().map(|k| (k, affordable_subs(k))).collect();
        points.dedup_by_key(|&mut (_, eff)| eff);
        points
    };
    let host_cores = ExecCtx::auto().threads();
    if evict_only {
        println!("fanout: eviction phase only");
        let (frames, bytes, healthy, slow, message) = run_eviction(256, 192, evict_target());
        println!(
            "  eviction:  {frames} frames / {bytes} bytes; healthy got {healthy}, \
             stalled got {slow} then: {message:?}"
        );
        return;
    }
    println!(
        "fanout: {w}x{h}, N={n_ch}, {frames} frames/broadcast, sweep {:?}, \
         host cores = {host_cores}, fd limit = {}",
        sweep.iter().map(|&(_, eff)| eff).collect::<Vec<_>>(),
        fd_limit(),
    );

    // Rate 1 of a wide ladder: maximum compute per coded byte, which is
    // the regime where fan-out overhead would show up soonest as a
    // *fraction* of wall time if the relay ever blocked the encoder.
    let rate = 1u8;
    let source = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();
    let top_k = sweep.iter().map(|&(_, eff)| eff).max().expect("sweep");
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            ctvc: CtvcConfig::ctvc_fp(n_ch),
            workers: 1,
            max_subscribers: top_k + 16,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");

    // Warm-up (untimed), then a K=1 reference point for the printout.
    run_broadcast(&server, &source, rate, 1, "warmup");
    let (single_fps, coded, _, _) = run_broadcast(&server, &source, rate, 1, "single");
    println!(
        "  reference: 1 subscriber     -> {single_fps:7.2} fps  ({} bytes/frame)",
        coded / frames
    );

    // (k_requested, k_effective, fps, os_threads, window cpu seconds)
    // per sweep point. The first point (K=64) is the baseline the
    // gates compare against.
    let mut results: Vec<(usize, usize, f64, usize, f64)> = Vec::new();
    for &(req, eff) in &sweep {
        let (fps, _, threads, cpu) =
            run_broadcast(&server, &source, rate, eff, &format!("fanout-{eff}"));
        results.push((req, eff, fps, threads, cpu));
    }
    let baseline_fps = results[0].2;
    let baseline_threads = results[0].3;
    for &(req, eff, fps, threads, _) in &results {
        let capped = if eff < req { " (fd-capped)" } else { "" };
        println!(
            "  fan-out:   {eff:5} subscribers -> {fps:7.2} fps  ({:5.2}x K=64, {threads} OS threads){capped}",
            fps / baseline_fps
        );
    }
    // Live observability over the same loopback: the endpoint answers
    // while the sweep's server is still up, and the subscriber-ring
    // fan-out shows up in the process-global registry it rides on.
    let scrape = scrape_metrics(server.metrics_addr().expect("metrics endpoint configured"))
        .expect("scrape live metrics");
    for name in [
        "nvc_serve_subscribers_total",
        "nvc_poll_wakeups_total",
        "nvc_poll_park_us_count",
        "nvc_ring_occupancy",
        "nvc_ring_drained_total",
    ] {
        assert!(scrape.contains(name), "live scrape is missing {name}");
    }
    println!(
        "  metrics:   live scrape OK ({} bytes, ring + poller series present)",
        scrape.len()
    );
    let report = server.shutdown();
    println!(
        "  poller:    {} wakeups ({} spurious), {} sockets registered at peak, \
         {} timer fires",
        report.poll_wakeups, report.spurious_polls, report.max_registered, report.timer_fires
    );
    assert_eq!(report.errors, 0, "no broadcast may fail");
    assert_eq!(report.evicted, 0, "pre-attached drains must never evict");
    assert_eq!(
        report.subscribers as usize,
        2 + sweep.iter().map(|&(_, eff)| eff).sum::<usize>(),
        "every subscriber must be counted (warmup + single + sweep)"
    );

    // Gate 1: the thread count is independent of K — the fixed serving
    // core (poller + workers) never grows with the audience.
    for &(_, eff, _, threads, _) in &results {
        assert_eq!(
            threads, baseline_threads,
            "OS-thread count changed between K=64 ({baseline_threads}) and K={eff} ({threads})"
        );
    }

    // Gate 2: fan-out must not throttle the publisher. Every sweep
    // point up to K=1000 must hold the publisher's fps outright on any
    // host — that is the regime where fan-out CPU is small against
    // encode even when both share one core.
    for &(_, eff, fps, _, _) in results.iter().filter(|&&(_, eff, ..)| eff <= 1000) {
        let floor = (1.0 - margin) * baseline_fps;
        assert!(
            fps >= floor,
            "publisher fps at {eff} subscribers ({fps:.2}) fell below \
             {:.0}% of the K=64 baseline ({baseline_fps:.2})",
            100.0 * (1.0 - margin)
        );
    }

    // Gate 3, the top of the sweep. With a spare core the serving
    // thread runs beside the encoder, so publisher fps must stay
    // within the margin outright. On a single core every fan-out write
    // is CPU taken *from* the encoder — ~20 µs of kernel time per
    // subscriber write × 10k × fps is an irreducible double-digit
    // share of the core, so fps flatness is arithmetically impossible
    // and the honest assertion is *linearity*: marginal CPU per
    // subscriber-frame at the top K must stay within LINEARITY_FACTOR
    // of the K=1000 point. A readiness storm (say, re-probing every
    // blocked socket each pass) blows that ratio up by an order of
    // magnitude.
    const LINEARITY_FACTOR: f64 = 3.0;
    /// Floor for the reference marginal cost, well under any real
    /// per-write cost: guards the ratio against the 10 ms granularity
    /// of `/proc/self/stat` CPU ticks at the small K=1000 delta.
    const REF_COST_FLOOR: f64 = 6e-6;
    let &(_, top_k, top_fps, _, top_cpu) = results.last().expect("sweep ran");
    let gate = if host_cores > 1 {
        let floor = (1.0 - margin) * baseline_fps;
        assert!(
            top_fps >= floor,
            "publisher fps at {top_k} subscribers ({top_fps:.2}) fell below \
             {:.0}% of the K=64 baseline ({baseline_fps:.2})",
            100.0 * (1.0 - margin)
        );
        println!(
            "  gate:      {top_k} subscribers at {:.1}% of K=64 (floor {:.0}%), \
             {baseline_threads} OS threads flat — OK",
            100.0 * top_fps / baseline_fps,
            100.0 * (1.0 - margin)
        );
        "publisher_fps_vs_k64"
    } else {
        let cost = |point: &(usize, usize, f64, usize, f64)| {
            let (_, eff, _, _, cpu) = *point;
            (cpu - results[0].4) / ((eff - results[0].1) as f64 * frames as f64)
        };
        let reference = results
            .iter()
            .rfind(|&&(_, eff, ..)| eff > results[0].1 && eff <= 1000);
        match reference {
            Some(mid) if top_k > mid.1 && top_cpu > 0.0 => {
                let (ref_cost, top_cost) = (
                    cost(mid).max(REF_COST_FLOOR),
                    cost(results.last().expect("sweep ran")),
                );
                assert!(
                    top_cost <= LINEARITY_FACTOR * ref_cost,
                    "single-core linearity gate: {:.1} µs of CPU per subscriber-frame \
                     at K={top_k} exceeds {LINEARITY_FACTOR}x the K={} reference \
                     ({:.1} µs) — fan-out cost is no longer linear in the audience",
                    1e6 * top_cost,
                    mid.1,
                    1e6 * ref_cost
                );
                println!(
                    "  gate:      single core — fan-out linear: {:.1} µs/subscriber-frame \
                     at K={top_k} vs {:.1} µs at K={} (cap {LINEARITY_FACTOR}x), \
                     {baseline_threads} OS threads flat — OK",
                    1e6 * top_cost,
                    1e6 * cost(mid),
                    mid.1
                );
                "single_core_marginal_cpu_linearity"
            }
            _ => {
                println!(
                    "  gate:      single core, no distinct K=1000 reference point — \
                     fps gate covered K={top_k} above, {baseline_threads} OS threads flat — OK"
                );
                "publisher_fps_vs_k64"
            }
        }
    };

    if quick {
        println!(
            "quick gate: byte-identical fan-out at K={top_k}, fps within \
             {:.0}%, threads flat — OK",
            100.0 * margin
        );
        return;
    }

    // Full run only: drive a stalled subscriber into lag eviction over
    // a real socket, publishing past everything kernel socket buffering
    // can absorb (see [`evict_target`]) so the slow ring must overflow.
    let target = evict_target();
    println!(
        "  eviction:  stalled subscriber vs a {} MiB stream...",
        target >> 20
    );
    let (evict_frames, evict_bytes, healthy_n, slow_n, message) = run_eviction(256, 192, target);
    println!(
        "  eviction:  {evict_frames} frames / {evict_bytes} bytes published; healthy \
         subscriber got {healthy_n}, stalled got {slow_n} then: {message:?}"
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let sweep_json: Vec<String> = results
        .iter()
        .map(|(req, eff, fps, threads, cpu)| {
            format!(
                "{{ \"subscribers_requested\": {req}, \"subscribers\": {eff}, \
                 \"publisher_fps\": {fps:.2}, \"vs_k64\": {:.3}, \"os_threads\": {threads}, \
                 \"window_cpu_s\": {cpu:.2} }}",
                fps / baseline_fps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fanout\",\n  \"host_cores\": {host_cores},\n  \
         \"fd_limit\": {},\n  \
         \"width\": {w},\n  \"height\": {h},\n  \"n\": {n_ch},\n  \"rate\": {rate},\n  \
         \"frames\": {frames},\n  \"byte_identical\": true,\n  \
         \"threads_flat\": true,\n  \"gate\": \"{gate}\",\n  \
         \"single_subscriber_fps\": {single_fps:.2},\n  \
         \"baseline_k64_fps\": {baseline_fps:.2},\n  \"sweep\": [\n    {}\n  ],\n  \
         \"eviction\": {{ \"frames\": {evict_frames}, \"bytes\": {evict_bytes}, \
         \"healthy_packets\": {healthy_n}, \"stalled_packets\": {slow_n}, \
         \"evicted\": true }}\n}}\n",
        fd_limit(),
        sweep_json.join(",\n    ")
    );
    let path = format!("{root}/BENCH_PR8.json");
    std::fs::write(&path, json).expect("write BENCH_PR8.json");
    println!("wrote {path}");
}
