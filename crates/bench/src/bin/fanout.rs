//! Broadcast fan-out bench for `nvc-serve`: one publisher encodes a
//! stream once, K loopback subscribers receive the *same* packet bytes.
//!
//! Measures publisher encode throughput as the subscriber count grows
//! (the relay must fan out without slowing the encoder down), asserts
//! every subscriber's stream is byte-identical to the publisher's, and
//! — in the full run — drives a stalled subscriber into lag eviction
//! over a real socket while the publisher and a healthy subscriber keep
//! running.
//!
//! Subscribers connect before the timed window and drain after it: each
//! stream fits in the kernel's per-socket buffering, so the window
//! captures publisher encode plus server-side fan-out writes (the cost
//! the relay adds) rather than the loopback reader threads, which stand
//! in for clients that would live on other machines.
//!
//! Usage:
//!
//! ```text
//! fanout                   # full run: K up to 1000, eviction phase,
//!                          # writes BENCH_PR6.json; asserts fps at
//!                          # K=1000 within 15% of the K=1 baseline
//! fanout --quick           # CI smoke: K=64 byte-identical and within
//!                          # 10% of K=1 (exit != 0 on failure)
//! fanout --subs K          # largest subscriber count (default 1000)
//! fanout --frames N        # frames per broadcast (default 16)
//! ```

use nvc_bench::BENCH_N;
use nvc_core::ExecCtx;
use nvc_model::CtvcConfig;
use nvc_serve::{
    Hello, ServeConfig, ServeError, Server, ServerHandle, StreamClient, SubscribeClient,
    SubscribeEvent,
};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn subscribe(server: &ServerHandle, hello: Hello) -> SubscribeClient {
    let client = SubscribeClient::connect(server.addr(), hello).expect("subscribe");
    client.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    client
}

/// One broadcast: K subscribers attach, the publisher encodes `source`,
/// every subscriber's drained stream is compared byte-for-byte against
/// the packets the server echoed to the publisher. Returns the
/// publisher's encode fps over the timed send+finish window.
fn run_broadcast(
    server: &ServerHandle,
    source: &Sequence,
    rate: u8,
    subs: usize,
    name: &str,
) -> (f64, usize) {
    let (w, h) = (source.width(), source.height());
    let mut publisher = StreamClient::connect(
        server.addr(),
        Hello::ctvc_publish(rate, w, h, name).with_gop(8),
    )
    .expect("connect publisher");
    publisher.set_read_timeout(Some(TIMEOUT)).expect("timeout");

    // Attach the whole audience first (sequential connects double as
    // accept-backlog pacing), so every subscriber sees the full stream.
    let clients: Vec<SubscribeClient> = (0..subs)
        .map(|_| subscribe(server, Hello::subscribe(name, w, h)))
        .collect();
    for client in &clients {
        assert_eq!(client.join().start_index, 0, "pre-attached subscriber");
    }

    let frames = source.frames().len();
    let start = Instant::now();
    for frame in source.frames() {
        publisher.send_frame(frame).expect("send frame");
    }
    let published = publisher.finish().expect("finish publish");
    let elapsed = start.elapsed();
    assert_eq!(published.packets.len(), frames);

    // Drain and verify outside the window: the per-socket stream is far
    // below kernel buffering, so no server-side write blocked and no
    // ring filled — every byte is already in flight.
    let expected: Vec<Vec<u8>> = published.packets.iter().map(|p| p.to_bytes()).collect();
    for (i, client) in clients.into_iter().enumerate() {
        let summary = client.collect().expect("collect subscription");
        assert_eq!(summary.packets.len(), frames, "subscriber {i} short");
        for (received, sent) in summary.packets.iter().zip(&expected) {
            assert_eq!(
                &received.to_bytes(),
                sent,
                "subscriber {i} bytes diverged from the publisher's"
            );
        }
        assert_eq!(
            summary.stats.total_bytes,
            expected.iter().map(Vec::len).sum::<usize>()
        );
    }
    let coded: usize = expected.iter().map(Vec::len).sum();
    (frames as f64 / elapsed.as_secs_f64(), coded)
}

/// Full-stack lag eviction: a subscriber that never reads while the
/// publisher pushes enough bytes to fill its socket and overflow its
/// ring must be evicted with a clean error; the publisher and a healthy
/// subscriber never stall. Returns (frames published, total coded
/// bytes, healthy-side packets, slow-side packets, eviction message).
fn run_eviction(w: usize, h: usize, target_bytes: usize) -> (usize, usize, usize, usize, String) {
    // The hybrid codec: cheap per coded byte, so the stream outruns the
    // kernel's socket buffering quickly. A shallow ring makes eviction
    // follow promptly once the stalled socket's writes block.
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            subscriber_ring: 8,
            ..ServeConfig::default()
        },
    )
    .expect("spawn eviction server");
    let source = Synthesizer::new(SceneConfig::uvg_like(w, h, 8)).generate();
    let mut publisher = StreamClient::connect(
        server.addr(),
        Hello::hybrid_publish(1, w, h, "evict").with_gop(8),
    )
    .expect("connect publisher");
    publisher.set_read_timeout(Some(TIMEOUT)).expect("timeout");

    let hybrid = |name: &str| Hello::subscribe(name, w, h).with_family(nvc_serve::Family::Hybrid);
    let mut slow = subscribe(&server, hybrid("evict")); // never reads until the end
    let mut healthy = subscribe(&server, hybrid("evict"));

    // The healthy subscriber doubles as the byte meter: the publisher
    // keeps cycling the source until the audience has seen
    // `target_bytes`, which comfortably exceeds what loopback kernel
    // buffering absorbs for the stalled one before its writes block.
    let seen = std::sync::atomic::AtomicUsize::new(0);
    let (frames, total_bytes, healthy_n) = std::thread::scope(|scope| {
        let seen = &seen;
        let healthy_thread = scope.spawn(move || {
            let mut packets = 0usize;
            loop {
                match healthy.next_event() {
                    Ok(SubscribeEvent::Packet(p)) => {
                        packets += 1;
                        seen.fetch_add(p.encoded_len(), std::sync::atomic::Ordering::Relaxed);
                    }
                    Ok(SubscribeEvent::End(stats)) => break (packets, stats.frames),
                    Err(e) => panic!("healthy subscriber failed: {e}"),
                }
            }
        });
        // The stalled socket's writer gives up (and hard-closes, losing
        // the pending eviction notice) after the server's 30 s write
        // timeout — a clock that starts only once that socket's ~3 MiB
        // of kernel buffering is full and its writer actually blocks.
        // Track a conservative estimate of that instant and make sure
        // the drain below starts well inside the timeout.
        let mut sent = 0usize;
        let mut wedge: Option<Instant> = None;
        while seen.load(std::sync::atomic::Ordering::Relaxed) < target_bytes {
            for frame in source.frames() {
                publisher.send_frame(frame).expect("send frame");
            }
            sent += source.frames().len();
            let bytes = seen.load(std::sync::atomic::Ordering::Relaxed);
            if wedge.is_none() && bytes > (5 << 19) {
                wedge = Some(Instant::now());
            }
            assert!(
                wedge.is_none_or(|w| w.elapsed() < Duration::from_secs(25)),
                "publisher too slow past the wedge point ({sent} frames, {bytes} bytes seen)"
            );
        }
        let published = publisher.finish().expect("finish publish");
        assert_eq!(published.packets.len(), sent);
        let total: usize = published.packets.iter().map(|p| p.encoded_len()).sum();
        let (packets, trailer_frames) = healthy_thread.join().expect("healthy thread");
        assert_eq!(packets, sent, "healthy subscriber short");
        assert_eq!(trailer_frames, packets, "healthy trailer disagrees");
        (sent, total, packets)
    });

    // Only now does the slow client read: everything the kernel
    // buffered, then the eviction notice — never a clean trailer.
    slow.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    let mut slow_n = 0usize;
    let message = loop {
        match slow.next_event() {
            Ok(SubscribeEvent::Packet(_)) => slow_n += 1,
            Ok(SubscribeEvent::End(_)) => panic!("lagging subscriber ended cleanly"),
            Err(ServeError::Remote(m)) => break m,
            Err(e) => panic!("slow subscriber: unexpected {e}"),
        }
    };
    assert!(
        message.contains("lagging"),
        "eviction must name the cause: {message}"
    );
    assert!(
        slow_n < frames,
        "the stalled subscriber cannot have received the whole stream"
    );
    let report = server.shutdown();
    assert!(report.evicted >= 1, "server must count the eviction");
    assert_eq!(report.errors, 0, "eviction is not a session error");
    (frames, total_bytes, healthy_n, slow_n, message)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let evict_only = args.iter().any(|a| a == "--evict-only");
    let max_subs = arg_value(&args, "--subs").unwrap_or(1000).max(1);
    let (dw, dh, n_ch, frames, sweep, margin) = if quick {
        (
            64,
            48,
            8,
            arg_value(&args, "--frames").unwrap_or(8),
            vec![64],
            0.10,
        )
    } else {
        (
            256,
            192,
            BENCH_N,
            arg_value(&args, "--frames").unwrap_or(12),
            vec![64, 256, max_subs],
            0.15,
        )
    };
    let w = arg_value(&args, "--width").unwrap_or(dw);
    let h = arg_value(&args, "--height").unwrap_or(dh);
    let n_ch = arg_value(&args, "--n").unwrap_or(n_ch);
    let host_cores = ExecCtx::auto().threads();
    if evict_only {
        println!("fanout: eviction phase only");
        let (frames, bytes, healthy, slow, message) = run_eviction(256, 192, 4 << 20);
        println!(
            "  eviction:  {frames} frames / {bytes} bytes; healthy got {healthy}, \
             stalled got {slow} then: {message:?}"
        );
        return;
    }
    println!(
        "fanout: {w}x{h}, N={n_ch}, {frames} frames/broadcast, sweep {sweep:?}, host cores = {host_cores}"
    );

    // Rate 1 of a wide ladder: maximum compute per coded byte, which is
    // the regime where fan-out overhead would show up soonest as a
    // *fraction* of wall time if the relay ever blocked the encoder.
    let rate = 1u8;
    let source = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();
    // The fan-out permit budget is sized to the audience: the default
    // (one permit per core) is a fairness cap for mixed codec + relay
    // servers, but on a dedicated relay it would put every subscriber
    // writer into a single-permit convoy per frame.
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            ctvc: CtvcConfig::ctvc_fp(n_ch),
            workers: 1,
            fanout_cap: max_subs.max(64),
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");

    // Warm-up (untimed), then the K=1 baseline.
    run_broadcast(&server, &source, rate, 1, "warmup");
    let (baseline_fps, coded) = run_broadcast(&server, &source, rate, 1, "baseline");
    println!(
        "  baseline:  1 subscriber    -> {baseline_fps:7.2} fps  ({} bytes/frame)",
        coded / frames
    );

    let mut results: Vec<(usize, f64)> = Vec::new();
    for &k in &sweep {
        let (fps, _) = run_broadcast(&server, &source, rate, k, &format!("fanout-{k}"));
        let ratio = fps / baseline_fps;
        println!("  fan-out:   {k:4} subscribers -> {fps:7.2} fps  ({ratio:5.2}x baseline)");
        results.push((k, fps));
    }
    let report = server.shutdown();
    assert_eq!(report.errors, 0, "no broadcast may fail");
    assert_eq!(report.evicted, 0, "pre-attached drains must never evict");
    assert_eq!(
        report.subscribers,
        2 + sweep.iter().sum::<usize>(),
        "every subscriber must be counted (warmup + baseline + sweep)"
    );

    let &(gate_k, gate_fps) = results.last().expect("sweep ran");
    let floor = (1.0 - margin) * baseline_fps;
    assert!(
        gate_fps >= floor,
        "publisher fps at {gate_k} subscribers ({gate_fps:.2}) fell below \
         {:.0}% of the 1-subscriber baseline ({baseline_fps:.2})",
        100.0 * (1.0 - margin)
    );
    println!(
        "  gate:      {gate_k} subscribers at {:.1}% of baseline (floor {:.0}%) — OK",
        100.0 * gate_fps / baseline_fps,
        100.0 * (1.0 - margin)
    );

    if quick {
        println!("quick gate: byte-identical fan-out at K={gate_k}, fps within 10% — OK");
        return;
    }

    // Full run only: drive a stalled subscriber into lag eviction over a
    // real socket. 12 MiB comfortably exceeds what loopback kernel
    // buffering absorbs before the server-side writer blocks (~3 MiB
    // measured), so the slow ring must overflow.
    println!("  eviction:  stalled subscriber vs a 4 MiB stream...");
    let (evict_frames, evict_bytes, healthy_n, slow_n, message) = run_eviction(256, 192, 4 << 20);
    println!(
        "  eviction:  {evict_frames} frames / {evict_bytes} bytes published; healthy \
         subscriber got {healthy_n}, stalled got {slow_n} then: {message:?}"
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let sweep_json: Vec<String> = results
        .iter()
        .map(|(k, fps)| {
            format!(
                "{{ \"subscribers\": {k}, \"publisher_fps\": {fps:.2}, \"vs_baseline\": {:.3} }}",
                fps / baseline_fps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fanout\",\n  \"host_cores\": {host_cores},\n  \
         \"width\": {w},\n  \"height\": {h},\n  \"n\": {n_ch},\n  \"rate\": {rate},\n  \
         \"frames\": {frames},\n  \"byte_identical\": true,\n  \
         \"baseline_fps\": {baseline_fps:.2},\n  \"sweep\": [\n    {}\n  ],\n  \
         \"eviction\": {{ \"frames\": {evict_frames}, \"bytes\": {evict_bytes}, \
         \"healthy_packets\": {healthy_n}, \"stalled_packets\": {slow_n}, \
         \"evicted\": true }}\n}}\n",
        sweep_json.join(",\n    ")
    );
    let path = format!("{root}/BENCH_PR6.json");
    std::fs::write(&path, json).expect("write BENCH_PR6.json");
    println!("wrote {path}");
}
