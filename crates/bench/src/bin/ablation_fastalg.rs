//! Ablation **E7**: multiplication counts and simulated cycles of the
//! fast algorithms vs direct execution (paper §III-B: 16 vs 36 muls for
//! `F(2×2,3×3)`; 64 muls per `T3(6×6,4×4)` tile).

#![forbid(unsafe_code)]

use nvc_fastalg::{fta_t3_6x6_4x4, winograd_f2x2_3x3, FastConv2d, FastDeConv2d, Sparsity};
use nvc_sim::{Dataflow, NvcaConfig, SimLayer, SimOp, Simulator, Workload};
use nvc_tensor::ops::{Conv2d, DeConv2d};

fn main() {
    println!("=== Ablation: fast algorithms vs direct execution ===\n");
    let wino = winograd_f2x2_3x3();
    let fta = fta_t3_6x6_4x4();
    println!("per-tile multiplications:");
    println!(
        "  F(2x2,3x3): direct {:>3}, dense fast {:>3}, sparse(50%) {:>3}",
        wino.direct_mults_per_tile(),
        wino.mults_per_tile(),
        wino.mults_per_tile() / 2
    );
    println!(
        "  T3(6x6,4x4): direct {:>3}, dense fast {:>3}, sparse(50%) {:>3}",
        fta.direct_mults_per_tile(),
        fta.mults_per_tile(),
        fta.mults_per_tile() / 2
    );

    // Whole-layer Hadamard-mult counts (36 channels at 1080p/2 feature res).
    let conv = Conv2d::randn(36, 36, 3, 1, 1, 1).expect("conv");
    let dense = FastConv2d::from_conv(&conv).expect("fast");
    let sparse =
        FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5).expect("rho")).expect("fast sparse");
    let direct = conv.macs(544, 960);
    println!("\n3x3 conv, 36ch @ 544x960:");
    println!("  direct MACs        {:>14}", direct);
    println!(
        "  winograd dense     {:>14}",
        dense.hadamard_mults(544, 960)
    );
    println!(
        "  winograd sparse50  {:>14}",
        sparse.hadamard_mults(544, 960)
    );

    let deconv = DeConv2d::randn(36, 36, 4, 2, 1, 2).expect("deconv");
    let fdense = FastDeConv2d::from_deconv(&deconv).expect("fast");
    let fsparse = FastDeConv2d::from_deconv_pruned(&deconv, Sparsity::new(0.5).expect("rho"))
        .expect("fast sparse");
    println!("\n4x4 s2 deconv, 36ch @ 272x480 -> 544x960:");
    println!("  direct MACs        {:>14}", deconv.macs(272, 480));
    println!(
        "  fta dense          {:>14}",
        fdense.hadamard_mults(272, 480)
    );
    println!(
        "  fta sparse50       {:>14}",
        fsparse.hadamard_mults(272, 480)
    );

    // Simulated cycles: same layer under fast vs plain MAC execution.
    println!("\nsimulated cycles for one 36ch 3x3 conv @ 544x960:");
    let sim = Simulator::new(NvcaConfig::paper());
    let fast_wl = Workload::new(vec![SimLayer::new(
        "conv",
        "m",
        SimOp::Conv3x3 {
            c_in: 36,
            c_out: 36,
            h_out: 544,
            w_out: 960,
            stride: 1,
        },
    )]);
    // Plain-mode equivalent: expose the same MACs as a 1x1 shape.
    let plain_wl = Workload::new(vec![SimLayer::new(
        "conv_plain",
        "m",
        SimOp::Conv1x1 {
            c_in: 36 * 9,
            c_out: 36,
            h_out: 544,
            w_out: 960,
        },
    )]);
    let fast_rep = sim.run(&fast_wl, Dataflow::Chained);
    let plain_rep = sim.run(&plain_wl, Dataflow::Chained);
    let fc: u64 = fast_rep.layers.iter().map(|l| l.compute_cycles).sum();
    let pc: u64 = plain_rep.layers.iter().map(|l| l.compute_cycles).sum();
    println!("  sparse winograd    {fc:>14}");
    println!("  plain MAC mode     {pc:>14}");
    println!("  speedup            {:>13.2}x", pc as f64 / fc as f64);
    println!("\nShape check: 36/16 = 2.25x from Winograd, x2 from 50% sparsity (~4.5x);");
    println!("FTA turns a 576-mult direct deconv tile into 64 (32 sparse).");
}
