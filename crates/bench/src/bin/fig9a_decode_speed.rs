//! Regenerates **Fig. 9(a)**: average decoding time per 1080p frame.
//!
//! Local codecs are timed on small frames and extrapolated linearly in
//! pixel count (all decoders here are O(pixels)); GPU baselines from the
//! paper's figure are carried as cited approximations; NVCA comes from
//! the cycle-level simulator.

#![forbid(unsafe_code)]

use nvc_baseline::{HybridCodec, Profile};
use nvc_bench::BENCH_N;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::codec::{encode_sequence, DecoderSession, VideoCodec};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use nvca::Nvca;
use std::time::Instant;

const PIXELS_1080P: f64 = 1920.0 * 1088.0;

/// Times per-packet streaming decode for any [`VideoCodec`], returning
/// ms/frame extrapolated to 1080p. The session path is what a live
/// decoder runs, so it is what Fig. 9(a) should time.
fn time_streaming_decode<C: VideoCodec>(codec: &C, seq: &Sequence, rate: C::Rate) -> f64 {
    let coded = encode_sequence(codec, seq, rate).expect("encode");
    let packets: Vec<Vec<u8>> = coded.packets.iter().map(|p| p.to_bytes()).collect();
    let scale = PIXELS_1080P / seq.pixels_per_frame() as f64;
    let t0 = Instant::now();
    let mut dec = codec.start_decode();
    for p in &packets {
        dec.push_packet(p).expect("decode packet");
    }
    t0.elapsed().as_secs_f64() * 1e3 / seq.frames().len() as f64 * scale
}

fn main() {
    println!("=== Fig. 9(a): average 1080p decoding time per frame ===\n");
    let (w, h, frames) = (96usize, 64usize, 4usize);
    let seq = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();

    // Both local codecs through the same generic streaming-decode timer.
    let hevc_ms = time_streaming_decode(&HybridCodec::new(Profile::hevc_like()), &seq, 24u8);
    let cc = CtvcCodec::new(CtvcConfig::ctvc_fp(BENCH_N)).expect("config");
    let ctvc_cpu_ms = time_streaming_decode(&cc, &seq, RatePoint::new(1));

    // NVCA, simulated at the paper design point with N = 36.
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("design");
    let rep = nvca.simulate_decode(1088, 1920, nvc_sim::Dataflow::Chained);

    println!("{:<34} {:>12}  source", "decoder", "ms/frame");
    let rows: Vec<(&str, f64, &str)> = vec![
        (
            "H.265-like (this repo, CPU)",
            hevc_ms,
            "measured, extrapolated",
        ),
        (
            "CTVC-Net (this repo, CPU)",
            ctvc_cpu_ms,
            "measured, extrapolated",
        ),
        ("FVC [5] (GPU)", 544.0, "cited, paper Fig. 9(a)"),
        ("ELF-VC [7] (GPU)", 180.0, "cited, paper Fig. 9(a)"),
        ("DCVC [8] (GPU)", 908.0, "cited, paper Fig. 9(a)"),
        ("NVCA (paper)", 40.0, "cited (25 fps)"),
        ("NVCA (this repo, simulated)", rep.frame_ms, "simulator"),
    ];
    for (name, ms, src) in rows {
        println!("{:<34} {:>12.1}  {}", name, ms, src);
    }
    let speedup = ctvc_cpu_ms / rep.frame_ms;
    println!("\nNVCA vs CPU decode of the same network: {speedup:.1}x faster");
    println!(
        "(paper headline: up to 22.7x over DCVC; NVCA sustains {:.1} fps).",
        rep.fps
    );
}
