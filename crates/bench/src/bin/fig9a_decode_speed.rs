//! Regenerates **Fig. 9(a)**: average decoding time per 1080p frame.
//!
//! Local codecs are timed on small frames and extrapolated linearly in
//! pixel count (all decoders here are O(pixels)); GPU baselines from the
//! paper's figure are carried as cited approximations; NVCA comes from
//! the cycle-level simulator.

use nvc_baseline::{HybridCodec, Profile};
use nvc_bench::BENCH_N;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;
use std::time::Instant;

const PIXELS_1080P: f64 = 1920.0 * 1088.0;

fn main() {
    println!("=== Fig. 9(a): average 1080p decoding time per frame ===\n");
    let (w, h, frames) = (96usize, 64usize, 4usize);
    let scale = PIXELS_1080P / (w * h) as f64;
    let seq = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();

    // H.265-like decode, measured and extrapolated.
    let hc = HybridCodec::new(Profile::hevc_like());
    let coded = hc.encode(&seq, 24).expect("encode");
    let t0 = Instant::now();
    let _ = hc.decode(&coded.bitstream).expect("decode");
    let hevc_ms = t0.elapsed().as_secs_f64() * 1e3 / frames as f64 * scale;

    // CTVC-Net on this CPU, measured and extrapolated.
    let cc = CtvcCodec::new(CtvcConfig::ctvc_fp(BENCH_N)).expect("config");
    let coded = cc.encode(&seq, RatePoint::new(1)).expect("encode");
    let t0 = Instant::now();
    let _ = cc.decode(&coded.bitstream).expect("decode");
    let ctvc_cpu_ms = t0.elapsed().as_secs_f64() * 1e3 / frames as f64 * scale;

    // NVCA, simulated at the paper design point with N = 36.
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("design");
    let rep = nvca.simulate_decode(1088, 1920, nvc_sim::Dataflow::Chained);

    println!("{:<34} {:>12}  source", "decoder", "ms/frame");
    let rows: Vec<(&str, f64, &str)> = vec![
        ("H.265-like (this repo, CPU)", hevc_ms, "measured, extrapolated"),
        ("CTVC-Net (this repo, CPU)", ctvc_cpu_ms, "measured, extrapolated"),
        ("FVC [5] (GPU)", 544.0, "cited, paper Fig. 9(a)"),
        ("ELF-VC [7] (GPU)", 180.0, "cited, paper Fig. 9(a)"),
        ("DCVC [8] (GPU)", 908.0, "cited, paper Fig. 9(a)"),
        ("NVCA (paper)", 40.0, "cited (25 fps)"),
        ("NVCA (this repo, simulated)", rep.frame_ms, "simulator"),
    ];
    for (name, ms, src) in rows {
        println!("{:<34} {:>12.1}  {}", name, ms, src);
    }
    let speedup = ctvc_cpu_ms / rep.frame_ms;
    println!("\nNVCA vs CPU decode of the same network: {speedup:.1}x faster");
    println!("(paper headline: up to 22.7x over DCVC; NVCA sustains {:.1} fps).", rep.fps);
}
