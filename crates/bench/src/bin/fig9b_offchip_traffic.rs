//! Regenerates **Fig. 9(b)**: per-module off-chip memory traffic,
//! layer-by-layer baseline vs the heterogeneous layer chaining dataflow.

#![forbid(unsafe_code)]

use nvc_model::CtvcConfig;
use nvca::{offchip_comparison, Nvca};

fn main() {
    println!("=== Fig. 9(b): off-chip memory access per decoder module (1080p) ===\n");
    println!("Paper reductions: FeatExt 37.5%, MotionSyn 44.4%, DefComp 22.2%,");
    println!("ResidSyn 44.4%, FrameRecon 75.0%; overall 40.7%\n");
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).expect("design");
    let rows = offchip_comparison(&nvca, 1088, 1920);
    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "module", "baseline MB", "chained MB", "reduction"
    );
    let mut base_total = 0u64;
    let mut chain_total = 0u64;
    for row in &rows {
        base_total += row.baseline_bytes;
        chain_total += row.chained_bytes;
        println!(
            "{:<26} {:>14.2} {:>14.2} {:>9.1}%",
            row.module,
            row.baseline_bytes as f64 / 1e6,
            row.chained_bytes as f64 / 1e6,
            row.reduction_pct()
        );
    }
    let overall = (1.0 - chain_total as f64 / base_total as f64) * 100.0;
    println!(
        "{:<26} {:>14.2} {:>14.2} {:>9.1}%",
        "TOTAL",
        base_total as f64 / 1e6,
        chain_total as f64 / 1e6,
        overall
    );
    println!("\nShape check: every module improves; overall reduction in the tens of");
    println!("percent, dominated by the full-resolution feature/reconstruction paths.");
}
