//! Flash-crowd bench for the `nvc-serve` governor: a burst of sessions
//! slams a governed server and the rate reservoir must bend, not break.
//!
//! Four phases:
//!
//! * **budget** — lockstep: K closed-loop sessions (distinct clients)
//!   each wanting twice their fair share run concurrently under one
//!   aggregate budget; the summed trailing-window bits/frame must land
//!   within 15 % of the budget (the governor shrinks every grant, the
//!   controllers hit the shrunken targets).
//! * **degrade** — lockstep: one steady fixed-rate session watches a
//!   burst of B heterogeneous sessions join and leave; its per-frame
//!   rate trace must dip while the burst is resident and return to the
//!   requested rate afterwards, with the report's `degraded` /
//!   `restored` / `throttle_steps` counters accounting for every
//!   transition — and zero errors, because the curve degrades sessions
//!   instead of dropping them.
//! * **burst** — threaded: steady encoders plus a 4x flash crowd of
//!   mixed-geometry closed-loop sessions, some deliberately slow
//!   readers. Every session must complete (degrade-before-drop), and
//!   on a multi-core host the p99 per-response latency stays bounded.
//! * **reject** — a session whose projected demand exceeds the
//!   overload ceiling gets a clean budget rejection, not a degraded
//!   admit and not a hang.
//!
//! Usage:
//!
//! ```text
//! flashcrowd            # full run, writes BENCH_PR7.json
//! flashcrowd --quick    # CI gate: small clips, all four phases,
//!                       # asserts the gates above (exit != 0 on
//!                       # failure)
//! ```

#![forbid(unsafe_code)]

use nvc_bench::percentile;
use nvc_core::ExecCtx;
use nvc_serve::{
    GovernorConfig, Hello, ServeConfig, ServeError, Server, ServerHandle, StreamClient,
};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use std::sync::Barrier;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);
const GOP: usize = 8;

fn governed(budget: f64) -> ServeConfig {
    ServeConfig {
        governor: Some(GovernorConfig::new(budget)),
        ..ServeConfig::default()
    }
}

fn connect(server: &ServerHandle, hello: Hello) -> Result<StreamClient, ServeError> {
    let client = StreamClient::connect(server.addr(), hello)?;
    client.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    Ok(client)
}

fn source(w: usize, h: usize, frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate()
}

struct BudgetResult {
    sessions: usize,
    budget: f64,
    aggregate: f64,
    error: f64,
}

/// Phase 1: K sessions, each a distinct client asking for `want_bpp`,
/// sized so the summed demand is ~2x the budget. All K connect before
/// any frame is sent and none finishes before the last drain (a
/// barrier), so every grant is the same pure function of the same
/// session set for the whole run. Returns the summed trailing-window
/// bits/frame against the budget.
fn phase_budget(sessions: usize, gops: usize) -> BudgetResult {
    let (w, h) = (64, 48);
    let want_bpp = 0.6;
    let want = want_bpp * (w * h) as f64;
    let budget = want * sessions as f64 / 2.0;
    let seq = source(w, h, gops * GOP);

    let server = Server::spawn("127.0.0.1:0", governed(budget)).expect("bind loopback");
    let mut clients: Vec<StreamClient> = (0..sessions)
        .map(|i| {
            connect(
                &server,
                Hello::hybrid_encode(30, w, h)
                    .with_target_bpp(want_bpp, GOP as u16)
                    .with_client(&format!("client-{i}")),
            )
            .expect("admit budget-phase session")
        })
        .collect();

    let all_drained = Barrier::new(sessions);
    let tail_bits: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .drain(..)
            .map(|mut client| {
                let (seq, all_drained) = (&seq, &all_drained);
                scope.spawn(move || {
                    for frame in seq.frames() {
                        client.send_frame(frame).expect("send frame");
                    }
                    client.drain().expect("drain");
                    // Hold the registration until everyone has coded
                    // every frame: grants stay constant mid-phase.
                    all_drained.wait();
                    let stats = client.finish().expect("finish").stats;
                    let tail = &stats.bits_per_frame[stats.frames - GOP..];
                    tail.iter().sum::<u64>() as f64 / GOP as f64
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("budget session"))
            .collect()
    });
    server.shutdown();

    let aggregate: f64 = tail_bits.iter().sum();
    BudgetResult {
        sessions,
        budget,
        aggregate,
        error: (aggregate - budget).abs() / budget,
    }
}

struct DegradeResult {
    burst: usize,
    steady_trace: Vec<u8>,
    dip: u8,
    degraded: u64,
    restored: u64,
    throttle_steps: u64,
}

/// Phase 2: the degradation curve, in lockstep. Drain barriers pin
/// which of the steady session's frames are coded with the burst
/// resident, so the dip-and-recover trace is deterministic.
fn phase_degrade(burst: usize) -> DegradeResult {
    let (w, h) = (64, 48);
    // One steady fixed-rate session fits the budget; the burst does not.
    let budget = 2000.0;
    let steady_seq = source(w, h, 6);
    let burst_seq = source(48, 32, 1);

    let server = Server::spawn("127.0.0.1:0", governed(budget)).expect("bind loopback");
    let mut steady = connect(
        &server,
        Hello::hybrid_encode(30, w, h).with_client("steady"),
    )
    .expect("admit steady");
    assert!(
        !steady.admitted_degraded(),
        "steady session must start full-rate"
    );
    steady.send_frame(&steady_seq.frames()[0]).expect("send");
    steady.send_frame(&steady_seq.frames()[1]).expect("send");
    steady.drain().expect("drain"); // frames 0-1: alone on the budget

    // The flash crowd arrives: B distinct clients at a different
    // geometry, every one admitted (degraded), none rejected.
    let mut crowd: Vec<StreamClient> = (0..burst)
        .map(|i| {
            connect(
                &server,
                Hello::hybrid_encode(30, 48, 32)
                    .with_target_bpp(0.8, 4)
                    .with_client(&format!("burst-{i}")),
            )
            .expect("burst session must be admitted, not rejected")
        })
        .collect();
    steady.send_frame(&steady_seq.frames()[2]).expect("send");
    steady.send_frame(&steady_seq.frames()[3]).expect("send");
    steady.drain().expect("drain"); // frames 2-3: burst resident
    for client in &mut crowd {
        client.send_frame(&burst_seq.frames()[0]).expect("send");
        client.drain().expect("drain");
    }
    for client in crowd {
        client.finish().expect("finish burst session");
    }

    steady.send_frame(&steady_seq.frames()[4]).expect("send");
    steady.send_frame(&steady_seq.frames()[5]).expect("send");
    let summary = steady.finish().expect("finish steady");
    let report = server.shutdown();

    let trace = summary.stats.rate_per_frame.clone();
    let dip = *trace.iter().max().unwrap();
    assert_eq!(&trace[..2], &[30, 30], "pre-burst frames at the request");
    assert!(
        trace[2] > 30 && trace[3] > 30,
        "the burst must walk the steady session down the ladder: {trace:?}"
    );
    assert_eq!(
        &trace[4..],
        &[30, 30],
        "the burst's exit must restore the steady session: {trace:?}"
    );
    assert_eq!(report.errors, 0, "degrade must never drop a session");
    assert_eq!(
        report.degraded,
        burst as u64 + 1,
        "every burst session plus the steady one ran degraded"
    );
    assert_eq!(
        report.restored, 1,
        "only the steady session outlives the burst"
    );
    assert!(report.throttle_steps > 0);
    DegradeResult {
        burst,
        steady_trace: trace,
        dip,
        degraded: report.degraded,
        restored: report.restored,
        throttle_steps: report.throttle_steps,
    }
}

struct BurstResult {
    steady: usize,
    crowd: usize,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    errors: u64,
    degraded: u64,
}

/// Phase 3: the threaded flash crowd. `steady` fixed-rate encoders run
/// for the whole phase; partway in, a 4x crowd of mixed-geometry
/// closed-loop sessions joins, half of them slow readers (they stall
/// between frames, holding their sessions — and their grants — open).
/// Gate: every session completes, zero server-side errors, and the p99
/// per-response latency stays bounded on a multi-core host.
fn phase_burst(steady: usize, frames: usize, host_cores: usize) -> BurstResult {
    let (w, h) = (64, 48);
    let crowd = 4 * steady;
    let budget = 0.5 * (w * h) as f64 * steady as f64; // steady fits exactly
    let steady_seq = source(w, h, frames);
    let small_seq = source(48, 32, frames / 2);

    let server = Server::spawn("127.0.0.1:0", governed(budget)).expect("bind loopback");
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let server = &server;
        let steady_handles: Vec<_> = (0..steady)
            .map(|i| {
                let seq = &steady_seq;
                scope.spawn(move || {
                    let mut client = connect(
                        server,
                        Hello::hybrid_encode(30, w, h).with_client(&format!("steady-{i}")),
                    )
                    .expect("admit steady");
                    for frame in seq.frames() {
                        client.send_frame(frame).expect("send frame");
                        // Pace the steady streams so they outlive the
                        // crowd and get to walk back up the ladder.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    client.finish().expect("finish steady").latencies
                })
            })
            .collect();
        // Let the steady state establish, then release the crowd.
        std::thread::sleep(Duration::from_millis(50));
        let crowd_handles: Vec<_> = (0..crowd)
            .map(|i| {
                let (big, small) = (&steady_seq, &small_seq);
                scope.spawn(move || {
                    let (seq, gw, gh) = if i % 2 == 0 {
                        (small, 48, 32)
                    } else {
                        (big, w, h)
                    };
                    let mut client = connect(
                        server,
                        Hello::hybrid_encode(34, gw, gh)
                            .with_target_bpp(0.6, 4)
                            .with_client(&format!("crowd-{i}")),
                    )
                    .expect("crowd session must be admitted, not rejected");
                    for frame in seq.frames().iter().take(frames / 2) {
                        client.send_frame(frame).expect("send frame");
                        if i % 2 == 0 {
                            // A slow reader: holds its grant while
                            // barely consuming responses.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                    client.finish().expect("finish crowd session").latencies
                })
            })
            .collect();
        for handle in steady_handles.into_iter().chain(crowd_handles) {
            latencies.extend(handle.join().expect("session thread"));
        }
    });
    let report = server.shutdown();

    let mut lat_ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    lat_ms.sort_by(f64::total_cmp);
    let result = BurstResult {
        steady,
        crowd,
        p50_ms: percentile(&lat_ms, 0.50),
        p90_ms: percentile(&lat_ms, 0.90),
        p99_ms: percentile(&lat_ms, 0.99),
        errors: report.errors,
        degraded: report.degraded,
    };
    assert_eq!(
        result.errors, 0,
        "the governor must degrade sessions, never drop them"
    );
    assert!(
        result.degraded > 0,
        "a 4x crowd over budget must push sessions into degraded grants"
    );
    if host_cores >= 2 {
        assert!(
            result.p99_ms < 10_000.0,
            "p99 {:.1} ms: the burst starved the pipeline",
            result.p99_ms
        );
    }
    result
}

/// Phase 4: a session the reservoir can never carry is refused at the
/// door with the budget named, and a sane session still gets in.
fn phase_reject() -> String {
    let server = Server::spawn("127.0.0.1:0", governed(1000.0)).expect("bind loopback");
    let err = connect(
        &server,
        Hello::hybrid_encode(30, 48, 32).with_target_bpp(6.0, 4),
    )
    .expect_err("a 9216-bit demand against a 1000-bit budget must be rejected");
    let message = match &err {
        ServeError::Remote(m) => m.clone(),
        other => panic!("rejection must be a clean remote error, got {other}"),
    };
    assert!(message.contains("budget"), "{message}");
    let fine = connect(&server, Hello::hybrid_encode(30, 48, 32)).expect("modest session admitted");
    drop(fine);
    let report = server.shutdown();
    assert_eq!(report.rejected, 1);
    message
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let host_cores = ExecCtx::auto().threads();
    let (budget_sessions, budget_gops, burst_base, burst_frames, degrade_burst) = if quick {
        (4, 2, 2, 8, 4)
    } else {
        (6, 3, 3, 16, 8)
    };
    println!(
        "flashcrowd: governed serve under burst, host cores = {host_cores}{}",
        if quick { " (quick)" } else { "" }
    );

    let budget = phase_budget(budget_sessions, budget_gops);
    println!(
        "  budget:  {} sessions, {:.1} bits/frame budget -> {:.1} aggregate ({:.1} % off)",
        budget.sessions,
        budget.budget,
        budget.aggregate,
        budget.error * 100.0
    );
    assert!(
        budget.error < 0.15,
        "aggregate {:.1} bits/frame vs budget {:.1}: {:.1} % breaches the 15 % gate",
        budget.aggregate,
        budget.budget,
        budget.error * 100.0
    );

    let degrade = phase_degrade(degrade_burst);
    println!(
        "  degrade: burst of {} -> steady trace {:?} (dip to QP {}), \
         degraded {}, restored {}, throttle steps {}",
        degrade.burst,
        degrade.steady_trace,
        degrade.dip,
        degrade.degraded,
        degrade.restored,
        degrade.throttle_steps
    );

    let burst = phase_burst(burst_base, burst_frames, host_cores);
    println!(
        "  burst:   {} steady + {} crowd -> p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, \
         {} degraded, {} errors",
        burst.steady,
        burst.crowd,
        burst.p50_ms,
        burst.p90_ms,
        burst.p99_ms,
        burst.degraded,
        burst.errors
    );

    let reject_message = phase_reject();
    println!("  reject:  over-budget session refused: {reject_message:?}");

    if quick {
        println!("quick gate: budget within 15 %, degrade-restore clean, burst survived — OK");
        return;
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let json = format!(
        "{{\n  \"bench\": \"flashcrowd\",\n  \"host_cores\": {host_cores},\n  \
         \"budget\": {{\n    \"sessions\": {},\n    \"budget_bits_per_frame\": {:.1},\n    \
         \"aggregate_bits_per_frame\": {:.1},\n    \"error\": {:.4}\n  }},\n  \
         \"degrade\": {{\n    \"burst\": {},\n    \"steady_trace\": {:?},\n    \
         \"degraded\": {},\n    \"restored\": {},\n    \"throttle_steps\": {}\n  }},\n  \
         \"burst\": {{\n    \"steady\": {},\n    \"crowd\": {},\n    \
         \"latency_ms\": {{ \"p50\": {:.2}, \"p90\": {:.2}, \"p99\": {:.2} }},\n    \
         \"degraded\": {},\n    \"errors\": {}\n  }},\n  \
         \"reject\": {{ \"message\": {:?} }}\n}}\n",
        budget.sessions,
        budget.budget,
        budget.aggregate,
        budget.error,
        degrade.burst,
        degrade.steady_trace,
        degrade.degraded,
        degrade.restored,
        degrade.throttle_steps,
        burst.steady,
        burst.crowd,
        burst.p50_ms,
        burst.p90_ms,
        burst.p99_ms,
        burst.degraded,
        burst.errors,
        reject_message
    );
    let path = format!("{root}/BENCH_PR7.json");
    std::fs::write(&path, json).expect("write BENCH_PR7.json");
    println!("wrote {path}");
}
