//! Closed-loop rate-control bench: convergence of `RateMode::TargetBpp`
//! against fixed-rate references, for both codec families.
//!
//! Protocol (per family): encode a 3-GOP synthetic sequence at two
//! bracketing fixed rates, aim the closed loop at the midpoint of their
//! trailing-2-GOP bpp, and measure how far the controller's own
//! trailing-2-GOP mean lands from that target (the first GOP is
//! calibration — the controller starts with no complexity estimates).
//! Also records per-frame bpp variance (how hard the controller
//! dithers) and proves the controller is deterministic by replaying the
//! stream and the decode.
//!
//! Usage:
//!
//! ```text
//! ratecontrol            # full run, writes BENCH_PR5.json
//! ratecontrol --quick    # CI gate: small clips; asserts convergence
//!                        # error < 10 % for both families, bit-exact
//!                        # replay, decodable streams (exit != 0 on
//!                        # failure)
//! ```

#![forbid(unsafe_code)]

use nvc_baseline::{HybridCodec, Profile};
use nvc_bench::BENCH_N;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::codec::DecoderSession as _;
use nvc_video::rate::RateMode;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::{EncoderSession, Sequence, StreamStats, VideoCodec};

const GOP: usize = 8;
const GOPS: usize = 3;

struct FamilyResult {
    name: &'static str,
    target_bpp: f64,
    achieved_bpp: f64,
    convergence_error: f64,
    bpp_variance: f64,
    rate_switches: usize,
    rate_trace: Vec<u8>,
}

fn encode_with_gops<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    mode: RateMode<C::Rate>,
) -> (Vec<Vec<u8>>, StreamStats) {
    let mut enc = codec.start_encode(mode).expect("start encode");
    let mut packets = Vec::new();
    for (i, frame) in seq.frames().iter().enumerate() {
        if i > 0 && i % GOP == 0 {
            enc.restart_gop();
        }
        packets.push(enc.push_frame(frame).expect("push frame").to_bytes());
    }
    (packets, enc.finish().expect("finish"))
}

/// Mean bpp over the trailing 2 GOPs (the convergence window).
fn tail_bpp(stats: &StreamStats, px: usize) -> f64 {
    let bits: u64 = stats.bits_per_frame[GOP..].iter().sum();
    bits as f64 / ((stats.frames - GOP) * px) as f64
}

/// Per-frame bpp variance over the trailing 2 GOPs.
fn tail_variance(stats: &StreamStats, px: usize) -> f64 {
    let bpp: Vec<f64> = stats.bits_per_frame[GOP..]
        .iter()
        .map(|&b| b as f64 / px as f64)
        .collect();
    let mean = bpp.iter().sum::<f64>() / bpp.len() as f64;
    bpp.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / bpp.len() as f64
}

fn run_family<C: VideoCodec>(
    name: &'static str,
    codec: &C,
    seq: &Sequence,
    px: usize,
    lo: C::Rate,
    hi: C::Rate,
) -> FamilyResult {
    let (_, stats_lo) = encode_with_gops(codec, seq, RateMode::Fixed(lo));
    let (_, stats_hi) = encode_with_gops(codec, seq, RateMode::Fixed(hi));
    let (b_lo, b_hi) = (tail_bpp(&stats_lo, px), tail_bpp(&stats_hi, px));
    let target = 0.5 * (b_lo + b_hi);
    let mode = || RateMode::TargetBpp {
        bpp: target,
        window: GOP,
    };
    let (packets, stats) = encode_with_gops(codec, seq, mode());
    let achieved = tail_bpp(&stats, px);
    let convergence_error = (achieved - target).abs() / target;

    // Determinism: the controller's decisions replay bit-exactly.
    let (replay, _) = encode_with_gops(codec, seq, mode());
    assert_eq!(packets, replay, "{name}: closed-loop replay diverged");
    // And the adaptive stream decodes, with the decoder tracking every
    // in-band rate switch.
    let mut dec = codec.start_decode();
    for (i, p) in packets.iter().enumerate() {
        dec.push_packet(p).expect("adaptive stream decodes");
        assert_eq!(
            dec.last_rate(),
            Some(stats.rate_per_frame[i]),
            "{name}: decoder lost track of the stream rate"
        );
    }

    let rate_switches = stats
        .rate_per_frame
        .windows(2)
        .filter(|w| w[0] != w[1])
        .count();
    println!(
        "  {name}: refs [{b_lo:.4}, {b_hi:.4}] bpp -> target {target:.4}, \
         achieved {achieved:.4} ({:.1} % off), {rate_switches} rate switches",
        convergence_error * 100.0
    );
    println!("    rate trace: {:?}", stats.rate_per_frame);
    FamilyResult {
        name,
        target_bpp: target,
        achieved_bpp: achieved,
        convergence_error,
        bpp_variance: tail_variance(&stats, px),
        rate_switches,
        rate_trace: stats.rate_per_frame,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let frames = GOPS * GOP;
    let (cw, ch, n) = if quick {
        (48, 32, 8)
    } else {
        (96, 64, BENCH_N)
    };
    let (hw, hh) = if quick { (64, 48) } else { (96, 64) };
    println!(
        "ratecontrol: {GOPS} GOPs x {GOP} frames, convergence window = trailing 2 GOPs{}",
        if quick { " (quick)" } else { "" }
    );

    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(n)).expect("codec");
    let ctvc_seq = Synthesizer::new(SceneConfig::uvg_like(cw, ch, frames)).generate();
    let ctvc_res = run_family(
        "ctvc",
        &ctvc,
        &ctvc_seq,
        cw * ch,
        RatePoint::new(1),
        RatePoint::new(2),
    );

    let hybrid = HybridCodec::new(Profile::hevc_like());
    let hybrid_seq = Synthesizer::new(SceneConfig::uvg_like(hw, hh, frames)).generate();
    let hybrid_res = run_family("hybrid", &hybrid, &hybrid_seq, hw * hh, 28u8, 22u8);

    let results = [ctvc_res, hybrid_res];
    if quick {
        for r in &results {
            assert!(
                r.convergence_error < 0.10,
                "{}: convergence error {:.1} % breaches the 10 % gate",
                r.name,
                r.convergence_error * 100.0
            );
            assert!(
                r.rate_switches > 0,
                "{}: the closed loop never moved the rate",
                r.name
            );
        }
        println!("quick gate: both families converged < 10 %, replays bit-exact — OK");
        return;
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut families = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            families.push_str(",\n");
        }
        families.push_str(&format!(
            "    \"{}\": {{\n      \"target_bpp\": {:.4},\n      \"achieved_bpp\": {:.4},\n      \
             \"convergence_error\": {:.4},\n      \"bpp_variance\": {:.6},\n      \
             \"rate_switches\": {},\n      \"rate_trace\": {:?}\n    }}",
            r.name,
            r.target_bpp,
            r.achieved_bpp,
            r.convergence_error,
            r.bpp_variance,
            r.rate_switches,
            r.rate_trace
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"ratecontrol\",\n  \"gop\": {GOP},\n  \"gops\": {GOPS},\n  \
         \"window\": \"trailing 2 GOPs\",\n  \"families\": {{\n{families}\n  }}\n}}\n"
    );
    let path = format!("{root}/BENCH_PR5.json");
    std::fs::write(&path, json).expect("write BENCH_PR5.json");
    println!("wrote {path}");
}
