//! Multi-session serving load generator for `nvc-serve`.
//!
//! Drives K concurrent synthetic decode streams over a loopback socket
//! against a server configured for session-level parallelism (1
//! `ExecCtx` thread per session, one pool worker per stream), verifies
//! every stream's reconstruction is byte-identical to the in-process
//! session API, and reports aggregate throughput plus per-response
//! latency percentiles.
//!
//! Usage:
//!
//! ```text
//! loadgen                  # full run, writes BENCH_PR4.json
//! loadgen --quick          # CI smoke: small clip, asserts bit-exact
//!                          # round-trips; on multi-core hosts also
//!                          # asserts aggregate fps > 1-stream serial
//!                          # baseline (exit != 0 on failure)
//! loadgen --streams K      # concurrent stream count (default 4)
//! loadgen --frames N       # frames per stream (default 16)
//! ```

#![forbid(unsafe_code)]

use nvc_bench::{percentile, BENCH_N};
use nvc_core::ExecCtx;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_serve::{Hello, ServeConfig, Server, ServerHandle, StreamClient};
use nvc_video::codec::{encode_sequence, EncodedStream};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::{FrameType, Sequence};
use std::time::{Duration, Instant};

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Runs one decode stream against the server; returns wall time and
/// per-response latencies after asserting bit-exactness.
fn run_stream(
    server: &ServerHandle,
    coded: &EncodedStream,
    rate: u8,
    w: usize,
    h: usize,
    window: usize,
) -> (Duration, Vec<Duration>) {
    let start = Instant::now();
    let mut client =
        StreamClient::connect(server.addr(), Hello::ctvc_decode(rate, w, h)).expect("connect");
    client.set_window(window);
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    for packet in &coded.packets {
        client.send_packet(packet).expect("send packet");
    }
    let summary = client.finish().expect("finish stream");
    let elapsed = start.elapsed();
    assert_eq!(summary.frames.len(), coded.packets.len());
    for (remote, local) in summary.frames.iter().zip(coded.decoded.frames()) {
        assert_eq!(
            remote.tensor().as_slice(),
            local.tensor().as_slice(),
            "served stream diverged from the in-process session"
        );
    }
    assert_eq!(
        summary.stats.bits_per_frame.iter().sum::<u64>(),
        8 * summary.stats.total_bytes as u64,
        "stats trailer bit counts inconsistent"
    );
    // The per-frame rate/type columns must align with the bit counts and
    // show exactly which frames carried which rate.
    assert_eq!(summary.stats.frame_types.len(), summary.stats.frames);
    assert_eq!(summary.stats.rate_per_frame.len(), summary.stats.frames);
    assert_eq!(summary.stats.frame_types[0], FrameType::Intra);
    assert!(
        summary.stats.frame_types[1..]
            .iter()
            .all(|k| *k == FrameType::Predicted),
        "fixed decode streams here are single-GOP IPPP"
    );
    assert!(
        summary.stats.rate_per_frame.iter().all(|&r| r == rate),
        "a fixed-rate stream must carry one rate on every frame"
    );
    (elapsed, summary.latencies)
}

/// Runs one encode stream (fixed or target-bpp) concurrently with the
/// decode fleet, asserting the rate-control invariants on its trailer.
fn run_encode_stream(
    server: &ServerHandle,
    source: &Sequence,
    reference: &EncodedStream,
    hello: Hello,
) {
    let mut client = StreamClient::connect(server.addr(), hello.clone()).expect("connect encode");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    for frame in source.frames() {
        client.send_frame(frame).expect("send frame");
    }
    let summary = client.finish().expect("finish encode stream");
    let stats = &summary.stats;
    assert_eq!(stats.frames, source.frames().len());
    assert_eq!(stats.frame_types.len(), stats.frames);
    assert_eq!(stats.rate_per_frame.len(), stats.frames);
    assert_eq!(
        stats.bits_per_frame.iter().sum::<u64>(),
        8 * stats.total_bytes as u64
    );
    match hello.target {
        None => {
            // Fixed mode: byte-identical to the in-process session.
            assert!(stats.rate_per_frame.iter().all(|&r| r == hello.rate));
            for (remote, local) in summary.packets.iter().zip(&reference.packets) {
                assert_eq!(
                    remote.to_bytes(),
                    local.to_bytes(),
                    "served fixed encode diverged from the in-process session"
                );
            }
        }
        Some(_) => {
            // Closed loop: every chosen rate is valid, and the bits the
            // controller reacted to are exactly the serialized sizes.
            assert!(stats
                .rate_per_frame
                .iter()
                .all(|&r| RatePoint::try_new(r).is_ok()));
            for (bits, packet) in stats.bits_per_frame.iter().zip(&summary.packets) {
                assert_eq!(*bits, packet.encoded_len() as u64 * 8);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let streams = arg_value(&args, "--streams").unwrap_or(4).max(1);
    let (w, h, n_ch, frames) = if quick {
        (64, 48, 8, arg_value(&args, "--frames").unwrap_or(6))
    } else {
        (96, 64, BENCH_N, arg_value(&args, "--frames").unwrap_or(16))
    };
    let host_cores = ExecCtx::auto().threads();
    println!(
        "loadgen: {streams} streams x {frames} frames, {w}x{h}, N={n_ch}, host cores = {host_cores}"
    );

    // Reference encode, in-process: source packets for every stream and
    // the closed-loop reconstruction the server must match bit-for-bit.
    let rate = 1u8;
    let cfg = CtvcConfig::ctvc_fp(n_ch);
    let codec = CtvcCodec::new(cfg.clone()).expect("codec");
    let source = Synthesizer::new(SceneConfig::uvg_like(w, h, frames)).generate();
    let coded = encode_sequence(&codec, &source, RatePoint::new(rate)).expect("encode");
    println!(
        "  source coded: {} bytes total ({:.4} bpp)",
        coded.stats.total_bytes,
        coded.stats.bpp(w * h)
    );

    // Session-parallel server: one narrow context per session, one pool
    // worker per stream, total fan-out capped at the stream count.
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            ctvc: cfg,
            workers: streams,
            threads_per_session: 1,
            exec_cap: streams,
            ..ServeConfig::default()
        },
    )
    .expect("spawn server");

    // Serial baseline: one stream, alone on the server.
    let (serial_wall, _) = run_stream(&server, &coded, rate, w, h, 2);
    let serial_fps = frames as f64 / serial_wall.as_secs_f64();
    println!("  serial:    1 stream  -> {serial_fps:7.2} fps  (wall {serial_wall:.2?})");

    // Aggregate: K streams at once.
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|_| scope.spawn(|| run_stream(&server, &coded, rate, w, h, 2)))
            .collect();
        for handle in handles {
            let (_, lat) = handle.join().expect("stream thread");
            latencies.extend(lat);
        }
    });
    let aggregate_wall = start.elapsed();
    let aggregate_fps = (streams * frames) as f64 / aggregate_wall.as_secs_f64();
    let speedup = aggregate_fps / serial_fps;
    println!(
        "  aggregate: {streams} streams -> {aggregate_fps:7.2} fps  (wall {aggregate_wall:.2?}, {speedup:.2}x serial)"
    );

    // Mixed rate-control modes, concurrently on the same pool (untimed —
    // the throughput numbers above stay decode-only): one fixed-rate
    // encode, one closed-loop target-bpp encode and one decode stream
    // must coexist, with the fixed encode still byte-identical to the
    // in-process session.
    let target_bpp = coded.stats.bpp(w * h);
    std::thread::scope(|scope| {
        let fixed_enc = scope
            .spawn(|| run_encode_stream(&server, &source, &coded, Hello::ctvc_encode(rate, w, h)));
        let target_enc = scope.spawn(|| {
            run_encode_stream(
                &server,
                &source,
                &coded,
                Hello::ctvc_encode(rate, w, h).with_target_bpp(target_bpp, 4),
            )
        });
        let dec = scope.spawn(|| run_stream(&server, &coded, rate, w, h, 2));
        fixed_enc.join().expect("fixed encode thread");
        target_enc.join().expect("target encode thread");
        dec.join().expect("mixed-phase decode thread");
    });
    println!("  mixed:     fixed + target-bpp encode + decode, concurrent — OK");

    let mut lat_ms: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (p50, p90, p99) = (
        percentile(&lat_ms, 0.50),
        percentile(&lat_ms, 0.90),
        percentile(&lat_ms, 0.99),
    );
    println!("  latency:   p50 {p50:.2} ms, p90 {p90:.2} ms, p99 {p99:.2} ms");

    let report = server.shutdown();
    assert_eq!(
        report.sessions,
        streams + 4,
        "every stream must register (serial + decode fleet + mixed phase)"
    );
    assert_eq!(report.errors, 0, "no session may fail");
    println!(
        "  server:    {} sessions, {} frames, {} errors",
        report.sessions, report.frames, report.errors
    );

    if quick {
        // Bit-exactness already asserted inside run_stream. The
        // throughput gate needs real hardware parallelism; on a 1-core
        // host concurrency cannot beat serial, so gate only when cores
        // exist (CI runners have >= 2).
        if host_cores >= 2 {
            assert!(
                speedup > 1.0,
                "aggregate {aggregate_fps:.2} fps must beat the serial baseline \
                 {serial_fps:.2} fps on a {host_cores}-core host"
            );
            println!("quick gate: bit-exact, {speedup:.2}x > 1.0x serial — OK");
        } else {
            println!("quick gate: bit-exact — OK (throughput gate skipped on 1 core)");
        }
        return;
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let json = format!(
        "{{\n  \"bench\": \"loadgen\",\n  \"host_cores\": {host_cores},\n  \
         \"streams\": {streams},\n  \"frames_per_stream\": {frames},\n  \
         \"width\": {w},\n  \"height\": {h},\n  \"n\": {n_ch},\n  \
         \"bit_exact\": true,\n  \"serial_fps\": {serial_fps:.2},\n  \
         \"aggregate_fps\": {aggregate_fps:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"latency_ms\": {{ \"p50\": {p50:.2}, \"p90\": {p90:.2}, \"p99\": {p99:.2} }}\n}}\n"
    );
    let path = format!("{root}/BENCH_PR4.json");
    std::fs::write(&path, json).expect("write BENCH_PR4.json");
    println!("wrote {path}");
}
