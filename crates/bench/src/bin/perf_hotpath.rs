//! Hot-path performance benchmark, serial-vs-parallel bit-exactness
//! smoke test and perf-regression gate.
//!
//! Times the four optimized kernels (direct conv, fast conv, fast
//! deconv, Swin attention) against in-binary replicas of the pre-PR-2
//! scalar implementations, measures end-to-end encode/decode at
//! `threads = 1`, `2` and `max`, checks both codec families for
//! bit-exact parallel execution, and writes `BENCH_PR3.json` at the
//! repository root.
//!
//! Usage:
//!
//! ```text
//! perf_hotpath           # full run, writes BENCH_PR3.json
//! perf_hotpath --quick   # CI smoke: small shapes, no JSON, exit != 0
//!                        # if any serial-vs-parallel output diverges
//! perf_hotpath --check [baseline.json]
//!                        # perf gate: re-times the kernels and exits
//!                        # != 0 if any regresses > 15 % vs the recorded
//!                        # baseline (default BENCH_PR2.json), after
//!                        # calibrating out the host-speed difference
//!                        # with the median measured/baseline ratio;
//!                        # also gates the telemetry span overhead
//!                        # (enabled vs disabled) at 2 %
//! ```
//!
//! All kernel timings run with telemetry spans disabled
//! (`nvc_telemetry::Mode::Off`) so they stay comparable with baselines
//! recorded before the instrumentation existed; the dedicated overhead
//! gate is what measures the enabled path.

#![forbid(unsafe_code)]

use nvc_baseline::{HybridCodec, Profile};
use nvc_bench::BENCH_N;
use nvc_core::ExecCtx;
use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint, SwinAttention};
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds (one untimed warmup).
fn bench<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn smooth_tensor(c: usize, h: usize, w: usize) -> Tensor {
    Tensor::from_fn(Shape::new(1, c, h, w), |_, ci, y, x| {
        0.3 * ((ci as f32 * 0.7 + y as f32 * 0.29 + x as f32 * 0.13).sin())
    })
}

// ---- pre-PR-2 reference implementations (the seed's scalar loops) ----

/// The seed's `Conv2d::forward`: scalar inner loop with per-element
/// bounds/padding checks. Kept verbatim as the baseline the optimized
/// kernels are measured against.
fn naive_conv_forward(conv: &Conv2d, input: &Tensor) -> Tensor {
    let (n, _, h, w) = input.shape().dims();
    let (oh, ow) = conv.output_hw(h, w);
    let out_shape = Shape::new(n, conv.c_out(), oh, ow);
    let mut out = Tensor::zeros(out_shape);
    let in_shape = input.shape();
    let in_data = input.as_slice();
    let pad = conv.padding() as isize;
    let k = conv.kernel();
    for nn in 0..n {
        for co in 0..conv.c_out() {
            let bias = conv.bias()[co];
            let out_base = out_shape.index(nn, co, 0, 0);
            out.as_mut_slice()[out_base..out_base + oh * ow]
                .iter_mut()
                .for_each(|v| *v = bias);
            for ci in 0..conv.c_in() {
                let kernel = conv.kernel_slice(co, ci);
                let in_base = in_shape.index(nn, ci, 0, 0);
                let in_plane = &in_data[in_base..in_base + h * w];
                for oy in 0..oh {
                    let iy0 = (oy * conv.stride()) as isize - pad;
                    for (ki, kv) in kernel.iter().enumerate() {
                        if *kv == 0.0 {
                            continue;
                        }
                        let kh = (ki / k) as isize;
                        let kw = (ki % k) as isize;
                        let iy = iy0 + kh;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let in_row = &in_plane[iy as usize * w..(iy as usize + 1) * w];
                        let out_row_base = out_base + oy * ow;
                        let out_data = out.as_mut_slice();
                        for ox in 0..ow {
                            let ix = (ox * conv.stride()) as isize - pad + kw;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            out_data[out_row_base + ox] += kv * in_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
    out
}

/// The seed's `FastConv2d::forward`: per-tile `Mat` construction and a
/// `u_acc.clone()` inside the innermost tile loop. `bias` is the source
/// convolution's bias vector (not exposed by `FastConv2d`).
fn naive_fast_conv_forward(fast: &FastConv2d, input: &Tensor, bias: &[f32]) -> Tensor {
    let (n, _, h, w) = input.shape().dims();
    let t = fast.transform();
    let (p, m, mu) = (t.patch(), t.tile(), t.mu());
    let step = t.in_step();
    let offset = t.in_offset() as isize;
    let (ty_n, tx_n) = fast.tile_count(h, w);
    let mut out = Tensor::zeros(Shape::new(n, fast.c_out(), h, w));
    let mut patch = Mat::zeros(p, p);
    let mut y_tiles: Vec<Vec<f32>> = vec![vec![0.0; mu * mu]; fast.c_in()];
    let mut u_acc = vec![0.0_f32; mu * mu];
    for nn in 0..n {
        for ty in 0..ty_n {
            for tx in 0..tx_n {
                let iy0 = (ty * step) as isize - offset;
                let ix0 = (tx * step) as isize - offset;
                for (ci, tile) in y_tiles.iter_mut().enumerate() {
                    for py in 0..p {
                        for px in 0..p {
                            *patch.at_mut(py, px) =
                                input.at_padded(nn, ci, iy0 + py as isize, ix0 + px as isize);
                        }
                    }
                    let y = t.transform_input(&patch).expect("patch shape");
                    tile.copy_from_slice(y.as_slice());
                }
                for (co, &b) in bias.iter().enumerate().take(fast.c_out()) {
                    u_acc.iter_mut().for_each(|v| *v = 0.0);
                    for (ci, y) in y_tiles.iter().enumerate() {
                        fast.kernel(co, ci).hadamard_accumulate(y, &mut u_acc);
                    }
                    let u = Mat::from_vec(mu, mu, u_acc.clone()).expect("tile shape");
                    let v = t.inverse(&u).expect("tile shape");
                    for vy in 0..m {
                        let oy = ty * m + vy;
                        if oy >= h {
                            break;
                        }
                        for vx in 0..m {
                            let ox = tx * m + vx;
                            if ox >= w {
                                break;
                            }
                            *out.at_mut(nn, co, oy, ox) = v.at(vy, vx) + b;
                        }
                    }
                }
            }
        }
    }
    out
}

struct KernelRow {
    name: &'static str,
    ms: f64,
    mpix_s: f64,
    speedup_vs_naive: Option<f64>,
}

fn json_kernels(rows: &[KernelRow]) -> String {
    let fields: Vec<String> = rows
        .iter()
        .map(|r| {
            let speedup = r
                .speedup_vs_naive
                .map(|s| format!(", \"speedup_vs_pre_pr\": {s:.2}"))
                .unwrap_or_default();
            format!(
                "    \"{}\": {{\"ms\": {:.3}, \"mpix_s\": {:.3}{}}}",
                r.name, r.ms, r.mpix_s, speedup
            )
        })
        .collect();
    fields.join(",\n")
}

/// Extracts `"<kernel>": {"ms": <number>` from a recorded bench JSON
/// (the in-tree format written by this binary; no external JSON crate in
/// the offline workspace).
fn baseline_ms(json: &str, kernel: &str) -> Option<f64> {
    let pos = json.find(&format!("\"{kernel}\""))?;
    let rest = &json[pos..];
    let tail = rest[rest.find("\"ms\":")? + 5..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Telemetry-overhead gate: times the span-instrumented Winograd kernel
/// with telemetry enabled and disabled, interleaved per round so clock
/// or cache drift cannot bias one mode, and fails if the enabled path
/// costs more than 2 % over best-of-round times. Leaves telemetry off,
/// matching the rest of the benchmark.
fn telemetry_overhead_ok(fast: &FastConv2d, x: &Tensor, ctx: &ExecCtx) -> bool {
    const ROUNDS: usize = 15;
    const BATCH: usize = 3;
    let time_batch = |mode: nvc_telemetry::Mode| {
        nvc_telemetry::set_mode(mode);
        let t0 = Instant::now();
        for _ in 0..BATCH {
            fast.forward_ctx(x, ctx).unwrap();
        }
        t0.elapsed().as_secs_f64()
    };
    // Median of per-round enabled/disabled ratios: each round holds its
    // own off-vs-on pair, so a noise spike perturbs one ratio instead
    // of skewing a global best-of, and the median discards it.
    let mut ratios: Vec<f64> = (0..ROUNDS)
        .map(|_| {
            let t_off = time_batch(nvc_telemetry::Mode::Off);
            let t_on = time_batch(nvc_telemetry::Mode::Full);
            t_on / t_off
        })
        .collect();
    nvc_telemetry::set_mode(nvc_telemetry::Mode::Off);
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ratio = ratios[ROUNDS / 2];
    println!(
        "telemetry overhead: enabled/disabled = {ratio:.4} \
         (span-instrumented fast conv, median of {ROUNDS} interleaved rounds of {BATCH})"
    );
    ratio <= 1.02
}

/// Perf-regression gate: compares freshly measured kernel times against
/// a recorded baseline, failing any kernel > 15 % slower after host
/// calibration.
///
/// Calibration prefers the baseline's recorded `conv3x3_naive_ms`: the
/// naive replica is frozen source in this binary, so its measured/
/// recorded ratio captures pure host+toolchain speed — a *uniform*
/// regression of the optimized kernels cannot hide in it. Baselines
/// without that field (PR 2) fall back to the median measured/baseline
/// ratio, where a kernel must regress both absolutely and relative to
/// the median (the median absorbs host scale, but also — unavoidably —
/// uniform regressions; that mode is only a cross-machine stopgap).
fn run_check(rows: &[KernelRow], baseline_path: &str, naive_conv_ms: f64) -> bool {
    let json = match std::fs::read_to_string(baseline_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("--check: cannot read {baseline_path}: {e}");
            return false;
        }
    };
    let mut ratios: Vec<(&str, f64)> = Vec::new();
    for r in rows {
        match baseline_ms(&json, r.name) {
            Some(base) if base > 0.0 => ratios.push((r.name, r.ms / base)),
            _ => println!("--check: {} not in baseline, skipping", r.name),
        }
    }
    if ratios.is_empty() {
        eprintln!("--check: no comparable kernels in {baseline_path}");
        return false;
    }
    let naive_base = baseline_ms(&json, "conv3x3_naive");
    let (calibration, absolute_gate) = match naive_base {
        Some(base) if base > 0.0 => {
            let c = naive_conv_ms / base;
            println!(
                "--check vs {baseline_path}: host calibration {c:.2}x \
                 (frozen naive-conv replica, {naive_conv_ms:.2} ms vs {base:.2} ms recorded)"
            );
            (c, false)
        }
        _ => {
            let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let c = sorted[sorted.len() / 2];
            println!(
                "--check vs {baseline_path}: no recorded naive-conv calibration; \
                 falling back to median measured/baseline ({c:.2}x)"
            );
            (c, true)
        }
    };
    let mut ok = true;
    for (name, ratio) in ratios {
        let rel = ratio / calibration;
        let regressed = rel > 1.15 && (!absolute_gate || ratio > 1.15);
        let verdict = if regressed {
            ok = false;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {name:>18}: {ratio:.2}x vs baseline (relative {rel:.2}x)  {verdict}");
    }
    ok
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| format!("{root}/BENCH_PR2.json"));
    let max_threads = ExecCtx::auto().threads();
    let mut divergence = false;
    // Span-free timings: keep every number comparable with baselines
    // recorded before the telemetry layer existed. The overhead gate
    // below is the one place the enabled path is measured.
    nvc_telemetry::set_mode(nvc_telemetry::Mode::Off);

    // ---- kernel benchmarks at the paper's N = 36 ----
    let n_ch = if quick { BENCH_N } else { 36 };
    let (h, w) = if quick { (32, 32) } else { (64, 64) };
    let reps = if quick {
        1
    } else if check {
        3
    } else {
        5
    };
    let pix = (h * w) as f64 / 1e6;
    let x = smooth_tensor(n_ch, h, w);
    let ctx1 = ExecCtx::serial();
    let ctx_max = ExecCtx::with_threads(max_threads);

    println!("perf_hotpath: N={n_ch} {h}x{w}, host threads = {max_threads}");
    let mut rows: Vec<KernelRow> = Vec::new();

    // Direct 3x3 conv.
    let conv = Conv2d::randn(n_ch, n_ch, 3, 1, 1, 7).unwrap();
    let t_naive = bench(reps, || {
        naive_conv_forward(&conv, &x);
    });
    // Frozen-replica time: the host-speed yardstick for --check and the
    // recorded calibration in the bench JSON.
    let naive_conv_ms = t_naive * 1e3;
    let t_new = bench(reps, || {
        conv.forward_ctx(&x, &ctx1).unwrap();
    });
    if naive_conv_forward(&conv, &x).as_slice()
        != conv.forward_ctx(&x, &ctx_max).unwrap().as_slice()
    {
        // The optimized direct conv keeps the seed's accumulation order,
        // so even this cross-implementation check is exact.
        eprintln!("FAIL: direct conv diverged from reference");
        divergence = true;
    }
    rows.push(KernelRow {
        name: "conv3x3_direct",
        ms: t_new * 1e3,
        mpix_s: pix / t_new,
        speedup_vs_naive: Some(t_naive / t_new),
    });

    // Fast (Winograd) conv, dense and 50 % pruned. The pruned operator
    // executes in compressed (value, index) form and must undercut the
    // dense one — the whole point of transform-domain pruning.
    let fast_dense = FastConv2d::from_conv(&conv).unwrap();
    let fast_sparse = FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5).unwrap()).unwrap();
    let t_naive = bench(reps, || {
        naive_fast_conv_forward(&fast_dense, &x, conv.bias());
    });
    let t_new = bench(reps, || {
        fast_dense.forward_ctx(&x, &ctx1).unwrap();
    });
    rows.push(KernelRow {
        name: "fastconv_dense",
        ms: t_new * 1e3,
        mpix_s: pix / t_new,
        speedup_vs_naive: Some(t_naive / t_new),
    });
    let t_sp = bench(reps, || {
        fast_sparse.forward_ctx(&x, &ctx1).unwrap();
    });
    rows.push(KernelRow {
        name: "fastconv_sparse50",
        ms: t_sp * 1e3,
        mpix_s: pix / t_sp,
        speedup_vs_naive: None,
    });
    let sparse_speedup = t_new / t_sp;
    if fast_sparse.forward_ctx(&x, &ctx1).unwrap().as_slice()
        != fast_sparse.forward_ctx(&x, &ctx_max).unwrap().as_slice()
    {
        eprintln!("FAIL: fast conv serial vs parallel diverged");
        divergence = true;
    }

    // Fast (FTA) deconv.
    let deconv = DeConv2d::randn(n_ch, n_ch, 4, 2, 1, 9).unwrap();
    let fast_de = FastDeConv2d::from_deconv(&deconv).unwrap();
    let xd = smooth_tensor(n_ch, h / 2, w / 2);
    let t_de = bench(reps, || {
        fast_de.forward_ctx(&xd, &ctx1).unwrap();
    });
    rows.push(KernelRow {
        name: "fastdeconv_dense",
        ms: t_de * 1e3,
        mpix_s: pix / t_de,
        speedup_vs_naive: None,
    });
    if fast_de.forward_ctx(&xd, &ctx1).unwrap().as_slice()
        != fast_de.forward_ctx(&xd, &ctx_max).unwrap().as_slice()
        || deconv.forward_ctx(&xd, &ctx1).unwrap().as_slice()
            != deconv.forward_ctx(&xd, &ctx_max).unwrap().as_slice()
    {
        eprintln!("FAIL: deconv serial vs parallel diverged");
        divergence = true;
    }

    // Swin attention (2N channels, the analysis transform's shape).
    let attn = SwinAttention::new(2 * n_ch, 3, 2, 2, 11).unwrap();
    let xa = smooth_tensor(2 * n_ch, h / 4, w / 4);
    let t_at = bench(reps, || {
        attn.forward_ctx(&xa, &ctx1).unwrap();
    });
    rows.push(KernelRow {
        name: "attention_swin",
        ms: t_at * 1e3,
        mpix_s: (h / 4 * w / 4) as f64 / 1e6 / t_at,
        speedup_vs_naive: None,
    });
    if attn.forward_ctx(&xa, &ctx1).unwrap().as_slice()
        != attn.forward_ctx(&xa, &ctx_max).unwrap().as_slice()
    {
        eprintln!("FAIL: attention serial vs parallel diverged");
        divergence = true;
    }

    for r in &rows {
        let speedup = r
            .speedup_vs_naive
            .map(|s| format!("  ({s:.2}x vs pre-PR)"))
            .unwrap_or_default();
        println!(
            "{:>18}: {:7.2} ms  {:6.2} Mpix/s{}",
            r.name, r.ms, r.mpix_s, speedup
        );
    }
    println!("sparse50 speedup vs dense: {sparse_speedup:.2}x (compressed-kernel execution)");

    if check {
        let ok = run_check(&rows, &baseline_path, naive_conv_ms);
        let overhead_ok = telemetry_overhead_ok(&fast_sparse, &x, &ctx1);
        if !overhead_ok {
            eprintln!("--check: telemetry span overhead exceeds 2%");
        }
        if divergence || !ok || !overhead_ok {
            eprintln!("perf_hotpath --check: FAILED");
            std::process::exit(1);
        }
        println!("perf_hotpath --check: all kernels within 15% of baseline, telemetry overhead within 2%");
        return;
    }

    // Cache-blocked matmul (attention projection shape).
    let tokens = 81;
    let a = Mat::from_vec(
        tokens,
        2 * n_ch,
        (0..tokens * 2 * n_ch)
            .map(|i| (i % 17) as f32 * 0.1)
            .collect(),
    )
    .unwrap();
    let b = Mat::from_vec(
        2 * n_ch,
        2 * n_ch,
        (0..4 * n_ch * n_ch)
            .map(|i| (i % 13) as f32 * 0.1)
            .collect(),
    )
    .unwrap();
    let bt = b.transpose();
    let t_mm = bench(reps * 20, || {
        a.matmul_transposed(&bt).unwrap();
    });
    let gflops = 2.0 * (tokens * 2 * n_ch * 2 * n_ch) as f64 / t_mm / 1e9;
    println!(
        "matmul {tokens}x{}x{}: {gflops:.2} GFLOP/s",
        2 * n_ch,
        2 * n_ch
    );

    // Thread scaling on the heaviest kernel at 1, 2 and max workers.
    let t_conv_1 = bench(reps, || {
        conv.forward_ctx(&x, &ctx1).unwrap();
    });
    let conv_scale_at = |threads: usize| -> f64 {
        let ctx = ExecCtx::with_threads(threads);
        let t = bench(reps, || {
            conv.forward_ctx(&x, &ctx).unwrap();
        });
        t_conv_1 / t
    };
    let conv_s2 = conv_scale_at(2);
    let conv_smax = conv_scale_at(max_threads);
    println!(
        "conv3x3 thread scaling: 1.00x / {conv_s2:.2}x / {conv_smax:.2}x at 1 / 2 / {max_threads} threads"
    );

    // ---- end-to-end encode/decode at 1, 2 and max threads ----
    let (ew, eh, frames) = if quick { (48, 32, 3) } else { (96, 64, 8) };
    let e2e_reps = if quick { 1 } else { 6 };
    let seq = Synthesizer::new(SceneConfig::uvg_like(ew, eh, frames)).generate();
    let serial = CtvcCodec::new(CtvcConfig::ctvc_sparse(BENCH_N).with_threads(1)).unwrap();
    let two = CtvcCodec::new(CtvcConfig::ctvc_sparse(BENCH_N).with_threads(2)).unwrap();
    let parallel = CtvcCodec::new(CtvcConfig::ctvc_sparse(BENCH_N).with_threads(0)).unwrap();

    let coded_serial = serial.encode(&seq, RatePoint::new(1)).unwrap();
    let coded_two = two.encode(&seq, RatePoint::new(1)).unwrap();
    let coded_parallel = parallel.encode(&seq, RatePoint::new(1)).unwrap();
    if coded_serial.bitstream != coded_parallel.bitstream
        || coded_serial.bitstream != coded_two.bitstream
    {
        eprintln!("FAIL: CTVC bitstreams diverged across thread counts");
        divergence = true;
    }
    // Interleave the thread variants per repetition (best-of over
    // rounds) so cache/clock drift cannot bias one variant. When the
    // host's max parallelism resolves to 1 or 2 workers, "max" IS the
    // 1- or 2-thread configuration — reuse that measurement instead of
    // timing the identical setup twice and reporting noise as scaling.
    let measure_max = max_threads > 2;
    let mut enc_t1 = f64::INFINITY;
    let mut enc_t2 = f64::INFINITY;
    let mut enc_tmax = f64::INFINITY;
    for _ in 0..e2e_reps {
        let t0 = Instant::now();
        serial.encode(&seq, RatePoint::new(1)).unwrap();
        enc_t1 = enc_t1.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        two.encode(&seq, RatePoint::new(1)).unwrap();
        enc_t2 = enc_t2.min(t0.elapsed().as_secs_f64());
        if measure_max {
            let t0 = Instant::now();
            parallel.encode(&seq, RatePoint::new(1)).unwrap();
            enc_tmax = enc_tmax.min(t0.elapsed().as_secs_f64());
        }
    }
    if !measure_max {
        enc_tmax = if max_threads == 1 { enc_t1 } else { enc_t2 };
    }

    let dec_serial = serial.decode(&coded_serial.bitstream).unwrap();
    let dec_parallel = parallel.decode(&coded_serial.bitstream).unwrap();
    for (a, b) in dec_serial.frames().iter().zip(dec_parallel.frames()) {
        if a.tensor().as_slice() != b.tensor().as_slice() {
            eprintln!("FAIL: CTVC serial vs parallel reconstructions diverged");
            divergence = true;
            break;
        }
    }
    let mut dec_t1 = f64::INFINITY;
    let mut dec_t2 = f64::INFINITY;
    let mut dec_tmax = f64::INFINITY;
    for _ in 0..e2e_reps {
        let t0 = Instant::now();
        serial.decode(&coded_serial.bitstream).unwrap();
        dec_t1 = dec_t1.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        two.decode(&coded_serial.bitstream).unwrap();
        dec_t2 = dec_t2.min(t0.elapsed().as_secs_f64());
        if measure_max {
            let t0 = Instant::now();
            parallel.decode(&coded_serial.bitstream).unwrap();
            dec_tmax = dec_tmax.min(t0.elapsed().as_secs_f64());
        }
    }
    if !measure_max {
        dec_tmax = if max_threads == 1 { dec_t1 } else { dec_t2 };
    }

    let fpf = frames as f64;
    println!(
        "end-to-end CTVC-Net(Sparse) N={BENCH_N} {ew}x{eh}x{frames}: \
         encode {:.2}/{:.2}/{:.2} fps (t1/t2/tmax), decode {:.2}/{:.2}/{:.2} fps",
        fpf / enc_t1,
        fpf / enc_t2,
        fpf / enc_tmax,
        fpf / dec_t1,
        fpf / dec_t2,
        fpf / dec_tmax
    );
    if dec_tmax > dec_t1 {
        println!(
            "WARN: decode tmax ({:.2} fps) below t1 ({:.2} fps)",
            fpf / dec_tmax,
            fpf / dec_t1
        );
    }

    // Hybrid codec: parallel motion search bit-exactness.
    let hs = HybridCodec::with_threads(Profile::hevc_like(), 1);
    let hp = HybridCodec::with_threads(Profile::hevc_like(), max_threads);
    let ch_s = hs.encode(&seq, 24).unwrap();
    let ch_p = hp.encode(&seq, 24).unwrap();
    if ch_s.bitstream != ch_p.bitstream {
        eprintln!("FAIL: hybrid serial vs parallel bitstreams diverged");
        divergence = true;
    }

    if divergence {
        eprintln!("perf_hotpath: serial-vs-parallel DIVERGENCE detected");
        std::process::exit(1);
    }
    println!("bit-exactness: serial and parallel outputs identical for both codec families");

    if quick {
        println!("quick mode: skipping BENCH_PR3.json");
        return;
    }

    let json = format!(
        "{{\n  \"pr\": 3,\n  \"generated_by\": \"perf_hotpath\",\n  \
         \"note\": \"fastconv_sparse50 executes pruned kernels in compressed (value, index) \
         form inside the grouped tiled executor (nvc_fastalg tile_exec.rs), so at rho = 0.5 \
         it must undercut fastconv_dense; ablation_sparsity --quick guards that ratio in \
         CI\",\n  \
         \"host_threads\": {max_threads},\n  \"kernel_shape\": \"N={n_ch} {h}x{w}\",\n  \
         \"calibration\": {{\"conv3x3_naive\": {{\"ms\": {naive_conv_ms:.3}}}}},\n  \
         \"kernels\": {{\n{}\n  }},\n  \
         \"sparse_speedup_vs_dense\": {sparse_speedup:.2},\n  \
         \"thread_scaling\": {{\n    \
         \"conv3x3\": {{\"threads_1\": 1.00, \"threads_2\": {conv_s2:.2}, \
         \"threads_max\": {conv_smax:.2}}},\n    \
         \"decode_fps\": {{\"threads_1\": {:.3}, \"threads_2\": {:.3}, \
         \"threads_max\": {:.3}}}\n  }},\n  \
         \"end_to_end\": {{\n    \
         \"config\": \"CTVC-Net(Sparse) N={BENCH_N} {ew}x{eh}x{frames}\",\n    \
         \"encode_fps_t1\": {:.3},\n    \"encode_fps_t2\": {:.3},\n    \
         \"encode_fps_tmax\": {:.3},\n    \
         \"decode_fps_t1\": {:.3},\n    \"decode_fps_t2\": {:.3},\n    \
         \"decode_fps_tmax\": {:.3},\n    \
         \"encode_speedup_tmax_vs_t1\": {:.2},\n    \
         \"decode_speedup_tmax_vs_t1\": {:.2},\n    \
         \"bit_exact_across_threads\": true\n  }}\n}}\n",
        json_kernels(&rows),
        fpf / dec_t1,
        fpf / dec_t2,
        fpf / dec_tmax,
        fpf / enc_t1,
        fpf / enc_t2,
        fpf / enc_tmax,
        fpf / dec_t1,
        fpf / dec_t2,
        fpf / dec_tmax,
        enc_t1 / enc_tmax,
        dec_t1 / dec_tmax,
    );
    let path = format!("{root}/BENCH_PR3.json");
    std::fs::write(&path, json).expect("write BENCH_PR3.json");
    println!("wrote {path}");
}
