//! Regenerates **Fig. 8**: rate–distortion curves (PSNR and MS-SSIM vs
//! bpp) on the UVG-like and HEVC-B-like presets.

#![forbid(unsafe_code)]

use nvc_bench::{dataset_presets, rd_sweep, LadderCodec};
use nvc_video::synthetic::Synthesizer;

fn main() {
    println!("=== Fig. 8: RD curves (series: bpp, PSNR dB, MS-SSIM) ===\n");
    let presets = dataset_presets();
    for (name, cfg) in presets.iter().take(2) {
        // Fig. 8 shows UVG and HEVC Class B.
        let seq = Synthesizer::new(cfg.clone()).generate();
        println!("--- dataset: {name} ---");
        for codec in LadderCodec::all() {
            eprintln!("[{name}] {}", codec.label());
            let samples = rd_sweep(codec, &seq);
            print!("{:<22}", codec.label());
            for s in &samples {
                print!(" ({:.4}, {:.2}, {:.4})", s.bpp, s.psnr, s.ms_ssim);
            }
            println!();
        }
        println!();
    }
    println!("Shape check: at equal bpp the CTVC variants sit above the classical");
    println!("profiles at low-to-mid rates, and the attention variants above the");
    println!("attention-free ones (paper Fig. 8: 'lowest bit consumption at the");
    println!("same compression quality').");
}
