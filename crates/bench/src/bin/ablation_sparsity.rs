//! Ablation **E6**: sparsity ρ sweep — RD impact of transform-domain
//! pruning vs the SCU multiplier budget and simulated throughput.
//!
//! `--quick` runs the CI guard instead: it times the dense and the
//! ρ = 50 % pruned fast operators on the real executor and exits
//! non-zero unless the sparse path is measurably *faster* (> 1.0×).
//! This is what keeps the dense-padded-buffer detour — where pruning
//! bought storage but zero compute — from silently coming back.

#![forbid(unsafe_code)]

use nvc_bench::{BENCH_FRAMES, BENCH_H, BENCH_N, BENCH_W};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::{Dataflow, NvcaConfig};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;

/// Best-of-`reps` wall time of `f`, in seconds (one untimed warmup).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// CI guard: compressed-kernel execution must beat dense execution.
fn quick_guard() {
    use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
    use nvc_tensor::ops::{Conv2d, DeConv2d};
    use nvc_tensor::{Shape, Tensor};

    let n_ch = 24;
    let (h, w) = (48, 48);
    let x = Tensor::from_fn(Shape::new(1, n_ch, h, w), |_, c, y, xx| {
        0.3 * ((c as f32 * 0.7 + y as f32 * 0.29 + xx as f32 * 0.13).sin())
    });
    let rho = Sparsity::new(0.5).unwrap();

    let conv = Conv2d::randn(n_ch, n_ch, 3, 1, 1, 7).unwrap();
    let dense = FastConv2d::from_conv(&conv).unwrap();
    let sparse = FastConv2d::from_conv_pruned(&conv, rho).unwrap();
    let t_dense = best_of(3, || {
        dense.forward(&x).unwrap();
    });
    let t_sparse = best_of(3, || {
        sparse.forward(&x).unwrap();
    });
    let conv_speedup = t_dense / t_sparse;

    let deconv = DeConv2d::randn(n_ch, n_ch, 4, 2, 1, 9).unwrap();
    let de_dense = FastDeConv2d::from_deconv(&deconv).unwrap();
    let de_sparse = FastDeConv2d::from_deconv_pruned(&deconv, rho).unwrap();
    let t_de_dense = best_of(3, || {
        de_dense.forward(&x).unwrap();
    });
    let t_de_sparse = best_of(3, || {
        de_sparse.forward(&x).unwrap();
    });
    let deconv_speedup = t_de_dense / t_de_sparse;

    println!(
        "ablation_sparsity --quick: fastconv rho=0.5 speedup {conv_speedup:.2}x \
         ({:.2} -> {:.2} ms), fastdeconv {deconv_speedup:.2}x ({:.2} -> {:.2} ms)",
        t_dense * 1e3,
        t_sparse * 1e3,
        t_de_dense * 1e3,
        t_de_sparse * 1e3
    );
    if conv_speedup <= 1.0 || deconv_speedup <= 1.0 {
        eprintln!(
            "FAIL: pruned execution is not faster than dense — the sparse \
             path has regressed to dense-equivalent work"
        );
        std::process::exit(1);
    }
    println!("sparse execution pays: pruning cuts wall time, not just stored weights");
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_guard();
        return;
    }
    println!("=== Ablation: sparsity rho sweep (paper operates at rho = 50%) ===\n");
    let seq = Synthesizer::new(SceneConfig::uvg_like(BENCH_W, BENCH_H, BENCH_FRAMES)).generate();
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "rho", "SCU muls", "PSNR dB", "bpp", "sim fps", "gates M"
    );
    for rho in [0.0, 0.25, 0.5, 0.625, 0.75] {
        // Functional quality at this sparsity.
        let mut cfg = CtvcConfig::ctvc_fxp(BENCH_N);
        cfg.sparsity = if rho > 0.0 { Some(rho) } else { None };
        let codec = CtvcCodec::new(cfg).expect("config");
        let coded = codec.encode(&seq, RatePoint::new(1)).expect("encode");
        let pairs: Vec<_> = seq.frames().iter().zip(coded.decoded.frames()).collect();
        let psnr = psnr_sequence(&pairs).expect("psnr");

        // Hardware at this sparsity (N = 36 paper workload).
        let mut hw = NvcaConfig::paper();
        hw.rho = rho;
        let mut model = CtvcConfig::ctvc_sparse(36);
        model.sparsity = if rho > 0.0 { Some(rho) } else { None };
        let nvca = Nvca::new(model, hw.clone()).expect("design");
        let rep = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
        println!(
            "{:>5.0}% {:>12} {:>10.2} {:>10.4} {:>12.1} {:>10.2}",
            rho * 100.0,
            hw.scu_multipliers(),
            psnr,
            coded.bpp,
            rep.fps,
            hw.gate_count_m()
        );
    }
    println!("\nShape check: quality degrades gracefully up to rho = 50% then faster;");
    println!("multiplier count (area) halves at rho = 50% — the paper's design point.");
}
