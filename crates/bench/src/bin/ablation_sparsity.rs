//! Ablation **E6**: sparsity ρ sweep — RD impact of transform-domain
//! pruning vs the SCU multiplier budget and simulated throughput.

use nvc_bench::{BENCH_FRAMES, BENCH_H, BENCH_N, BENCH_W};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::{Dataflow, NvcaConfig};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;

fn main() {
    println!("=== Ablation: sparsity rho sweep (paper operates at rho = 50%) ===\n");
    let seq = Synthesizer::new(SceneConfig::uvg_like(BENCH_W, BENCH_H, BENCH_FRAMES)).generate();
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "rho", "SCU muls", "PSNR dB", "bpp", "sim fps", "gates M"
    );
    for rho in [0.0, 0.25, 0.5, 0.625, 0.75] {
        // Functional quality at this sparsity.
        let mut cfg = CtvcConfig::ctvc_fxp(BENCH_N);
        cfg.sparsity = if rho > 0.0 { Some(rho) } else { None };
        let codec = CtvcCodec::new(cfg).expect("config");
        let coded = codec.encode(&seq, RatePoint::new(1)).expect("encode");
        let pairs: Vec<_> = seq.frames().iter().zip(coded.decoded.frames()).collect();
        let psnr = psnr_sequence(&pairs).expect("psnr");

        // Hardware at this sparsity (N = 36 paper workload).
        let mut hw = NvcaConfig::paper();
        hw.rho = rho;
        let mut model = CtvcConfig::ctvc_sparse(36);
        model.sparsity = if rho > 0.0 { Some(rho) } else { None };
        let nvca = Nvca::new(model, hw.clone()).expect("design");
        let rep = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
        println!(
            "{:>5.0}% {:>12} {:>10.2} {:>10.4} {:>12.1} {:>10.2}",
            rho * 100.0,
            hw.scu_multipliers(),
            psnr,
            coded.bpp,
            rep.fps,
            hw.gate_count_m()
        );
    }
    println!("\nShape check: quality degrades gracefully up to rho = 50% then faster;");
    println!("multiplier count (area) halves at rho = 50% — the paper's design point.");
}
