//! Shared harness utilities for regenerating every table and figure of
//! the paper. Each `src/bin/*.rs` binary prints one table/figure; see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::bdrate::{ms_ssim_db, RdPoint};
use nvc_video::metrics::{ms_ssim_sequence, psnr_sequence};
use nvc_video::synthetic::SceneConfig;
use nvc_video::Sequence;

/// Channel width used for *functional* RD experiments. The paper trains
/// with `N = 36`; the analytic weight construction is scale-free, so the
/// RD harness uses a narrower network to keep the sweep fast. Hardware
/// simulations always use the paper's `N = 36`.
pub const BENCH_N: usize = 12;

/// Resolution and length of the functional RD sweeps (multiple of 16).
pub const BENCH_W: usize = 96;
/// See [`BENCH_W`].
pub const BENCH_H: usize = 64;
/// Frames per synthetic sequence in RD sweeps.
pub const BENCH_FRAMES: usize = 16;

/// Every codec appearing in the Table I / Fig. 8 ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderCodec {
    /// AVC-like classical profile.
    AvcLike,
    /// HEVC-like classical profile — the BD-rate anchor.
    HevcLike,
    /// DVC-like learned baseline.
    DvcLike,
    /// FVC-like learned baseline (feature space, no attention).
    FvcLike,
    /// CTVC-Net, full precision.
    CtvcFp,
    /// CTVC-Net, fixed point.
    CtvcFxp,
    /// CTVC-Net, fixed point + 50 % transform-domain sparsity.
    CtvcSparse,
}

impl LadderCodec {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            LadderCodec::AvcLike => "H.264-like",
            LadderCodec::HevcLike => "H.265-like (anchor)",
            LadderCodec::DvcLike => "DVC-like",
            LadderCodec::FvcLike => "FVC-like",
            LadderCodec::CtvcFp => "CTVC-Net(FP)",
            LadderCodec::CtvcFxp => "CTVC-Net(FXP)",
            LadderCodec::CtvcSparse => "CTVC-Net(Sparse)",
        }
    }

    /// All ladder codecs in Table I row order.
    pub fn all() -> [LadderCodec; 7] {
        [
            LadderCodec::AvcLike,
            LadderCodec::DvcLike,
            LadderCodec::HevcLike,
            LadderCodec::FvcLike,
            LadderCodec::CtvcFp,
            LadderCodec::CtvcFxp,
            LadderCodec::CtvcSparse,
        ]
    }
}

/// One measured rate–distortion sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdSample {
    /// Bits per pixel.
    pub bpp: f64,
    /// PSNR in dB.
    pub psnr: f64,
    /// MS-SSIM in `[0, 1]`.
    pub ms_ssim: f64,
}

/// The three dataset presets of the paper's evaluation.
pub fn dataset_presets() -> Vec<(&'static str, SceneConfig)> {
    vec![
        (
            "UVG-like",
            SceneConfig::uvg_like(BENCH_W, BENCH_H, BENCH_FRAMES),
        ),
        (
            "HEVC-B-like",
            SceneConfig::hevc_b_like(BENCH_W, BENCH_H, BENCH_FRAMES),
        ),
        (
            "MCL-JCV-like",
            SceneConfig::mcl_jcv_like(BENCH_W, BENCH_H, BENCH_FRAMES),
        ),
    ]
}

fn measure(seq: &Sequence, rec: &Sequence, bpp: f64) -> RdSample {
    let pairs: Vec<_> = seq.frames().iter().zip(rec.frames()).collect();
    let pairs: Vec<_> = pairs.iter().map(|(a, b)| (*a, *b)).collect();
    RdSample {
        bpp,
        psnr: psnr_sequence(&pairs).expect("matched sequences"),
        ms_ssim: ms_ssim_sequence(&pairs).expect("matched sequences"),
    }
}

/// Runs a full RD sweep (4 rate points) for one codec on one sequence.
///
/// # Panics
///
/// Panics if encoding fails (the harness treats that as a bug).
pub fn rd_sweep(codec: LadderCodec, seq: &Sequence) -> Vec<RdSample> {
    match codec {
        LadderCodec::AvcLike | LadderCodec::HevcLike => {
            let profile = if codec == LadderCodec::AvcLike {
                Profile::avc_like()
            } else {
                Profile::hevc_like()
            };
            let hc = HybridCodec::new(profile);
            // Six points spanning ultra-coarse to moderate quality so the
            // anchor curve overlaps the learned codecs' distortion range.
            [58u8, 52, 46, 40, 34, 28]
                .iter()
                .map(|&qp| {
                    let coded = hc.encode(seq, qp).expect("hybrid encode");
                    measure(seq, &coded.decoded, coded.bpp)
                })
                .collect()
        }
        learned => {
            let cfg = match learned {
                LadderCodec::DvcLike => CtvcConfig::dvc_like(BENCH_N),
                LadderCodec::FvcLike => CtvcConfig::fvc_like(BENCH_N),
                LadderCodec::CtvcFp => CtvcConfig::ctvc_fp(BENCH_N),
                LadderCodec::CtvcFxp => CtvcConfig::ctvc_fxp(BENCH_N),
                LadderCodec::CtvcSparse => CtvcConfig::ctvc_sparse(BENCH_N),
                _ => unreachable!(),
            };
            let cc = CtvcCodec::new(cfg).expect("valid config");
            RatePoint::sweep()
                .iter()
                .map(|&r| {
                    let coded = cc.encode(seq, r).expect("ctvc encode");
                    measure(seq, &coded.decoded, coded.bpp)
                })
                .collect()
        }
    }
}

/// Converts samples to `(rate, PSNR-dB)` points for BD-rate.
pub fn psnr_curve(samples: &[RdSample]) -> Vec<RdPoint> {
    samples.iter().map(|s| (s.bpp, s.psnr)).collect()
}

/// Converts samples to `(rate, MS-SSIM-dB)` points for BD-rate.
pub fn msssim_curve(samples: &[RdSample]) -> Vec<RdPoint> {
    samples
        .iter()
        .map(|s| (s.bpp, ms_ssim_db(s.ms_ssim)))
        .collect()
}

/// Formats a BD-rate value (or n/a when curves do not overlap).
pub fn fmt_bd(bd: Result<f64, nvc_video::VideoError>) -> String {
    match bd {
        Ok(v) => format!("{v:+8.2}"),
        Err(_) => "     n/a".to_string(),
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in
/// `[0, 1]`); `0.0` for an empty slice. Shared by the latency-reporting
/// load harnesses.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_video::synthetic::Synthesizer;

    #[test]
    fn rd_sweep_produces_monotone_rates_for_anchor() {
        let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 2)).generate();
        let samples = rd_sweep(LadderCodec::HevcLike, &seq);
        assert_eq!(samples.len(), 6);
        for w in samples.windows(2) {
            assert!(w[1].bpp > w[0].bpp, "rate must increase with finer QP");
            assert!(w[1].psnr > w[0].psnr, "quality must increase with finer QP");
        }
    }

    #[test]
    fn dataset_presets_are_three() {
        assert_eq!(dataset_presets().len(), 3);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 5.0);
        assert_eq!(percentile(&sorted, 0.9), 5.0, "0.9 of 4 rounds to rank 4");
    }

    #[test]
    fn curves_convert() {
        let s = [RdSample {
            bpp: 0.1,
            psnr: 30.0,
            ms_ssim: 0.95,
        }];
        assert_eq!(psnr_curve(&s)[0], (0.1, 30.0));
        assert!(msssim_curve(&s)[0].1 > 12.0);
    }
}
