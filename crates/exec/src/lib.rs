//! Execution engine for the workspace's compute hot path.
//!
//! Every layer of CTVC-Net (and the classical baseline's motion search) is
//! embarrassingly parallel over *output channels*, *tiles* or *blocks*:
//! disjoint regions of the output, each with a fixed, serial accumulation
//! order. [`ExecCtx`] exploits exactly that structure and nothing more:
//!
//! * [`ExecCtx::par_chunks_mut`] splits a flat output buffer into
//!   fixed-size chunks (one per channel plane / tile / block) and fans
//!   contiguous chunk ranges out over `std::thread::scope` workers. A
//!   worker owns each chunk exclusively and computes it with the same code
//!   and the same accumulation order regardless of the worker count, so
//!   results are **bit-identical** for `threads = 1, 2, …, max` by
//!   construction.
//! * [`ExecCtx::par_chunks_mut_gated`] adds per-shape work-size gating on
//!   top: callers pass an estimate of the call's arithmetic work, and
//!   below [`PAR_MIN_WORK`] the fan-out is skipped entirely — spawning
//!   scoped workers costs tens of microseconds, which dwarfs the compute
//!   of a small decode-side plane. Gating never changes results (serial
//!   and parallel execution are bit-identical by construction).
//! * [`ExecCtx::join`] runs two independent computations on two workers —
//!   the coarse grain the codec uses to overlap whole module invocations
//!   (motion-compensation branch ∥ residual-synthesis branch) instead of
//!   relying on row/tile fan-out alone.
//! * [`ScratchPool`] lends reusable `Vec<f32>` buffers (transform-domain
//!   tile stores, per-layer staging) so steady-state forward passes stay
//!   allocation-free across calls.
//!
//! The crate is `std`-only (the build environment is offline); the pool is
//! scoped rather than persistent, which keeps borrowed inputs/outputs safe
//! without any `unsafe`.
//!
//! # Example
//!
//! ```
//! use nvc_core::ExecCtx;
//! let ctx = ExecCtx::with_threads(4);
//! let mut out = vec![0.0_f32; 12];
//! // Three chunks of four elements, computed independently.
//! ctx.par_chunks_mut(&mut out, 4, |chunk_idx, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_idx * 4 + i) as f32;
//!     }
//! });
//! assert_eq!(out[5], 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Minimum arithmetic work (multiply–accumulates, or comparable scalar
/// ops) a [`ExecCtx::par_chunks_mut_gated`] call must carry before the
/// worker fan-out pays for itself. Spawning + joining scoped threads
/// costs tens of microseconds; below this threshold a small layer (the
/// decode-side latent planes especially) finishes faster serially.
pub const PAR_MIN_WORK: u64 = 1 << 18;

/// Upper bound on cached scratch buffers, to keep the pool from hoarding
/// memory when layers of very different sizes alternate.
const MAX_POOLED_BUFFERS: usize = 16;

/// Upper bound on total cached scratch capacity (in `f32` elements,
/// ≈ 128 MB). A buffer whose return would push the pool past this budget
/// is dropped instead of cached, so a single huge layer cannot pin its
/// peak working set for the context's whole lifetime.
const MAX_POOLED_FLOATS: usize = 32 << 20;

/// A pool of reusable `f32` buffers.
///
/// `take` hands out a zeroed buffer of the requested length (recycling a
/// previously returned allocation when one exists); `put` returns a buffer
/// to the pool. The pool is internally synchronized, so an [`ExecCtx`]
/// shared across scoped workers can lend buffers concurrently.
#[derive(Default)]
pub struct ScratchPool {
    bufs: Mutex<Vec<Vec<f32>>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a zeroed buffer of exactly `len` elements.
    pub fn take(&self, len: usize) -> Vec<f32> {
        let recycled = self
            .bufs
            .lock()
            .ok()
            .and_then(|mut bufs| bufs.pop())
            .unwrap_or_default();
        let mut buf = recycled;
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse. Buffers that would push
    /// the pool past its count or byte budget are dropped instead.
    pub fn put(&self, buf: Vec<f32>) {
        if let Ok(mut bufs) = self.bufs.lock() {
            let cached_floats: usize = bufs.iter().map(|b| b.capacity()).sum();
            if bufs.len() < MAX_POOLED_BUFFERS
                && cached_floats + buf.capacity() <= MAX_POOLED_FLOATS
            {
                bufs.push(buf);
            }
        }
    }

    /// Number of buffers currently cached.
    pub fn cached(&self) -> usize {
        self.bufs.lock().map(|b| b.len()).unwrap_or(0)
    }
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScratchPool({} cached)", self.cached())
    }
}

/// Execution context: a worker count plus a scratch-buffer pool.
///
/// Passed by reference through `nvc_tensor::ops`, `nvc_fastalg` and
/// `nvc_model`; the codec owns one and reuses it for every layer, so
/// scratch buffers survive across forward passes.
pub struct ExecCtx {
    threads: usize,
    scratch: ScratchPool,
}

impl ExecCtx {
    /// A single-threaded context (the reference execution order).
    pub fn serial() -> Self {
        ExecCtx {
            threads: 1,
            scratch: ScratchPool::new(),
        }
    }

    /// A context using all available hardware parallelism.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecCtx {
            threads,
            scratch: ScratchPool::new(),
        }
    }

    /// A context with an explicit worker count; `0` selects
    /// [`ExecCtx::auto`].
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            ExecCtx::auto()
        } else {
            ExecCtx {
                threads,
                scratch: ScratchPool::new(),
            }
        }
    }

    /// The worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scratch-buffer pool.
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// final chunk may be shorter) and calls `f(chunk_index, chunk)` for
    /// each, fanning contiguous chunk ranges out across the worker pool.
    ///
    /// Each chunk is visited exactly once, by exactly one worker, with
    /// `chunk_index` counting chunks in order from the start of `data` —
    /// so any computation that writes only through its own chunk and reads
    /// only shared immutable state produces output independent of the
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, or propagates a worker panic.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be non-zero");
        let n_chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        // Contiguous block partition: worker t owns chunk indices
        // [start_t, start_t + count_t) and the matching sub-slice.
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut next_chunk = 0usize;
            let mut own: Option<(usize, &mut [T])> = None;
            for t in 0..workers {
                let count = n_chunks / workers + usize::from(t < n_chunks % workers);
                let split = (count * chunk_len).min(rest.len());
                let (head, tail) = rest.split_at_mut(split);
                rest = tail;
                let start = next_chunk;
                next_chunk += count;
                if t == 0 {
                    // The calling thread works too, on the first range.
                    own = Some((start, head));
                } else {
                    scope.spawn(move || {
                        for (j, chunk) in head.chunks_mut(chunk_len).enumerate() {
                            f(start + j, chunk);
                        }
                    });
                }
            }
            if let Some((start, head)) = own {
                for (j, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(start + j, chunk);
                }
            }
        });
    }

    /// [`ExecCtx::par_chunks_mut`] with per-shape work-size gating: `work`
    /// estimates the call's total arithmetic (multiply–accumulates or
    /// comparable); below [`PAR_MIN_WORK`] the chunks run serially on the
    /// calling thread instead of fanning out, because worker spawn/join
    /// overhead exceeds the compute. Results are bit-identical either way,
    /// so gating is purely a latency decision.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ExecCtx::par_chunks_mut`].
    pub fn par_chunks_mut_gated<T, F>(&self, data: &mut [T], chunk_len: usize, work: u64, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be non-zero");
        if self.threads <= 1 || work < PAR_MIN_WORK {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        self.par_chunks_mut(data, chunk_len, f);
    }

    /// Runs two independent computations, on two workers when the context
    /// has them (`b` on a scoped thread, `a` on the calling thread),
    /// serially otherwise. This is the codec's coarse parallel grain:
    /// whole module invocations (e.g. the motion-compensation branch and
    /// the residual-synthesis branch of a P frame) overlap instead of
    /// relying on per-layer row/tile fan-out alone.
    ///
    /// Both closures compute independent values, so the results are
    /// identical for every worker count by construction.
    ///
    /// # Panics
    ///
    /// Propagates a panic from either closure.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.threads <= 1 {
            return (a(), b());
        }
        std::thread::scope(|scope| {
            let hb = scope.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::auto()
    }
}

/// A shared, capped budget of worker-thread permits.
///
/// One process-wide `ExecPool` coordinates many concurrent [`ExecCtx`]
/// users — typically the serving layer, where every connection owns a
/// session whose layer work fans out on its own context. Each unit of
/// scheduled work takes a [`lease`](ExecPool::lease) for as many permits
/// as the threads it is about to occupy; when all permits are out,
/// further leases block until one is returned. The combined fan-out
/// across sessions therefore never oversubscribes the cap, no matter how
/// many connections are live.
///
/// Leases are all-or-nothing and never nest, so the pool cannot
/// deadlock: every holder eventually drops its lease, waking a waiter.
/// Cloning the pool is cheap and shares the same budget.
///
/// # Example
///
/// ```
/// use nvc_core::ExecPool;
/// let pool = ExecPool::new(4);
/// let a = pool.lease(3);
/// assert_eq!(a.permits(), 3);
/// assert_eq!(pool.available(), 1);
/// assert!(pool.try_lease(2).is_none()); // only 1 permit left
/// drop(a);
/// assert_eq!(pool.available(), 4);
/// ```
#[derive(Clone)]
pub struct ExecPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    cap: usize,
    available: Mutex<usize>,
    freed: Condvar,
    metrics: PoolMetrics,
}

/// The pool's process-global instrumentation. Every pool in the process
/// reports into the same three metrics — lease waits, lease hold times
/// and permits currently out — which is the aggregate the serving layer
/// wants (one compute budget, however many pool handles exist).
struct PoolMetrics {
    lease_wait_us: nvc_telemetry::Histogram,
    lease_hold_us: nvc_telemetry::Histogram,
    leased: nvc_telemetry::Gauge,
}

impl PoolMetrics {
    fn new() -> Self {
        PoolMetrics {
            lease_wait_us: nvc_telemetry::histogram("nvc_pool_lease_wait_us"),
            lease_hold_us: nvc_telemetry::histogram("nvc_pool_lease_hold_us"),
            leased: nvc_telemetry::gauge("nvc_pool_permits_leased"),
        }
    }
}

impl ExecPool {
    /// Creates a pool with `cap` thread permits (`0` = all available
    /// hardware parallelism).
    pub fn new(cap: usize) -> Self {
        let cap = if cap == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cap
        };
        ExecPool {
            inner: Arc::new(PoolInner {
                cap,
                available: Mutex::new(cap),
                freed: Condvar::new(),
                metrics: PoolMetrics::new(),
            }),
        }
    }

    /// The total permit budget.
    pub fn cap(&self) -> usize {
        self.inner.cap
    }

    /// Permits not currently leased (a snapshot; other holders may take
    /// or return permits immediately after).
    pub fn available(&self) -> usize {
        *self.inner.available.lock().expect("pool lock")
    }

    /// Takes `want.clamp(1, cap)` permits, blocking until they are all
    /// free. The returned lease carries an [`ExecCtx`] sized to the
    /// granted permits, for callers that thread a context through their
    /// work; callers whose sessions own a fixed-width context instead use
    /// the lease purely as an admission token of equal width.
    pub fn lease(&self, want: usize) -> ExecLease {
        let want = want.clamp(1, self.inner.cap);
        let wait = self.inner.metrics.lease_wait_us.time();
        let mut available = self.inner.available.lock().expect("pool lock");
        while *available < want {
            available = self.inner.freed.wait(available).expect("pool lock");
        }
        *available -= want;
        drop(available);
        drop(wait);
        self.grant(want)
    }

    /// [`ExecPool::lease`] with a deadline: blocks until the permits are
    /// all free or `timeout` elapses, returning `None` on timeout.
    ///
    /// This is the shape fan-out work wants — e.g. the serving layer's
    /// broadcast writers, where thousands of subscribers share a small
    /// permit budget for their copy/serialize bursts: a brief wait rides
    /// out contention, but a stalled holder must not turn into unbounded
    /// head-of-line blocking for every other waiter.
    pub fn lease_timeout(&self, want: usize, timeout: Duration) -> Option<ExecLease> {
        let want = want.clamp(1, self.inner.cap);
        let deadline = Instant::now() + timeout;
        let wait = self.inner.metrics.lease_wait_us.time();
        let mut available = self.inner.available.lock().expect("pool lock");
        while *available < want {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .freed
                .wait_timeout(available, deadline - now)
                .expect("pool lock");
            available = guard;
        }
        *available -= want;
        drop(available);
        drop(wait);
        Some(self.grant(want))
    }

    /// Non-blocking [`ExecPool::lease`]: returns `None` when the permits
    /// are not currently free.
    pub fn try_lease(&self, want: usize) -> Option<ExecLease> {
        let want = want.clamp(1, self.inner.cap);
        let mut available = self.inner.available.lock().expect("pool lock");
        if *available < want {
            return None;
        }
        *available -= want;
        drop(available);
        Some(self.grant(want))
    }

    fn grant(&self, permits: usize) -> ExecLease {
        self.inner.metrics.leased.add(permits as i64);
        ExecLease {
            hold: self.inner.metrics.lease_hold_us.time(),
            inner: Arc::clone(&self.inner),
            ctx: ExecCtx::with_threads(permits),
            permits,
        }
    }
}

impl fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecPool({}/{} free)", self.available(), self.cap())
    }
}

/// A granted permit bundle from an [`ExecPool`]; permits return to the
/// pool on drop. Derefs to the carried [`ExecCtx`] (sized to the grant).
pub struct ExecLease {
    inner: Arc<PoolInner>,
    ctx: ExecCtx,
    permits: usize,
    /// Open span timing how long the grant is held — the pool's "task
    /// run time" proxy; records into `nvc_pool_lease_hold_us` on drop.
    hold: Option<nvc_telemetry::SpanGuard>,
}

impl ExecLease {
    /// Number of permits held.
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// The execution context sized to this grant.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }
}

impl std::ops::Deref for ExecLease {
    type Target = ExecCtx;

    fn deref(&self) -> &ExecCtx {
        &self.ctx
    }
}

impl Drop for ExecLease {
    fn drop(&mut self) {
        self.hold.take();
        self.inner.metrics.leased.sub(self.permits as i64);
        if let Ok(mut available) = self.inner.available.lock() {
            *available += self.permits;
        }
        self.inner.freed.notify_all();
    }
}

impl fmt::Debug for ExecLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecLease({} permits)", self.permits)
    }
}

impl Clone for ExecCtx {
    /// Clones the worker-count configuration; the scratch pool starts
    /// empty (it is a cache, not state).
    fn clone(&self) -> Self {
        ExecCtx {
            threads: self.threads,
            scratch: ScratchPool::new(),
        }
    }
}

impl fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecCtx({} threads, {:?})", self.threads, self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn run_chunks(ctx: &ExecCtx, len: usize, chunk: usize) -> Vec<f32> {
        let mut data = vec![-1.0_f32; len];
        ctx.par_chunks_mut(&mut data, chunk, |idx, c| {
            for (i, v) in c.iter_mut().enumerate() {
                *v = (idx * 1000 + i) as f32;
            }
        });
        data
    }

    #[test]
    fn chunk_indices_and_coverage_are_worker_count_independent() {
        let reference = run_chunks(&ExecCtx::serial(), 103, 10);
        for threads in [2, 3, 4, 7, 64] {
            let got = run_chunks(&ExecCtx::with_threads(threads), 103, 10);
            assert_eq!(got, reference, "threads={threads}");
        }
        // Every element visited exactly once (none left at the sentinel).
        assert!(reference.iter().all(|&v| v >= 0.0));
        // Final partial chunk got the right index.
        assert_eq!(reference[100], 10_000.0);
    }

    #[test]
    fn all_chunks_visited_once() {
        let counter = AtomicUsize::new(0);
        let mut data = vec![0u8; 64];
        ExecCtx::with_threads(5).par_chunks_mut(&mut data, 4, |_, c| {
            counter.fetch_add(1, Ordering::SeqCst);
            assert_eq!(c.len(), 4);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn more_workers_than_chunks_degrades_gracefully() {
        let got = run_chunks(&ExecCtx::with_threads(16), 8, 4);
        assert_eq!(got, run_chunks(&ExecCtx::serial(), 8, 4));
        // Empty input is a no-op.
        let mut empty: [f32; 0] = [];
        ExecCtx::with_threads(4).par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks"));
    }

    #[test]
    fn constructors() {
        assert_eq!(ExecCtx::serial().threads(), 1);
        assert!(ExecCtx::auto().threads() >= 1);
        assert_eq!(ExecCtx::with_threads(3).threads(), 3);
        assert_eq!(
            ExecCtx::with_threads(0).threads(),
            ExecCtx::auto().threads()
        );
        assert_eq!(ExecCtx::default().threads(), ExecCtx::auto().threads());
        let c = ExecCtx::with_threads(2);
        c.scratch().put(vec![0.0; 9]);
        assert_eq!(c.clone().threads(), 2);
        assert_eq!(c.clone().scratch().cached(), 0, "clone starts empty");
    }

    #[test]
    fn scratch_recycles_buffers() {
        let pool = ScratchPool::new();
        let mut a = pool.take(8);
        assert_eq!(a, vec![0.0; 8]);
        a[3] = 7.0;
        pool.put(a);
        assert_eq!(pool.cached(), 1);
        // Recycled buffer comes back zeroed at the new length.
        let b = pool.take(4);
        assert_eq!(b, vec![0.0; 4]);
        assert_eq!(pool.cached(), 0);
        let c = pool.take(12);
        assert_eq!(c, vec![0.0; 12]);
    }

    #[test]
    fn scratch_respects_byte_budget() {
        let pool = ScratchPool::new();
        // An over-budget buffer is dropped, not cached.
        pool.put(Vec::with_capacity(MAX_POOLED_FLOATS + 1));
        assert_eq!(pool.cached(), 0);
        // Small buffers still pool normally alongside the budget check.
        pool.put(vec![0.0; 8]);
        assert_eq!(pool.cached(), 1);
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_len_panics() {
        let mut data = vec![0.0_f32; 4];
        ExecCtx::serial().par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn gated_execution_matches_ungated() {
        let reference = run_chunks(&ExecCtx::serial(), 103, 10);
        for work in [0, PAR_MIN_WORK - 1, PAR_MIN_WORK, u64::MAX] {
            let ctx = ExecCtx::with_threads(4);
            let mut data = vec![-1.0_f32; 103];
            ctx.par_chunks_mut_gated(&mut data, 10, work, |idx, c| {
                for (i, v) in c.iter_mut().enumerate() {
                    *v = (idx * 1000 + i) as f32;
                }
            });
            assert_eq!(data, reference, "work={work}");
        }
    }

    #[test]
    fn small_work_stays_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let mut data = vec![0u8; 64];
        ExecCtx::with_threads(8).par_chunks_mut_gated(&mut data, 4, PAR_MIN_WORK - 1, |_, _| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "gated call must not fan out"
            );
        });
    }

    #[test]
    fn join_runs_both_closures() {
        for threads in [1, 2, 4] {
            let ctx = ExecCtx::with_threads(threads);
            let (a, b) = ctx.join(|| 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn join_overlaps_on_multiple_workers() {
        let ctx = ExecCtx::with_threads(2);
        let caller = std::thread::current().id();
        let (ta, tb) = ctx.join(
            || std::thread::current().id(),
            || std::thread::current().id(),
        );
        assert_eq!(ta, caller, "closure a runs on the calling thread");
        assert_ne!(tb, caller, "closure b runs on a scoped worker");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_worker_panics() {
        ExecCtx::with_threads(2).join(|| (), || panic!("boom"));
    }

    #[test]
    fn pool_caps_and_returns_permits() {
        let pool = ExecPool::new(3);
        assert_eq!(pool.cap(), 3);
        let a = pool.lease(2);
        assert_eq!(a.permits(), 2);
        assert_eq!(a.ctx().threads(), 2);
        assert_eq!(a.threads(), 2, "lease derefs to its context");
        assert_eq!(pool.available(), 1);
        // Oversized requests clamp to the cap instead of deadlocking.
        assert!(pool.try_lease(10).is_none(), "clamped want 10 -> 3 > 1");
        let b = pool.try_lease(1).expect("one permit free");
        assert_eq!(pool.available(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.available(), 3);
        let full = pool.lease(10);
        assert_eq!(full.permits(), 3);
    }

    #[test]
    fn pool_blocks_until_permits_return() {
        let pool = ExecPool::new(2);
        let held = pool.lease(2);
        let clone = pool.clone();
        std::thread::scope(|s| {
            let waiter = s.spawn(move || clone.lease(2).permits());
            // Give the waiter time to block, then release.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
            assert_eq!(waiter.join().unwrap(), 2);
        });
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pool_lease_timeout_expires_and_succeeds() {
        let pool = ExecPool::new(2);
        let held = pool.lease(2);
        // Saturated pool: a short deadline expires without permits.
        let start = std::time::Instant::now();
        assert!(pool
            .lease_timeout(1, std::time::Duration::from_millis(30))
            .is_none());
        assert!(start.elapsed() >= std::time::Duration::from_millis(25));
        // A waiter whose deadline outlives the holder gets its grant.
        let clone = pool.clone();
        std::thread::scope(|s| {
            let waiter = s.spawn(move || {
                clone
                    .lease_timeout(2, std::time::Duration::from_secs(30))
                    .expect("permits freed before the deadline")
                    .permits()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
            assert_eq!(waiter.join().unwrap(), 2);
        });
        // A free pool grants immediately, even with a zero timeout.
        assert_eq!(
            pool.lease_timeout(1, std::time::Duration::ZERO)
                .expect("free pool")
                .permits(),
            1
        );
    }

    #[test]
    fn pool_auto_cap_matches_hardware() {
        assert_eq!(ExecPool::new(0).cap(), ExecCtx::auto().threads());
        let zero = ExecPool::new(1);
        assert_eq!(zero.lease(0).permits(), 1, "want 0 clamps to 1");
    }
}
