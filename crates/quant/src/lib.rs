//! Fixed-point quantization substrate.
//!
//! The paper deploys CTVC-Net with **FXP16 weights** and **FXP12
//! activations** (Table II: "Precision (A-W): FXP 12-16"). This crate
//! provides the two ingredients needed to evaluate that configuration in
//! software:
//!
//! * [`QFormat`] — a signed two's-complement `Qm.n` fixed-point format
//!   (total bits, fractional bits) with saturating round-to-nearest
//!   quantization, and
//! * [`fake_quantize`] / [`QuantTensor`] — tensor-level quantize /
//!   dequantize, including automatic per-tensor format selection
//!   ([`QFormat::for_range`]), which is how the accelerator's per-layer
//!   scaling registers are modelled.
//!
//! "Fake quantization" (quantize then immediately dequantize, computing in
//! `f32`) reproduces the *numerics* of fixed-point inference — every value
//! is restricted to the representable grid — without re-implementing
//! integer arithmetic inside every operator; this is the standard software
//! evaluation methodology for accelerator precision studies and is
//! recorded as such in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use nvc_quant::QFormat;
//! # fn main() -> Result<(), nvc_quant::QuantError> {
//! let fmt = QFormat::new(12, 8)?; // Q4.8: activations
//! let q = fmt.quantize(1.2345);
//! let back = fmt.dequantize(q);
//! assert!((back - 1.2345).abs() <= fmt.step() / 2.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use nvc_tensor::{Shape, Tensor};
use std::error::Error;
use std::fmt;

/// Error type for fixed-point format construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// The requested format is not representable (zero width, too wide,
    /// or more fractional than total bits).
    InvalidFormat {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidFormat { reason } => {
                write!(f, "invalid fixed-point format: {reason}")
            }
        }
    }
}

impl Error for QuantError {}

/// Signed two's-complement fixed-point format `Q(total−frac−1).(frac)`.
///
/// Values are stored as `i32`; the representable range is
/// `[−2^(total−1), 2^(total−1) − 1]` codes, i.e.
/// `[−2^(total−1), 2^(total−1) − 1] · 2^(−frac)` in real value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a format with `total_bits` total width (including sign) and
    /// `frac_bits` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidFormat`] if `total_bits` is 0 or
    /// exceeds 31, or `frac_bits >= total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Result<Self, QuantError> {
        if total_bits == 0 || total_bits > 31 {
            return Err(QuantError::InvalidFormat {
                reason: format!("total bits {total_bits} outside 1..=31"),
            });
        }
        if frac_bits >= total_bits {
            return Err(QuantError::InvalidFormat {
                reason: format!("frac bits {frac_bits} must be < total bits {total_bits}"),
            });
        }
        Ok(QFormat {
            total_bits,
            frac_bits,
        })
    }

    /// The paper's weight format: 16-bit fixed point. Integer bits are
    /// chosen for a ±2 weight range (Q1.14).
    pub fn weights16() -> Self {
        QFormat {
            total_bits: 16,
            frac_bits: 14,
        }
    }

    /// The paper's activation format: 12-bit fixed point with a ±8 range
    /// (Q3.8).
    pub fn activations12() -> Self {
        QFormat {
            total_bits: 12,
            frac_bits: 8,
        }
    }

    /// Picks the format with `total_bits` width whose range just covers
    /// `max_abs` — the per-layer dynamic scaling the accelerator applies.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidFormat`] if `total_bits` is invalid.
    pub fn for_range(total_bits: u32, max_abs: f32) -> Result<Self, QuantError> {
        if total_bits == 0 || total_bits > 31 {
            return Err(QuantError::InvalidFormat {
                reason: format!("total bits {total_bits} outside 1..=31"),
            });
        }
        let max_abs = max_abs.abs().max(1e-12);
        // Smallest integer-bit count i with 2^i > max_abs.
        let int_bits = max_abs.log2().floor() as i32 + 1;
        let int_bits = int_bits.clamp(0, total_bits as i32 - 1) as u32;
        QFormat::new(total_bits, total_bits - 1 - int_bits)
    }

    /// Total bit width including sign.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Fractional bit count.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Quantization step (one least-significant bit), `2^(−frac)`.
    pub fn step(&self) -> f32 {
        (2.0_f32).powi(-(self.frac_bits as i32))
    }

    /// Smallest representable real value.
    pub fn min_value(&self) -> f32 {
        -((1_i64 << (self.total_bits - 1)) as f32) * self.step()
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f32 {
        ((1_i64 << (self.total_bits - 1)) - 1) as f32 * self.step()
    }

    /// Quantizes a real value to the nearest representable code,
    /// saturating at the format bounds. Rounds half away from zero
    /// (matching typical DSP hardware).
    pub fn quantize(&self, v: f32) -> i32 {
        let scaled = (v / self.step()) as f64;
        let rounded = if scaled >= 0.0 {
            (scaled + 0.5).floor()
        } else {
            (scaled - 0.5).ceil()
        };
        let lo = -(1_i64 << (self.total_bits - 1));
        let hi = (1_i64 << (self.total_bits - 1)) - 1;
        (rounded as i64).clamp(lo, hi) as i32
    }

    /// Converts a code back to its real value.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Quantize-then-dequantize: projects `v` onto the representable grid.
    pub fn roundtrip(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Q{}.{} ({}b)",
            self.total_bits - 1 - self.frac_bits,
            self.frac_bits,
            self.total_bits
        )
    }
}

/// A tensor stored in quantized integer codes together with its format.
///
/// Used where true integer data is needed (entropy coding of latents);
/// for in-network numerics use [`fake_quantize`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Shape,
    codes: Vec<i32>,
    format: QFormat,
}

impl QuantTensor {
    /// Quantizes a tensor into integer codes.
    pub fn quantize(t: &Tensor, format: QFormat) -> Self {
        QuantTensor {
            shape: t.shape(),
            codes: t.as_slice().iter().map(|&v| format.quantize(v)).collect(),
            format,
        }
    }

    /// The stored format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The tensor shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The raw integer codes.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Reconstructs the real-valued tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self
            .codes
            .iter()
            .map(|&c| self.format.dequantize(c))
            .collect();
        Tensor::from_vec(self.shape, data).expect("codes length matches shape by construction")
    }
}

/// Projects every element of `t` onto the grid of `format`
/// (quantize-then-dequantize), returning a new `f32` tensor.
pub fn fake_quantize(t: &Tensor, format: QFormat) -> Tensor {
    t.map(|v| format.roundtrip(v))
}

/// Projects a tensor onto the best `total_bits`-wide format for its own
/// dynamic range, returning the tensor and the chosen format.
///
/// # Errors
///
/// Returns [`QuantError::InvalidFormat`] if `total_bits` is invalid.
pub fn fake_quantize_dynamic(t: &Tensor, total_bits: u32) -> Result<(Tensor, QFormat), QuantError> {
    let fmt = QFormat::for_range(total_bits, t.max_abs())?;
    Ok((fake_quantize(t, fmt), fmt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_validation() {
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(32, 8).is_err());
        assert!(QFormat::new(8, 8).is_err());
        assert!(QFormat::new(16, 14).is_ok());
    }

    #[test]
    fn representable_values_roundtrip_exactly() {
        let fmt = QFormat::new(12, 8).unwrap();
        for code in [-2048_i32, -1000, -1, 0, 1, 577, 2047] {
            let v = fmt.dequantize(code);
            assert_eq!(fmt.quantize(v), code);
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let fmt = QFormat::new(12, 8).unwrap();
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.0137;
            if v > fmt.max_value() || v < fmt.min_value() {
                continue;
            }
            let err = (fmt.roundtrip(v) - v).abs();
            assert!(err <= fmt.step() / 2.0 + 1e-7, "v={v} err={err}");
        }
    }

    #[test]
    fn saturation_at_bounds() {
        let fmt = QFormat::new(8, 4).unwrap(); // range [-8, 7.9375]
        assert_eq!(fmt.quantize(100.0), 127);
        assert_eq!(fmt.quantize(-100.0), -128);
        assert!((fmt.dequantize(127) - 7.9375).abs() < 1e-6);
        assert!((fmt.min_value() + 8.0).abs() < 1e-6);
    }

    #[test]
    fn rounding_is_half_away_from_zero() {
        let fmt = QFormat::new(8, 0).unwrap();
        assert_eq!(fmt.quantize(0.5), 1);
        assert_eq!(fmt.quantize(-0.5), -1);
        assert_eq!(fmt.quantize(0.49), 0);
        assert_eq!(fmt.quantize(-0.49), 0);
    }

    #[test]
    fn for_range_covers_max_abs() {
        for max_abs in [0.3_f32, 1.0, 1.7, 5.0, 100.0] {
            let fmt = QFormat::for_range(12, max_abs).unwrap();
            assert!(
                fmt.max_value() >= max_abs * 0.999 || fmt.frac_bits() == 0,
                "{fmt} does not cover {max_abs}"
            );
        }
        // Tiny ranges use maximum fractional precision.
        let fmt = QFormat::for_range(12, 1e-9).unwrap();
        assert_eq!(fmt.frac_bits(), 11);
    }

    #[test]
    fn paper_formats() {
        assert_eq!(QFormat::weights16().total_bits(), 16);
        assert_eq!(QFormat::activations12().total_bits(), 12);
        assert_eq!(QFormat::weights16().to_string(), "Q1.14 (16b)");
    }

    #[test]
    fn quant_tensor_roundtrip() {
        let t = Tensor::from_fn(Shape::new(1, 2, 3, 3), |_, c, h, w| {
            (c as f32 - 0.5) * 0.3 + (h as f32) * 0.01 - (w as f32) * 0.07
        });
        let q = QuantTensor::quantize(&t, QFormat::activations12());
        let back = q.dequantize();
        assert_eq!(back.shape(), t.shape());
        let err = back.sub(&t).unwrap().max_abs();
        assert!(err <= QFormat::activations12().step() / 2.0 + 1e-7);
        assert_eq!(q.codes().len(), 18);
    }

    #[test]
    fn fake_quantize_is_idempotent() {
        let t = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| {
            ((h * 4 + w) as f32).sin()
        });
        let fmt = QFormat::activations12();
        let once = fake_quantize(&t, fmt);
        let twice = fake_quantize(&once, fmt);
        assert_eq!(once, twice);
    }

    #[test]
    fn dynamic_quantization_picks_format() {
        let t = Tensor::filled(Shape::new(1, 1, 2, 2), 3.7);
        let (q, fmt) = fake_quantize_dynamic(&t, 12).unwrap();
        assert!(fmt.max_value() >= 3.7);
        assert!((q.at(0, 0, 0, 0) - 3.7).abs() <= fmt.step());
    }

    #[test]
    fn error_display() {
        let err = QFormat::new(0, 0).unwrap_err();
        assert!(err.to_string().contains("invalid fixed-point format"));
    }
}
