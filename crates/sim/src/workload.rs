//! Workload description consumed by the simulator.

/// One operator instance with concrete shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimOp {
    /// 3×3 convolution, Winograd-eligible when `stride == 1`.
    Conv3x3 {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
        /// Stride.
        stride: usize,
    },
    /// 1×1 convolution (runs on the array in plain MAC mode).
    Conv1x1 {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
    },
    /// 4×4 stride-2 transposed convolution, FTA-eligible.
    Deconv4x4 {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Output height (2× input).
        h_out: usize,
        /// Output width (2× input).
        w_out: usize,
    },
    /// Deformable 3×3 convolution (runs on the DCC).
    DfConv3x3 {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
        /// Deformable groups.
        groups: usize,
    },
    /// Windowed self-attention (plain MAC mode).
    Attention {
        /// Channels.
        c: usize,
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
        /// Window size.
        window: usize,
        /// Heads.
        heads: usize,
    },
    /// Max pooling (element traffic, negligible compute).
    Pool {
        /// Channels.
        c: usize,
        /// Output height.
        h_out: usize,
        /// Output width.
        w_out: usize,
        /// Window.
        k: usize,
    },
}

impl SimOp {
    /// Direct-algorithm multiply–accumulates of the operator.
    pub fn macs(&self) -> u64 {
        match *self {
            SimOp::Conv3x3 {
                c_in,
                c_out,
                h_out,
                w_out,
                ..
            } => (c_in * c_out * 9) as u64 * (h_out * w_out) as u64,
            SimOp::Conv1x1 {
                c_in,
                c_out,
                h_out,
                w_out,
            } => (c_in * c_out) as u64 * (h_out * w_out) as u64,
            SimOp::Deconv4x4 {
                c_in,
                c_out,
                h_out,
                w_out,
            } => (c_in * c_out * 16) as u64 * ((h_out / 2) * (w_out / 2)) as u64,
            SimOp::DfConv3x3 {
                c_in,
                c_out,
                h_out,
                w_out,
                ..
            } => (c_in * c_out * 9) as u64 * (h_out * w_out) as u64,
            SimOp::Attention {
                c,
                h,
                w,
                window,
                heads,
            } => {
                let t = (window * window) as u64;
                let windows = (h.div_ceil(window) * w.div_ceil(window)) as u64;
                let d = (c / heads.max(1)) as u64;
                windows * (2 * t * (c * c) as u64 + heads as u64 * 2 * t * t * d)
            }
            SimOp::Pool { .. } => 0,
        }
    }

    /// Input activation elements.
    pub fn input_elems(&self) -> u64 {
        match *self {
            SimOp::Conv3x3 {
                c_in,
                h_out,
                w_out,
                stride,
                ..
            } => (c_in * h_out * stride * w_out * stride) as u64,
            SimOp::Conv1x1 {
                c_in, h_out, w_out, ..
            } => (c_in * h_out * w_out) as u64,
            SimOp::Deconv4x4 {
                c_in, h_out, w_out, ..
            } => (c_in * (h_out / 2) * (w_out / 2)) as u64,
            SimOp::DfConv3x3 {
                c_in, h_out, w_out, ..
            } => {
                // Input features plus the offset field (2·G·9 channels).
                (c_in * h_out * w_out) as u64 + (36 * h_out * w_out) as u64
            }
            SimOp::Attention { c, h, w, .. } => (c * h * w) as u64,
            SimOp::Pool { c, h_out, w_out, k } => (c * h_out * k * w_out * k) as u64,
        }
    }

    /// Output activation elements.
    pub fn output_elems(&self) -> u64 {
        match *self {
            SimOp::Conv3x3 {
                c_out,
                h_out,
                w_out,
                ..
            }
            | SimOp::Conv1x1 {
                c_out,
                h_out,
                w_out,
                ..
            }
            | SimOp::Deconv4x4 {
                c_out,
                h_out,
                w_out,
                ..
            }
            | SimOp::DfConv3x3 {
                c_out,
                h_out,
                w_out,
                ..
            } => (c_out * h_out * w_out) as u64,
            SimOp::Attention { c, h, w, .. } => (c * h * w) as u64,
            SimOp::Pool {
                c, h_out, w_out, ..
            } => (c * h_out * w_out) as u64,
        }
    }

    /// Weight elements (dense).
    pub fn weight_elems(&self) -> u64 {
        match *self {
            SimOp::Conv3x3 { c_in, c_out, .. } | SimOp::DfConv3x3 { c_in, c_out, .. } => {
                (c_in * c_out * 9) as u64
            }
            SimOp::Conv1x1 { c_in, c_out, .. } => (c_in * c_out) as u64,
            SimOp::Deconv4x4 { c_in, c_out, .. } => (c_in * c_out * 16) as u64,
            SimOp::Attention { c, .. } => (2 * c * c) as u64,
            SimOp::Pool { .. } => 0,
        }
    }

    /// Whether the SFTC has a fast-transform mode for this operator.
    pub fn fast_transform(&self) -> Option<&'static str> {
        match self {
            SimOp::Conv3x3 { stride: 1, .. } => Some("winograd"),
            SimOp::Deconv4x4 { .. } => Some("fta"),
            _ => None,
        }
    }

    /// Whether adjacent layers of this kind may be fused into a
    /// heterogeneous chain. Convs preserve resolution and DeConvs
    /// terminate a chain (Fig. 7); pooling is a row-streaming reduction
    /// that fuses with its producer for free. DfConv (separate core) and
    /// attention (global window reshuffling) break chains.
    pub fn chainable(&self) -> bool {
        matches!(
            self,
            SimOp::Conv3x3 { stride: 1, .. }
                | SimOp::Conv1x1 { .. }
                | SimOp::Deconv4x4 { .. }
                | SimOp::Pool { .. }
        )
    }
}

/// One named layer of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimLayer {
    /// Layer name.
    pub name: String,
    /// Module name (Fig. 9(b) granularity).
    pub module: &'static str,
    /// The operator.
    pub op: SimOp,
}

impl SimLayer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, module: &'static str, op: SimOp) -> Self {
        SimLayer {
            name: name.into(),
            module,
            op,
        }
    }
}

/// A full per-frame workload (ordered layer list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    layers: Vec<SimLayer>,
}

impl Workload {
    /// Creates a workload from ordered layers.
    pub fn new(layers: Vec<SimLayer>) -> Self {
        Workload { layers }
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[SimLayer] {
        &self.layers
    }

    /// Total direct-equivalent MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.op.macs()).sum()
    }

    /// Module names in first-appearance order.
    pub fn modules(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for l in &self.layers {
            if !seen.contains(&l.module) {
                seen.push(l.module);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_counts_match_formulae() {
        let conv = SimOp::Conv3x3 {
            c_in: 4,
            c_out: 8,
            h_out: 10,
            w_out: 10,
            stride: 1,
        };
        assert_eq!(conv.macs(), 4 * 8 * 9 * 100);
        let deconv = SimOp::Deconv4x4 {
            c_in: 4,
            c_out: 8,
            h_out: 20,
            w_out: 20,
        };
        assert_eq!(deconv.macs(), 4 * 8 * 16 * 100);
        assert_eq!(
            SimOp::Pool {
                c: 3,
                h_out: 5,
                w_out: 5,
                k: 2
            }
            .macs(),
            0
        );
    }

    #[test]
    fn fast_transform_classification() {
        assert_eq!(
            SimOp::Conv3x3 {
                c_in: 1,
                c_out: 1,
                h_out: 1,
                w_out: 1,
                stride: 1
            }
            .fast_transform(),
            Some("winograd")
        );
        assert_eq!(
            SimOp::Conv3x3 {
                c_in: 1,
                c_out: 1,
                h_out: 1,
                w_out: 1,
                stride: 2
            }
            .fast_transform(),
            None
        );
        assert_eq!(
            SimOp::Deconv4x4 {
                c_in: 1,
                c_out: 1,
                h_out: 2,
                w_out: 2
            }
            .fast_transform(),
            Some("fta")
        );
        assert_eq!(
            SimOp::DfConv3x3 {
                c_in: 1,
                c_out: 1,
                h_out: 1,
                w_out: 1,
                groups: 2
            }
            .fast_transform(),
            None
        );
    }

    #[test]
    fn workload_aggregation() {
        let wl = Workload::new(vec![
            SimLayer::new(
                "a",
                "m1",
                SimOp::Conv3x3 {
                    c_in: 2,
                    c_out: 2,
                    h_out: 4,
                    w_out: 4,
                    stride: 1,
                },
            ),
            SimLayer::new(
                "b",
                "m2",
                SimOp::Conv1x1 {
                    c_in: 2,
                    c_out: 2,
                    h_out: 4,
                    w_out: 4,
                },
            ),
            SimLayer::new(
                "c",
                "m1",
                SimOp::Pool {
                    c: 2,
                    h_out: 2,
                    w_out: 2,
                    k: 2,
                },
            ),
        ]);
        assert_eq!(wl.total_macs(), 2 * 2 * 9 * 16 + 2 * 2 * 16);
        assert_eq!(wl.modules(), vec!["m1", "m2"]);
    }
}
