//! The simulation engine: per-layer compute cycles, memory traffic under
//! both dataflows, and aggregate performance/energy reporting.

use crate::workload::{SimLayer, SimOp, Workload};
use crate::{EnergyModel, NvcaConfig};
use std::collections::BTreeMap;

/// Dataflow policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataflow {
    /// Every layer reads its input from and writes its output to DRAM —
    /// the baseline of paper Fig. 9(b).
    LayerByLayer,
    /// Heterogeneous layer chaining (§IV-B-2): intra-chain intermediates
    /// stay in the banked input buffer.
    Chained,
}

/// Per-layer simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Module name.
    pub module: &'static str,
    /// Compute cycles on the assigned core.
    pub compute_cycles: u64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Cycles after overlapping compute with DRAM transfers.
    pub cycles: u64,
    /// Physical multiplications executed (transform-domain for fast ops).
    pub physical_muls: u64,
    /// Direct-equivalent MACs.
    pub effective_macs: u64,
}

/// Aggregate simulation outcome for one frame workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Dataflow the report was produced under.
    pub dataflow: Dataflow,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
    /// Total cycles per frame.
    pub total_cycles: u64,
    /// Frame time in milliseconds.
    pub frame_ms: f64,
    /// Frames per second.
    pub fps: f64,
    /// Total DRAM traffic in bytes per frame.
    pub dram_bytes: u64,
    /// Per-module DRAM traffic in bytes.
    pub module_dram_bytes: BTreeMap<&'static str, u64>,
    /// Physical throughput in GOPS (2 × physical muls / time).
    pub physical_gops: f64,
    /// Effective (direct-equivalent) throughput in GOPS.
    pub effective_gops: f64,
    /// Chip power in watts (compute + on-chip SRAM + static) — the
    /// quantity ASIC papers report from synthesis, used for Table II.
    pub power_w: f64,
    /// System power including DRAM access energy.
    pub system_power_w: f64,
    /// Energy efficiency in GOPS/W (physical ops over chip power).
    pub gops_per_watt: f64,
    /// Compute-array utilization in `[0, 1]` (physical muls over peak).
    pub utilization: f64,
}

/// The NVCA simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: NvcaConfig,
    energy: EnergyModel,
}

impl Simulator {
    /// Creates a simulator with the default 28 nm energy model.
    pub fn new(cfg: NvcaConfig) -> Self {
        Simulator {
            cfg,
            energy: EnergyModel::default(),
        }
    }

    /// Creates a simulator with an explicit energy model.
    pub fn with_energy(cfg: NvcaConfig, energy: EnergyModel) -> Self {
        Simulator { cfg, energy }
    }

    /// The configuration.
    pub fn config(&self) -> &NvcaConfig {
        &self.cfg
    }

    fn act_bytes(&self, elems: u64) -> u64 {
        (elems * self.cfg.act_bits as u64).div_ceil(8)
    }

    fn weight_bytes(&self, op: &SimOp) -> u64 {
        let dense = op.weight_elems() * self.cfg.weight_bits as u64;
        match op.fast_transform() {
            // Sparse transform-domain weights: (1−ρ) of µ² positions plus
            // one index byte per kept weight (Weight + Index Buffers).
            Some(_) => {
                let mu2 = match op {
                    SimOp::Conv3x3 { .. } => 16.0 / 9.0, // µ²/k² expansion
                    SimOp::Deconv4x4 { .. } => 64.0 / 16.0,
                    _ => 1.0,
                };
                let kept = (dense as f64 * mu2 * (1.0 - self.cfg.rho)) as u64;
                kept.div_ceil(8) + kept / self.cfg.weight_bits as u64 // values + indices
            }
            None => dense.div_ceil(8),
        }
    }

    /// Compute cycles and physical multiplications for one operator.
    fn compute(&self, op: &SimOp) -> (u64, u64) {
        let pif = self.cfg.pif as u64;
        let pof = self.cfg.pof as u64;
        let keep = 1.0 - self.cfg.rho;
        match *op {
            SimOp::Conv3x3 {
                c_in,
                c_out,
                h_out,
                w_out,
                stride,
            } => {
                if stride == 1 {
                    // Winograd F(2x2,3x3): 2×2 output tiles, 4 tiles per
                    // SCU pass, 16·(1−ρ) muls per kernel-tile.
                    let tiles = (h_out.div_ceil(2) * w_out.div_ceil(2)) as u64;
                    let passes = (c_in as u64).div_ceil(pif) * (c_out as u64).div_ceil(pof);
                    let cycles = passes * tiles.div_ceil(4) + self.cfg.layer_overhead_cycles;
                    let muls = (tiles as f64 * (c_in * c_out) as f64 * 16.0 * keep) as u64;
                    (cycles, muls)
                } else {
                    // Strided convs run in plain MAC mode.
                    let macs = op.macs();
                    let per_cycle = self.cfg.array_multipliers();
                    (
                        macs.div_ceil(per_cycle) + self.cfg.layer_overhead_cycles,
                        macs,
                    )
                }
            }
            SimOp::Deconv4x4 {
                c_in,
                c_out,
                h_out,
                w_out,
            } => {
                // FTA T3(6x6,4x4): one 6×6 tile per SCU pass, 64·(1−ρ)
                // muls per kernel-tile.
                let tiles = (h_out.div_ceil(6) * w_out.div_ceil(6)) as u64;
                let passes = (c_in as u64).div_ceil(pif) * (c_out as u64).div_ceil(pof);
                let cycles = passes * tiles + self.cfg.layer_overhead_cycles;
                let muls = (tiles as f64 * (c_in * c_out) as f64 * 64.0 * keep) as u64;
                (cycles, muls)
            }
            SimOp::Conv1x1 { .. } | SimOp::Attention { .. } => {
                let macs = op.macs();
                let per_cycle = self.cfg.array_multipliers();
                (
                    macs.div_ceil(per_cycle) + self.cfg.layer_overhead_cycles,
                    macs,
                )
            }
            SimOp::DfConv3x3 { .. } => {
                let macs = op.macs();
                (
                    macs.div_ceil(self.cfg.dcc_macs_per_cycle) + self.cfg.layer_overhead_cycles,
                    macs,
                )
            }
            SimOp::Pool { c, h_out, w_out, k } => {
                let elems = (c * h_out * w_out * k * k) as u64;
                (
                    elems.div_ceil(self.cfg.array_multipliers()) + self.cfg.layer_overhead_cycles,
                    0,
                )
            }
        }
    }

    /// Splits the workload into fusable chains: maximal runs of chainable
    /// layers within one module, each ending at (and including) the first
    /// DeConv — the Conv…Conv-DeConv chains of paper Fig. 7.
    fn chains<'a>(&self, wl: &'a Workload) -> Vec<&'a [SimLayer]> {
        let layers = wl.layers();
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut i = 0usize;
        while i < layers.len() {
            let l = &layers[i];
            let same_module = l.module == layers[start].module;
            if !l.op.chainable() || !same_module {
                if start < i {
                    out.push(&layers[start..i]);
                }
                out.push(&layers[i..i + 1]);
                start = i + 1;
            } else if matches!(l.op, SimOp::Deconv4x4 { .. }) {
                out.push(&layers[start..=i]);
                start = i + 1;
            }
            i += 1;
        }
        if start < layers.len() {
            out.push(&layers[start..]);
        }
        out
    }

    /// Whether a chain's rolling row working set fits the banked input
    /// buffer, and the stripe count needed when it does not.
    fn stripes_needed(&self, chain: &[SimLayer]) -> u64 {
        // Widest intermediate row in the chain (bytes): c · w · act_bits.
        let mut worst = 0u64;
        for l in chain {
            let (c, w) = match l.op {
                SimOp::Conv3x3 {
                    c_out,
                    w_out,
                    stride,
                    ..
                } => (c_out as u64, (w_out * stride) as u64),
                SimOp::Conv1x1 { c_out, w_out, .. } => (c_out as u64, w_out as u64),
                SimOp::Deconv4x4 { c_in, w_out, .. } => (c_in as u64, (w_out / 2) as u64),
                _ => (0, 0),
            };
            worst = worst.max(self.act_bytes(c * w));
        }
        worst.div_ceil(self.cfg.bank_bytes as u64).max(1)
    }

    /// Runs the workload under a dataflow.
    pub fn run(&self, wl: &Workload, dataflow: Dataflow) -> SimReport {
        let mut layer_reports = Vec::with_capacity(wl.layers().len());
        let chains = self.chains(wl);

        for chain in &chains {
            let stripes = self.stripes_needed(chain);
            // A chain ending in a fast deconvolution needs the full Fig. 7
            // row footprint (10 banked rows); conv-only chains need the
            // Winograd footprint (4 rows).
            let required_banks = if chain
                .iter()
                .any(|l| matches!(l.op, SimOp::Deconv4x4 { .. }))
            {
                10
            } else {
                4
            };
            let chained = dataflow == Dataflow::Chained
                && chain.len() > 1
                && self.cfg.input_banks >= required_banks;
            for (idx, layer) in chain.iter().enumerate() {
                let (compute_cycles, muls) = self.compute(&layer.op);
                let in_bytes = self.act_bytes(layer.op.input_elems());
                let out_bytes = self.act_bytes(layer.op.output_elems());
                let w_bytes = self.weight_bytes(&layer.op);
                let dram = if chained {
                    // Chain interior stays on chip; striping re-reads a
                    // 2-row halo per stripe boundary per fused layer.
                    let first = idx == 0;
                    let last = idx == chain.len() - 1;
                    let halo = if stripes > 1 {
                        let (_, _, w) = layer_whw(&layer.op);
                        2 * (stripes - 1) * self.act_bytes(w)
                    } else {
                        0
                    };
                    (if first { in_bytes } else { 0 })
                        + (if last { out_bytes } else { 0 })
                        + w_bytes
                        + halo
                } else {
                    in_bytes + out_bytes + w_bytes
                };
                let mem_cycles = (dram as f64 / self.cfg.dram_bytes_per_cycle).ceil() as u64;
                let cycles = compute_cycles.max(mem_cycles);
                layer_reports.push(LayerReport {
                    name: layer.name.clone(),
                    module: layer.module,
                    compute_cycles,
                    dram_bytes: dram,
                    cycles,
                    physical_muls: muls,
                    effective_macs: layer.op.macs(),
                });
            }
        }

        let total_cycles: u64 = layer_reports.iter().map(|l| l.cycles).sum();
        let dram_bytes: u64 = layer_reports.iter().map(|l| l.dram_bytes).sum();
        let physical: u64 = layer_reports.iter().map(|l| l.physical_muls).sum();
        let effective: u64 = layer_reports.iter().map(|l| l.effective_macs).sum();
        let mut module_dram_bytes = BTreeMap::new();
        for l in &layer_reports {
            *module_dram_bytes.entry(l.module).or_insert(0) += l.dram_bytes;
        }

        let secs = total_cycles as f64 / (self.cfg.freq_mhz * 1e6);
        let frame_ms = secs * 1e3;
        let fps = if secs > 0.0 {
            1.0 / secs
        } else {
            f64::INFINITY
        };
        let physical_gops = 2.0 * physical as f64 / secs.max(1e-12) / 1e9;
        let effective_gops = 2.0 * effective as f64 / secs.max(1e-12) / 1e9;

        // Energy: compute + SRAM (activations staged twice, weights once,
        // plus transform-domain overhead folded into the MAC energy) +
        // DRAM + static.
        let sram_bits: f64 = layer_reports
            .iter()
            .map(|l| {
                let op = wl.layers().iter().find(|x| x.name == l.name).map(|x| &x.op);
                match op {
                    Some(op) => {
                        ((self.act_bytes(op.input_elems()) + self.act_bytes(op.output_elems())) * 2
                            + self.weight_bytes(op)) as f64
                            * 8.0
                    }
                    None => 0.0,
                }
            })
            .sum();
        let chip_energy_j = physical as f64 * self.energy.pj_per_mac * 1e-12
            + sram_bits * self.energy.pj_per_sram_bit * 1e-12
            + self.energy.static_watts * secs;
        let dram_energy_j = dram_bytes as f64 * 8.0 * self.energy.pj_per_dram_bit * 1e-12;
        let power_w = chip_energy_j / secs.max(1e-12);
        let system_power_w = (chip_energy_j + dram_energy_j) / secs.max(1e-12);
        let gops_per_watt = physical_gops / power_w.max(1e-12);
        let peak_muls_per_cycle = self.cfg.array_multipliers() as f64;
        let utilization = (physical as f64 / (total_cycles as f64 * peak_muls_per_cycle)).min(1.0);

        SimReport {
            dataflow,
            layers: layer_reports,
            total_cycles,
            frame_ms,
            fps,
            dram_bytes,
            module_dram_bytes,
            physical_gops,
            effective_gops,
            power_w,
            system_power_w,
            gops_per_watt,
            utilization,
        }
    }
}

fn layer_whw(op: &SimOp) -> (u64, u64, u64) {
    match *op {
        SimOp::Conv3x3 {
            c_out,
            h_out,
            w_out,
            ..
        }
        | SimOp::Conv1x1 {
            c_out,
            h_out,
            w_out,
            ..
        }
        | SimOp::Deconv4x4 {
            c_out,
            h_out,
            w_out,
            ..
        }
        | SimOp::DfConv3x3 {
            c_out,
            h_out,
            w_out,
            ..
        } => (c_out as u64, h_out as u64, (c_out * w_out) as u64),
        SimOp::Attention { c, h, w, .. } => (c as u64, h as u64, (c * w) as u64),
        SimOp::Pool {
            c, h_out, w_out, ..
        } => (c as u64, h_out as u64, (c * w_out) as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(module: &'static str, name: &str, c: usize, hw: usize) -> SimLayer {
        SimLayer::new(
            name,
            module,
            SimOp::Conv3x3 {
                c_in: c,
                c_out: c,
                h_out: hw,
                w_out: hw,
                stride: 1,
            },
        )
    }

    fn deconv(module: &'static str, name: &str, c: usize, hw_out: usize) -> SimLayer {
        SimLayer::new(
            name,
            module,
            SimOp::Deconv4x4 {
                c_in: c,
                c_out: c,
                h_out: hw_out,
                w_out: hw_out,
            },
        )
    }

    #[test]
    fn chained_dataflow_reduces_traffic() {
        let wl = Workload::new(vec![
            conv("m", "c1", 36, 64),
            conv("m", "c2", 36, 64),
            deconv("m", "d1", 36, 128),
        ]);
        let sim = Simulator::new(NvcaConfig::paper());
        let lbl = sim.run(&wl, Dataflow::LayerByLayer);
        let ch = sim.run(&wl, Dataflow::Chained);
        assert!(
            ch.dram_bytes < lbl.dram_bytes,
            "chaining must cut traffic: {} vs {}",
            ch.dram_bytes,
            lbl.dram_bytes
        );
        let reduction = 1.0 - ch.dram_bytes as f64 / lbl.dram_bytes as f64;
        assert!(reduction > 0.2, "reduction only {:.1}%", reduction * 100.0);
        // Compute work is identical; only memory changes.
        let lbl_compute: u64 = lbl.layers.iter().map(|l| l.compute_cycles).sum();
        let ch_compute: u64 = ch.layers.iter().map(|l| l.compute_cycles).sum();
        assert_eq!(lbl_compute, ch_compute);
        assert!(ch.total_cycles <= lbl.total_cycles);
    }

    #[test]
    fn winograd_speedup_over_plain_mac_mode() {
        // The same 3×3 conv with stride 1 (Winograd) vs stride-emulated
        // plain mode: transform execution needs ~2.25× fewer cycles at
        // dense, ~4.5× at ρ=0.5... verified via physical muls.
        let sim = Simulator::new(NvcaConfig::paper());
        let fast = SimOp::Conv3x3 {
            c_in: 36,
            c_out: 36,
            h_out: 96,
            w_out: 96,
            stride: 1,
        };
        let (cycles, muls) = sim.compute(&fast);
        let direct_macs = fast.macs();
        // Physical muls at ρ=0.5 are 16/9·0.5 ≈ 0.89× the direct MACs...
        assert!(muls < direct_macs, "{muls} vs {direct_macs}");
        // Cycle count beats plain MAC mode (direct_macs / 4608).
        let plain_cycles = direct_macs.div_ceil(sim.config().array_multipliers());
        assert!(
            cycles < plain_cycles,
            "winograd {cycles} should beat plain {plain_cycles}"
        );
    }

    #[test]
    fn dfconv_runs_on_dcc() {
        let sim = Simulator::new(NvcaConfig::paper());
        let df = SimOp::DfConv3x3 {
            c_in: 36,
            c_out: 36,
            h_out: 64,
            w_out: 64,
            groups: 2,
        };
        let (cycles, muls) = sim.compute(&df);
        assert_eq!(muls, df.macs());
        assert!(cycles >= df.macs() / sim.config().dcc_macs_per_cycle);
    }

    #[test]
    fn memory_bound_layers_hide_compute() {
        // A pool layer moves data but computes almost nothing: its cycle
        // count must be dominated by DRAM under layer-by-layer.
        let wl = Workload::new(vec![SimLayer::new(
            "pool",
            "m",
            SimOp::Pool {
                c: 36,
                h_out: 256,
                w_out: 256,
                k: 2,
            },
        )]);
        let sim = Simulator::new(NvcaConfig::paper());
        let rep = sim.run(&wl, Dataflow::LayerByLayer);
        let l = &rep.layers[0];
        assert!(
            l.cycles > l.compute_cycles,
            "{} vs {}",
            l.cycles,
            l.compute_cycles
        );
    }

    #[test]
    fn utilization_and_rates_are_sane() {
        let wl = Workload::new(vec![
            conv("m", "c1", 36, 128),
            conv("m", "c2", 36, 128),
            deconv("m", "d", 36, 256),
        ]);
        let sim = Simulator::new(NvcaConfig::paper());
        let rep = sim.run(&wl, Dataflow::Chained);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        assert!(rep.physical_gops > 0.0 && rep.physical_gops <= sim.config().peak_gops() * 1.01);
        assert!(
            rep.power_w > 0.0 && rep.power_w < 10.0,
            "power {}",
            rep.power_w
        );
        assert!(
            rep.gops_per_watt > 100.0,
            "efficiency {}",
            rep.gops_per_watt
        );
        assert!(rep.fps.is_finite());
    }

    #[test]
    fn per_module_traffic_accounts_everything() {
        let wl = Workload::new(vec![conv("m1", "a", 12, 32), conv("m2", "b", 12, 32)]);
        let sim = Simulator::new(NvcaConfig::paper());
        let rep = sim.run(&wl, Dataflow::LayerByLayer);
        let sum: u64 = rep.module_dram_bytes.values().sum();
        assert_eq!(sum, rep.dram_bytes);
        assert_eq!(rep.module_dram_bytes.len(), 2);
    }

    #[test]
    fn chains_split_on_module_and_nonchainable() {
        let wl = Workload::new(vec![
            conv("m1", "a", 4, 8),
            conv("m1", "b", 4, 8),
            SimLayer::new(
                "df",
                "m1",
                SimOp::DfConv3x3 {
                    c_in: 4,
                    c_out: 4,
                    h_out: 8,
                    w_out: 8,
                    groups: 2,
                },
            ),
            conv("m2", "c", 4, 8),
            deconv("m2", "d", 4, 16),
            conv("m2", "e", 4, 16),
        ]);
        let sim = Simulator::new(NvcaConfig::paper());
        let chains = sim.chains(&wl);
        let lens: Vec<usize> = chains.iter().map(|c| c.len()).collect();
        // [a,b], [df], [c,d], [e]
        assert_eq!(lens, vec![2, 1, 2, 1]);
    }
}
