//! Reference platforms for the paper's Table II.
//!
//! The GPU, CPU and prior-accelerator rows of Table II are **published
//! reference constants** (the paper's own measurements/citations), not
//! simulated here; each row is tagged with its [`Provenance`] so the
//! Table II harness can print measured and cited values side by side
//! without conflating them.

/// Where a row's numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Reproduced by this repository (simulator or local measurement).
    Reproduced,
    /// Carried verbatim from the paper / cited work.
    Cited,
}

/// One Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Platform name.
    pub name: &'static str,
    /// Task / benchmark the row was evaluated on.
    pub benchmark: &'static str,
    /// Process node in nm (0 = not applicable).
    pub technology_nm: u32,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Precision description (activations–weights).
    pub precision: &'static str,
    /// Gate count in millions (None = unreported).
    pub gate_count_m: Option<f64>,
    /// On-chip memory in KB (None = unreported).
    pub sram_kb: Option<f64>,
    /// Power in watts.
    pub power_w: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Provenance tag.
    pub provenance: Provenance,
}

impl PlatformRow {
    /// Energy efficiency in GOPS/W.
    pub fn gops_per_watt(&self) -> f64 {
        self.throughput_gops / self.power_w.max(1e-9)
    }
}

/// Intel i9-9900X row (paper Table II, CPU column).
pub fn cpu_i9_9900x() -> PlatformRow {
    PlatformRow {
        name: "CPU (i9-9900X)",
        benchmark: "CTVC-Net",
        technology_nm: 14,
        freq_mhz: 3500.0,
        precision: "FP 32-32",
        gate_count_m: None,
        sram_kb: None,
        power_w: 121.2,
        throughput_gops: 317.0,
        provenance: Provenance::Cited,
    }
}

/// NVIDIA RTX 3090 row (paper Table II, GPU column).
pub fn gpu_rtx3090() -> PlatformRow {
    PlatformRow {
        name: "GPU (RTX 3090)",
        benchmark: "CTVC-Net",
        technology_nm: 8,
        freq_mhz: 1700.0,
        precision: "FP 32-32",
        gate_count_m: None,
        sram_kb: None,
        power_w: 257.1,
        throughput_gops: 1493.0,
        provenance: Provenance::Cited,
    }
}

/// Shao et al. TCAS-I 2022 [25] (interlayer feature-map-compression CNN
/// accelerator).
pub fn shao_tcas2022() -> PlatformRow {
    PlatformRow {
        name: "[25] TCAS-I'22",
        benchmark: "VGG16",
        technology_nm: 28,
        freq_mhz: 700.0,
        precision: "FXP 16-16",
        gate_count_m: Some(1.12),
        sram_kb: Some(480.0),
        power_w: 0.19,
        throughput_gops: 403.0,
        provenance: Provenance::Cited,
    }
}

/// Alchemist [26] (compressed-video-analysis accelerator, scaled from
/// 65 nm as in the paper).
pub fn alchemist() -> PlatformRow {
    PlatformRow {
        name: "Alchemist [26]",
        benchmark: "VGG16",
        technology_nm: 65,
        freq_mhz: 800.0,
        precision: "FXP 16-16",
        gate_count_m: Some(3.03),
        sram_kb: Some(512.0),
        power_w: 0.33,
        throughput_gops: 833.0,
        provenance: Provenance::Cited,
    }
}

/// The paper's own NVCA row, for cross-checking the simulator against the
/// published design point.
pub fn nvca_published() -> PlatformRow {
    PlatformRow {
        name: "NVCA (paper)",
        benchmark: "CTVC-Net",
        technology_nm: 28,
        freq_mhz: 400.0,
        precision: "FXP 12-16",
        gate_count_m: Some(5.01),
        sram_kb: Some(373.0),
        power_w: 0.76,
        throughput_gops: 3525.0,
        provenance: Provenance::Cited,
    }
}

/// All cited comparator rows in the paper's column order.
pub fn cited_rows() -> Vec<PlatformRow> {
    vec![
        cpu_i9_9900x(),
        gpu_rtx3090(),
        shao_tcas2022(),
        alchemist(),
        nvca_published(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_matches_paper_arithmetic() {
        // Table II reports 2.6, 5.8, 2121.1, 2524.2, 4638.2 GOPS/W.
        assert!((cpu_i9_9900x().gops_per_watt() - 2.6).abs() < 0.1);
        assert!((gpu_rtx3090().gops_per_watt() - 5.8).abs() < 0.1);
        assert!((shao_tcas2022().gops_per_watt() - 2121.1).abs() < 2.0);
        assert!((alchemist().gops_per_watt() - 2524.2).abs() < 2.0);
        assert!((nvca_published().gops_per_watt() - 4638.2).abs() < 2.0);
    }

    #[test]
    fn paper_speedup_claims_hold_on_the_rows() {
        // "2.4× higher throughput ... than the GPU", "11.1× ... than CPU",
        // "up to 8.7× higher throughput and 2.2× better energy efficiency"
        // vs [25]/[26].
        let nvca = nvca_published();
        assert!(nvca.throughput_gops / gpu_rtx3090().throughput_gops > 2.3);
        assert!(nvca.throughput_gops / cpu_i9_9900x().throughput_gops > 11.0);
        assert!(nvca.throughput_gops / shao_tcas2022().throughput_gops > 8.5);
        assert!(nvca.gops_per_watt() / shao_tcas2022().gops_per_watt() > 2.1);
    }

    #[test]
    fn provenance_is_explicit() {
        for row in cited_rows() {
            assert_eq!(row.provenance, Provenance::Cited, "{}", row.name);
        }
    }
}
