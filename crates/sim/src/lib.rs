//! Cycle-level simulator of the **NVCA** accelerator (paper §IV).
//!
//! The simulator models the paper's architecture at the granularity its
//! own evaluation uses (a DNN-Chip-Predictor-class analytical/cycle
//! model — reference \[24\] of the paper, verified there against RTL):
//!
//! * **SFTC** — the Sparse Fast Transform Core: a `P_if × P_of = 12 × 12`
//!   united SCU array whose `64ρ` multipliers per SCU process one sparse
//!   FTA deconvolution tile or four sparse Winograd convolution tiles per
//!   pass, fed by PreU/PostU transform pipelines.
//! * **DCC** — the Deformable Convolution Core executing `DfConv`s.
//! * **Buffers & DRAM** — banked on-chip SRAM (10-bank Input Buffer per
//!   Fig. 7) and a bandwidth-limited external memory; per-layer time is
//!   `max(compute, traffic/bandwidth)` (double buffering).
//! * **Dataflows** — `LayerByLayer` (baseline of Fig. 9(b)) spills every
//!   intermediate to DRAM; `Chained` (the heterogeneous layer chaining of
//!   §IV-B-2) keeps intra-chain intermediates in the Input Buffer,
//!   striping with halo re-reads when a row group exceeds bank capacity.
//! * **Energy/area** — first-principles 28 nm constants (pJ/MAC, pJ/bit
//!   SRAM, pJ/bit DRAM, gates/multiplier) calibrated so the architecture's
//!   structural parameters land in the paper's reported class
//!   (≈3.5 TOPS, ≈0.8 W, ≈5 M gates); see `DESIGN.md` for the
//!   substitution of the Synopsys DC flow.
//!
//! [`comparators`] carries the published reference rows of the paper's
//! Table II (GPU, CPU, [25], [26]) as clearly-labelled cited constants.
//!
//! # Example
//!
//! ```
//! use nvc_sim::{Dataflow, NvcaConfig, SimLayer, SimOp, Simulator, Workload};
//!
//! let layer = SimLayer::new("demo", "feature_extraction",
//!     SimOp::Conv3x3 { c_in: 36, c_out: 36, h_out: 64, w_out: 64, stride: 1 });
//! let wl = Workload::new(vec![layer]);
//! let sim = Simulator::new(NvcaConfig::paper());
//! let report = sim.run(&wl, Dataflow::Chained);
//! assert!(report.total_cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparators;
mod engine;
mod workload;

pub use engine::{Dataflow, LayerReport, SimReport, Simulator};
pub use workload::{SimLayer, SimOp, Workload};

/// Architecture configuration of the simulated NVCA instance.
///
/// Defaults ([`NvcaConfig::paper`]) reproduce the paper's design point:
/// 12×12 SCUs, ρ = 50 %, 400 MHz, FXP12 activations / FXP16 weights,
/// 373 KB of on-chip SRAM and a 10-bank input buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct NvcaConfig {
    /// Input-channel parallelism of the SCU array.
    pub pif: usize,
    /// Output-channel parallelism of the SCU array.
    pub pof: usize,
    /// Transform-domain weight sparsity ρ in `[0, 1)`.
    pub rho: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Activation width in bits.
    pub act_bits: u32,
    /// Weight width in bits.
    pub weight_bits: u32,
    /// Input-buffer bank count (Fig. 7 uses 10).
    pub input_banks: usize,
    /// Input-buffer bank capacity in bytes.
    pub bank_bytes: usize,
    /// Other on-chip SRAM (weight + index + output buffers) in bytes.
    pub side_buffer_bytes: usize,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// MACs per cycle sustained by the Deformable Convolution Core.
    pub dcc_macs_per_cycle: u64,
    /// Pipeline fill overhead charged once per layer, in cycles.
    pub layer_overhead_cycles: u64,
}

impl NvcaConfig {
    /// The paper's design point.
    pub fn paper() -> Self {
        NvcaConfig {
            pif: 12,
            pof: 12,
            rho: 0.5,
            freq_mhz: 400.0,
            act_bits: 12,
            weight_bits: 16,
            input_banks: 10,
            bank_bytes: 30 * 1024,
            side_buffer_bytes: 73 * 1024,
            dram_bytes_per_cycle: 32.0, // ≈12.8 GB/s at 400 MHz
            dcc_macs_per_cycle: 2304,   // 12×12×16 MAC lanes
            layer_overhead_cycles: 64,
        }
    }

    /// Physical multipliers per SCU: `64·ρ` rounded, at least 1 (the paper
    /// instantiates 32 at ρ = 50 %).
    pub fn scu_multipliers(&self) -> u64 {
        ((64.0 * (1.0 - self.rho)).round() as u64).max(1)
    }

    /// Physical multipliers across the whole SCU array.
    pub fn array_multipliers(&self) -> u64 {
        (self.pif * self.pof) as u64 * self.scu_multipliers()
    }

    /// Peak physical throughput in GOPS (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        self.array_multipliers() as f64 * 2.0 * self.freq_mhz / 1e3
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.input_banks * self.bank_bytes + self.side_buffer_bytes
    }

    /// Rough gate-count estimate in millions of gates: multipliers,
    /// transform adder networks, DCC MAC lanes and control.
    pub fn gate_count_m(&self) -> f64 {
        let mult_gates = self.array_multipliers() as f64 * 700.0; // 12×16 multiplier
        let transform_gates = (self.pif + self.pof) as f64 * 32.0 * 1200.0; // PreU/PostU adders
        let dcc_gates = self.dcc_macs_per_cycle as f64 * 500.0; // MAC + bilinear interp
        let control = 0.35e6;
        (mult_gates + transform_gates + dcc_gates + control) / 1e6
    }
}

/// 28 nm energy constants used by the simulator (documented substitution
/// for the Synopsys DC + TSMC 28 nm HPC+ flow).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per physical MAC in pJ (FXP12×16 at 28 nm).
    pub pj_per_mac: f64,
    /// Energy per SRAM bit access in pJ.
    pub pj_per_sram_bit: f64,
    /// Energy per DRAM bit access in pJ.
    pub pj_per_dram_bit: f64,
    /// Static power in watts.
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_mac: 0.24,
            pj_per_sram_bit: 0.025,
            pj_per_dram_bit: 15.0,
            static_watts: 0.06,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_headline_arithmetic() {
        let cfg = NvcaConfig::paper();
        // 12·12 SCUs × 32 multipliers = 4608; ×2 ops × 400 MHz ≈ 3.7 TOPS
        // peak — the envelope of the paper's 3525 GOPS effective.
        assert_eq!(cfg.scu_multipliers(), 32);
        assert_eq!(cfg.array_multipliers(), 4608);
        let peak = cfg.peak_gops();
        assert!((3600.0..3800.0).contains(&peak), "peak {peak}");
        // On-chip SRAM lands at the paper's 373 KB.
        assert_eq!(cfg.total_sram_bytes(), 373 * 1024);
        // Gate count in the paper's 5M class.
        let gates = cfg.gate_count_m();
        assert!((3.5..7.0).contains(&gates), "gates {gates}M");
    }

    #[test]
    fn sparsity_scales_multipliers() {
        let mut cfg = NvcaConfig::paper();
        cfg.rho = 0.0;
        assert_eq!(cfg.scu_multipliers(), 64);
        cfg.rho = 0.75;
        assert_eq!(cfg.scu_multipliers(), 16);
        cfg.rho = 0.999;
        assert!(cfg.scu_multipliers() >= 1);
    }
}
