//! Off-chip traffic comparison (paper Fig. 9(b)).

use crate::Nvca;
use nvc_sim::Dataflow;

/// Per-module off-chip traffic under both dataflows.
#[derive(Debug, Clone, PartialEq)]
pub struct OffchipRow {
    /// Decoder module name.
    pub module: &'static str,
    /// Bytes per frame with layer-by-layer processing (baseline).
    pub baseline_bytes: u64,
    /// Bytes per frame with heterogeneous layer chaining (NVCA).
    pub chained_bytes: u64,
}

impl OffchipRow {
    /// Traffic reduction in percent.
    pub fn reduction_pct(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            (1.0 - self.chained_bytes as f64 / self.baseline_bytes as f64) * 100.0
        }
    }
}

/// Computes the per-module off-chip comparison of Fig. 9(b) at `h × w`.
pub fn offchip_comparison(nvca: &Nvca, h: usize, w: usize) -> Vec<OffchipRow> {
    let baseline = nvca.simulate_decode(h, w, Dataflow::LayerByLayer);
    let chained = nvca.simulate_decode(h, w, Dataflow::Chained);
    let mut rows = Vec::new();
    for module in nvc_model::graph::DECODER_MODULES {
        let b = baseline.module_dram_bytes.get(module).copied().unwrap_or(0);
        let c = chained.module_dram_bytes.get(module).copied().unwrap_or(0);
        if b > 0 || c > 0 {
            rows.push(OffchipRow {
                module,
                baseline_bytes: b,
                chained_bytes: c,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_model::CtvcConfig;

    #[test]
    fn every_module_appears_and_chaining_never_hurts() {
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
        let rows = offchip_comparison(&nvca, 1088, 1920);
        assert_eq!(rows.len(), 5, "all five Fig. 9(b) modules");
        for row in &rows {
            assert!(
                row.chained_bytes <= row.baseline_bytes,
                "{}: chaining increased traffic",
                row.module
            );
            assert!(row.reduction_pct() >= 0.0);
        }
        // At least some modules benefit substantially, as in Fig. 9(b).
        let best = rows.iter().map(|r| r.reduction_pct()).fold(0.0, f64::max);
        assert!(best > 20.0, "best module reduction only {best:.1}%");
    }

    #[test]
    fn reduction_pct_handles_zero_baseline() {
        let row = OffchipRow {
            module: "x",
            baseline_bytes: 0,
            chained_bytes: 0,
        };
        assert_eq!(row.reduction_pct(), 0.0);
    }
}
