//! **NVCA** — the algorithm/hardware co-design API (the paper's primary
//! contribution, assembled).
//!
//! This crate glues the two halves of the reproduction together:
//!
//! * the **CTVC-Net codec** from [`nvc_model`] (sparse CNN-Transformer
//!   hybrid video codec producing real bitstreams), and
//! * the **NVCA cycle-level simulator** from [`nvc_sim`] (SFTC + DCC +
//!   heterogeneous layer chaining dataflow + 28 nm energy model).
//!
//! [`Nvca`] deploys a CTVC configuration onto the accelerator: it maps the
//! decoder layer graph to a simulator workload, decodes bitstreams
//! functionally, and reports hardware performance (cycles, fps, GOPS,
//! power, off-chip traffic) for any resolution — including the paper's
//! 1080p operating point, which the functional software path never has to
//! execute.
//!
//! # Example
//!
//! ```no_run
//! use nvca::Nvca;
//! use nvc_model::{CtvcConfig, RatePoint};
//! use nvc_sim::Dataflow;
//! use nvc_video::synthetic::{SceneConfig, Synthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36))?;
//! // Hardware performance of decoding 1080p, per frame:
//! let report = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
//! println!("{:.1} fps at {:.2} W", report.fps, report.power_w);
//! // Functional encode/decode on a small sequence:
//! let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 3)).generate();
//! let coded = nvca.codec().encode(&seq, RatePoint::new(1))?;
//! let _decoded = nvca.codec().decode(&coded.bitstream)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod report;

pub use nvc_entropy::container::FrameKind;
pub use report::{offchip_comparison, OffchipRow};

use nvc_entropy::container::{split_packets, Packet};
use nvc_model::graph::LayerDesc;
use nvc_model::{CtvcCodec, CtvcConfig, CtvcError, LayerKind};
use nvc_sim::comparators::{PlatformRow, Provenance};
use nvc_sim::{Dataflow, NvcaConfig, SimLayer, SimOp, SimReport, Simulator, Workload};
use nvc_video::codec::DecoderSession;

/// A CTVC-Net instance deployed on the NVCA accelerator.
#[derive(Debug, Clone)]
pub struct Nvca {
    codec: CtvcCodec,
    simulator: Simulator,
}

impl Nvca {
    /// Deploys a CTVC configuration on an explicit accelerator
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::Config`] for invalid model configurations.
    pub fn new(model: CtvcConfig, hw: NvcaConfig) -> Result<Self, CtvcError> {
        Ok(Nvca {
            codec: CtvcCodec::new(model)?,
            simulator: Simulator::new(hw),
        })
    }

    /// Deploys on the paper's design point (12×12 SCUs, ρ from the model
    /// configuration, 400 MHz, 373 KB SRAM).
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::Config`] for invalid model configurations.
    pub fn paper_design(model: CtvcConfig) -> Result<Self, CtvcError> {
        let mut hw = NvcaConfig::paper();
        hw.rho = model.sparsity.unwrap_or(0.0);
        Self::new(model, hw)
    }

    /// The functional codec.
    pub fn codec(&self) -> &CtvcCodec {
        &self.codec
    }

    /// The hardware simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// Maps the decoder layer graph at `h × w` to a simulator workload.
    pub fn decoder_workload(&self, h: usize, w: usize) -> Workload {
        let graph = nvc_model::decoder_graph(self.codec.config(), h, w);
        Workload::new(graph.iter().map(map_layer).collect())
    }

    /// Workload of decoding an *intra* frame at `h × w`: only the frame
    /// reconstruction module runs (the intra payload is dequantized
    /// straight into features; no motion/residual synthesis, no
    /// compensation).
    pub fn intra_workload(&self, h: usize, w: usize) -> Workload {
        let graph = nvc_model::decoder_graph(self.codec.config(), h, w);
        Workload::new(
            graph
                .iter()
                .filter(|l| l.module == "frame_reconstruction")
                .map(map_layer)
                .collect(),
        )
    }

    /// Simulates decoding one P frame at `h × w` under a dataflow.
    pub fn simulate_decode(&self, h: usize, w: usize, dataflow: Dataflow) -> SimReport {
        self.simulator.run(&self.decoder_workload(h, w), dataflow)
    }

    /// Maps a packetized CTVC bitstream onto the accelerator, packet by
    /// packet: each packet is functionally decoded through a streaming
    /// [`DecoderSession`] (validating framing, CRCs and prediction
    /// structure) and simultaneously charged to the simulator with the
    /// workload matching its frame type — intra packets run only frame
    /// reconstruction, predicted packets run the full five-module decoder
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError`] on any malformed packet (the stream is
    /// validated exactly as a real decode would).
    pub fn simulate_decode_stream(
        &self,
        bitstream: &[u8],
        dataflow: Dataflow,
    ) -> Result<StreamSimReport, CtvcError> {
        let chunks = split_packets(bitstream)?;
        if chunks.is_empty() {
            return Err(CtvcError::BadInput("empty bitstream".into()));
        }
        let mut session = self.codec.start_decode();
        let mut frames = Vec::with_capacity(chunks.len());
        let (mut w, mut h) = (0usize, 0usize);
        // The session enforces constant geometry, so the two workloads
        // (intra / predicted) are built once, after the first decode.
        let mut workloads: Option<(Workload, Workload)> = None;
        for chunk in chunks {
            let (frame_index, kind, payload_bytes) = Packet::peek_header(chunk)?;
            let frame = session.push_packet(chunk)?;
            (w, h) = (frame.width(), frame.height());
            let (intra_wl, predicted_wl) = workloads
                .get_or_insert_with(|| (self.intra_workload(h, w), self.decoder_workload(h, w)));
            let workload = match kind {
                FrameKind::Intra => &*intra_wl,
                FrameKind::Predicted => &*predicted_wl,
            };
            frames.push(FrameSimReport {
                frame_index,
                kind,
                payload_bytes,
                report: self.simulator.run(workload, dataflow),
            });
        }
        let total_cycles: u64 = frames.iter().map(|f| f.report.total_cycles).sum();
        let dram_bytes: u64 = frames.iter().map(|f| f.report.dram_bytes).sum();
        let fps = frames.len() as f64 * self.simulator.config().freq_mhz * 1e6
            / total_cycles.max(1) as f64;
        Ok(StreamSimReport {
            width: w,
            height: h,
            frames,
            total_cycles,
            dram_bytes,
            fps,
        })
    }

    /// Produces this design's Table II row from the simulator at the
    /// paper's 1080p operating point.
    pub fn table2_row(&self) -> PlatformRow {
        let report = self.simulate_decode(1088, 1920, Dataflow::Chained);
        let hw = self.simulator.config();
        PlatformRow {
            name: "NVCA (this repo)",
            benchmark: "CTVC-Net",
            technology_nm: 28,
            freq_mhz: hw.freq_mhz,
            precision: "FXP 12-16",
            gate_count_m: Some(hw.gate_count_m()),
            sram_kb: Some(hw.total_sram_bytes() as f64 / 1024.0),
            power_w: report.power_w,
            throughput_gops: report.physical_gops,
            provenance: Provenance::Reproduced,
        }
    }
}

/// Maps one decoder-graph layer onto the simulator's operator zoo.
fn map_layer(l: &LayerDesc) -> SimLayer {
    let op = match l.kind {
        LayerKind::Conv { k: 3, stride } => SimOp::Conv3x3 {
            c_in: l.c_in,
            c_out: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
            stride,
        },
        LayerKind::Conv { k: 1, .. } => SimOp::Conv1x1 {
            c_in: l.c_in,
            c_out: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
        },
        LayerKind::Conv { k, stride } => {
            // Generic odd kernels run in plain MAC mode via an
            // equivalent-MAC 1×1 shape.
            SimOp::Conv1x1 {
                c_in: l.c_in * k * k,
                c_out: l.c_out,
                h_out: l.h_out / stride.max(1),
                w_out: l.w_out,
            }
        }
        LayerKind::DeConv { .. } => SimOp::Deconv4x4 {
            c_in: l.c_in,
            c_out: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
        },
        LayerKind::DfConv { groups, .. } => SimOp::DfConv3x3 {
            c_in: l.c_in,
            c_out: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
            groups,
        },
        LayerKind::SwinAttention { window, heads } => SimOp::Attention {
            c: l.c_in,
            h: l.h_in,
            w: l.w_in,
            window,
            heads,
        },
        LayerKind::Pool { k } => SimOp::Pool {
            c: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
            k,
        },
        // `LayerKind` is non-exhaustive; future kinds map to a
        // traffic-only placeholder until explicitly modelled.
        _ => SimOp::Pool {
            c: l.c_out,
            h_out: l.h_out,
            w_out: l.w_out,
            k: 1,
        },
    };
    SimLayer::new(format!("{}.{}", l.module, l.name), l.module, op)
}

/// Hardware cost of decoding one packet of a stream.
#[derive(Debug, Clone)]
pub struct FrameSimReport {
    /// Frame index from the packet header.
    pub frame_index: u32,
    /// Frame type from the packet header.
    pub kind: FrameKind,
    /// Coded payload bytes of the packet.
    pub payload_bytes: usize,
    /// Simulator report for this frame's workload.
    pub report: SimReport,
}

/// Aggregate hardware cost of decoding a packetized stream (see
/// [`Nvca::simulate_decode_stream`]).
#[derive(Debug, Clone)]
pub struct StreamSimReport {
    /// Stream width in pixels.
    pub width: usize,
    /// Stream height in pixels.
    pub height: usize,
    /// Per-packet breakdown, in decode order.
    pub frames: Vec<FrameSimReport>,
    /// Total cycles across all packets.
    pub total_cycles: u64,
    /// Total DRAM traffic across all packets.
    pub dram_bytes: u64,
    /// Sustained decode rate over the stream.
    pub fps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_model::RatePoint;
    use nvc_video::synthetic::{SceneConfig, Synthesizer};

    #[test]
    fn workload_mapping_preserves_macs() {
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
        let graph = nvc_model::decoder_graph(nvca.codec().config(), 128, 128);
        let graph_macs: u64 = graph.iter().map(|l| l.macs()).sum();
        let wl = nvca.decoder_workload(128, 128);
        let wl_macs = wl.total_macs();
        let rel = (graph_macs as f64 - wl_macs as f64).abs() / graph_macs as f64;
        assert!(
            rel < 0.05,
            "MAC mismatch: graph {graph_macs} vs workload {wl_macs}"
        );
    }

    #[test]
    fn paper_operating_point_is_in_class() {
        // The paper reports 25 fps at 1080p, 3525 GOPS, 0.76 W,
        // 4638 GOPS/W. The simulator must land in the same class (same
        // order of magnitude, correct side of real-time).
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
        let rep = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
        assert!(
            rep.fps >= 20.0,
            "must sustain ≈ real time, got {:.1} fps",
            rep.fps
        );
        assert!(rep.fps < 500.0, "implausibly fast: {:.1} fps", rep.fps);
        assert!(
            (0.2..3.0).contains(&rep.power_w),
            "power {:.2} W outside the sub-watt accelerator class",
            rep.power_w
        );
        assert!(
            rep.gops_per_watt > 1000.0,
            "efficiency {:.0} GOPS/W below the ASIC class",
            rep.gops_per_watt
        );
    }

    #[test]
    fn chaining_beats_layer_by_layer_at_1080p() {
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
        let lbl = nvca.simulate_decode(1088, 1920, Dataflow::LayerByLayer);
        let ch = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
        let reduction = 1.0 - ch.dram_bytes as f64 / lbl.dram_bytes as f64;
        // Paper: 40.7% overall reduction.
        assert!(
            (0.15..0.75).contains(&reduction),
            "off-chip reduction {:.1}% out of plausible range",
            reduction * 100.0
        );
        assert!(ch.fps >= lbl.fps);
    }

    #[test]
    fn stream_simulation_tracks_frame_types() {
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(8)).unwrap();
        let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 3)).generate();
        let coded = nvca.codec().encode(&seq, RatePoint::new(1)).unwrap();
        let rep = nvca
            .simulate_decode_stream(&coded.bitstream, Dataflow::Chained)
            .unwrap();
        assert_eq!((rep.width, rep.height), (48, 32));
        assert_eq!(rep.frames.len(), 3);
        assert_eq!(rep.frames[0].kind, FrameKind::Intra);
        assert!(rep.frames[1..]
            .iter()
            .all(|f| f.kind == FrameKind::Predicted));
        // Intra decode exercises only frame reconstruction: strictly
        // cheaper than a predicted frame.
        assert!(rep.frames[0].report.total_cycles < rep.frames[1].report.total_cycles);
        assert_eq!(
            rep.total_cycles,
            rep.frames
                .iter()
                .map(|f| f.report.total_cycles)
                .sum::<u64>()
        );
        assert!(rep.fps > 0.0);
        // Malformed streams are rejected, never panic.
        assert!(nvca.simulate_decode_stream(&[], Dataflow::Chained).is_err());
        let mut bad = coded.bitstream.clone();
        bad.truncate(bad.len() - 3);
        assert!(nvca
            .simulate_decode_stream(&bad, Dataflow::Chained)
            .is_err());
    }

    #[test]
    fn table2_row_is_reproduced_provenance() {
        let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
        let row = nvca.table2_row();
        assert_eq!(row.provenance, Provenance::Reproduced);
        assert!(row.throughput_gops > 100.0);
        assert!(row.gops_per_watt() > 100.0);
        // Same SRAM budget as the paper's design point.
        assert_eq!(row.sram_kb, Some(373.0));
    }
}
