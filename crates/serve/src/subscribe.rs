//! The subscriber side of a broadcast: the blocking [`SubscribeClient`].
//!
//! The server half of a subscription lives in the event-driven core —
//! `conn::pump_subscriber` transfers ring packets into the connection's
//! outbox and the poller drains the outbox on write-readiness — so this
//! module is purely the client.

use crate::proto::{
    read_ack_body, read_error_body, read_join_body, read_stats_body, read_u8, JoinInfo, Role,
    MSG_ACK, MSG_ERROR, MSG_JOIN, MSG_PACKET, MSG_STATS,
};
use crate::ServeError;
use nvc_entropy::container::Packet;
use nvc_video::StreamStats;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One event off a subscription.
#[derive(Debug, Clone)]
pub enum SubscribeEvent {
    /// The next coded packet, in publish order.
    Packet(Packet),
    /// The broadcast ended cleanly; the trailer covers exactly the
    /// packets this subscriber received.
    End(StreamStats),
}

/// Everything a completed subscription received.
#[derive(Debug, Clone)]
pub struct SubscribeSummary {
    /// The join info the server sent on attach.
    pub join: JoinInfo,
    /// Every received packet, in publish order (the first is an intra).
    pub packets: Vec<Packet>,
    /// The trailer: per-frame stats for the received packet range.
    pub stats: StreamStats,
}

/// A blocking subscriber connection to a broadcast on a
/// [`Server`](crate::Server). Subscribers only read after the
/// handshake: packets arrive as the publisher produces them, starting
/// at an intra boundary (late joiners replay the current GOP segment).
///
/// A lagging subscriber — one that stops calling [`next_event`] while
/// the publisher keeps going — is *evicted*: the server reports the lag
/// as a [`ServeError::Remote`] and closes the connection rather than
/// ever stalling the publisher.
///
/// [`next_event`]: SubscribeClient::next_event
pub struct SubscribeClient {
    reader: BufReader<TcpStream>,
    version: u8,
    join: JoinInfo,
}

impl std::fmt::Debug for SubscribeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubscribeClient({:?})", self.join)
    }
}

impl SubscribeClient {
    /// Connects and performs the subscribe handshake with the default
    /// ten-second join timeout; `hello` must come from
    /// [`Hello::subscribe`](crate::Hello::subscribe). A rejection
    /// (unknown name, geometry mismatch, capacity) surfaces as
    /// [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on connection, handshake or rejection.
    pub fn connect(addr: impl ToSocketAddrs, hello: crate::Hello) -> Result<Self, ServeError> {
        Self::connect_with(addr, hello, Some(Duration::from_secs(10)))
    }

    /// [`connect`](SubscribeClient::connect) with an explicit join
    /// timeout: the ack and join-info reads of the handshake abort with
    /// a timeout error instead of hanging forever when the server
    /// accepts the socket but never answers. The socket reverts to
    /// blocking reads once the join resolves — success *or* failure;
    /// a rejected handshake must not leave the timeout armed on a
    /// socket the caller may keep using — a quiet broadcast is normal,
    /// a quiet handshake is not. `None` disables the timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on connection, handshake, timeout or
    /// rejection.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        hello: crate::Hello,
        join_timeout: Option<Duration>,
    ) -> Result<Self, ServeError> {
        if hello.role != Role::Subscribe {
            return Err(ServeError::Protocol(
                "SubscribeClient needs a subscribe handshake".into(),
            ));
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(join_timeout)?;
        let result = Self::join_handshake(&stream, hello);
        // Revert the handshake timeout on *every* path. On errors the
        // revert is best-effort: the join failure is what the caller
        // needs to see, not a second socket error from the cleanup.
        match &result {
            Ok(_) => stream.set_read_timeout(None)?,
            Err(_) => {
                let _ = stream.set_read_timeout(None);
            }
        }
        result
    }

    /// The timeout-guarded half of [`connect_with`]: hello out, ack and
    /// join info back.
    ///
    /// [`connect_with`]: SubscribeClient::connect_with
    fn join_handshake(stream: &TcpStream, hello: crate::Hello) -> Result<Self, ServeError> {
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream.try_clone()?);
        hello.write_to(&mut writer)?;
        writer.flush()?;
        match read_u8(&mut reader)? {
            MSG_ACK => {
                let _ack = read_ack_body(&mut reader, hello.version)?;
            }
            MSG_ERROR => return Err(ServeError::Remote(read_error_body(&mut reader)?)),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "expected handshake ack, got tag 0x{tag:02X}"
                )))
            }
        }
        let join = match read_u8(&mut reader)? {
            MSG_JOIN => read_join_body(&mut reader)?,
            MSG_ERROR => return Err(ServeError::Remote(read_error_body(&mut reader)?)),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "expected join info, got tag 0x{tag:02X}"
                )))
            }
        };
        Ok(SubscribeClient {
            reader,
            version: hello.version,
            join,
        })
    }

    /// What the server said about the joined broadcast.
    pub fn join(&self) -> &JoinInfo {
        &self.join
    }

    /// Sets a read timeout on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Blocks for the next event: a packet, or the end-of-broadcast
    /// trailer.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] when the server ends the
    /// subscription with an error — eviction for lagging, or a
    /// publisher-side failure.
    pub fn next_event(&mut self) -> Result<SubscribeEvent, ServeError> {
        match read_u8(&mut self.reader)? {
            MSG_PACKET => Ok(SubscribeEvent::Packet(Packet::read_from(&mut self.reader)?)),
            MSG_STATS => Ok(SubscribeEvent::End(read_stats_body(
                &mut self.reader,
                self.version,
            )?)),
            MSG_ERROR => Err(ServeError::Remote(read_error_body(&mut self.reader)?)),
            tag => Err(ServeError::Protocol(format!(
                "unexpected subscription tag 0x{tag:02X}"
            ))),
        }
    }

    /// Drains the subscription to completion: every packet until the
    /// broadcast ends.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] as [`SubscribeClient::next`] does.
    pub fn collect(mut self) -> Result<SubscribeSummary, ServeError> {
        let mut packets = Vec::new();
        loop {
            match self.next_event()? {
                SubscribeEvent::Packet(packet) => packets.push(packet),
                SubscribeEvent::End(stats) => {
                    return Ok(SubscribeSummary {
                        join: self.join,
                        packets,
                        stats,
                    })
                }
            }
        }
    }
}
