//! The subscriber side of a broadcast: the server's per-subscriber
//! writer loop and the blocking [`SubscribeClient`].

use crate::broadcast::{Attachment, CachedPacket, RingPop};
use crate::proto::{
    read_ack_body, read_error_body, read_join_body, read_stats_body, read_u8, write_stats_msg,
    JoinInfo, Role, MSG_ACK, MSG_ERROR, MSG_JOIN, MSG_PACKET, MSG_STATS,
};
use crate::server::hangup;
use crate::ServeError;
use nvc_core::ExecPool;
use nvc_entropy::container::Packet;
use nvc_video::StreamStats;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Backstop wait for ring pops. Every way a subscription can end —
/// publish, close, eviction, failure, registry shutdown — notifies the
/// ring's condvar, so waits are event-driven and this bound only limits
/// how often an idle writer re-checks the stop flag. A short poll here
/// would melt a large fan-out: thousands of idle writer threads waking
/// every few milliseconds costs more than the fan-out writes themselves.
const RING_WAIT: Duration = Duration::from_secs(1);

/// How long a subscriber writer waits for a fan-out permit before
/// proceeding without one. The permit bounds the CPU-side fan-out work
/// (stats accounting, buffer assembly) — it is a soft cap, so a stalled
/// permit holder degrades fairness, never liveness.
const FANOUT_LEASE_TIMEOUT: Duration = Duration::from_millis(5);

/// Per-subscriber stats accumulator: the same per-frame columns an
/// encode stream's trailer carries, derived from the cached packets so
/// every subscriber's trailer describes exactly the bytes it received.
#[derive(Default)]
struct SubscriberStats {
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<nvc_entropy::container::FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
}

impl SubscriberStats {
    fn finish(self) -> StreamStats {
        StreamStats {
            frames: self.bytes_per_frame.len(),
            bytes_per_frame: self.bytes_per_frame,
            bits_per_frame: self.bits_per_frame,
            frame_types: self.frame_types,
            rate_per_frame: self.rate_per_frame,
            total_bytes: self.total_bytes,
        }
    }
}

/// The server's writer loop for one subscriber connection: replays the
/// attachment's backlog, then relays live packets off the ring until the
/// broadcast ends, the subscriber is evicted, or its socket dies. Runs
/// on the connection's own thread — subscribers never occupy the
/// compute worker pool.
pub(crate) fn serve_subscriber(
    mut out: BufWriter<TcpStream>,
    attachment: Attachment,
    version: u8,
    fanout: &ExecPool,
    stop: &AtomicBool,
) {
    let Attachment { ring, backlog, .. } = attachment;
    let mut stats = SubscriberStats::default();
    for packet in backlog {
        if !send_packet(&mut out, &packet, &mut stats, fanout) {
            ring.detach();
            hangup(&mut out, None);
            return;
        }
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            ring.detach();
            hangup(&mut out, None);
            return;
        }
        match ring.pop(RING_WAIT) {
            RingPop::Packet(packet) => {
                if !send_packet(&mut out, &packet, &mut stats, fanout) {
                    ring.detach();
                    hangup(&mut out, None);
                    return;
                }
            }
            RingPop::Empty => {}
            RingPop::Closed => {
                let _ = write_stats_msg(&mut out, &stats.finish(), version);
                hangup(&mut out, None);
                return;
            }
            RingPop::Evicted(reason) => {
                hangup(&mut out, Some(&reason));
                return;
            }
            RingPop::Failed(reason) => {
                hangup(&mut out, Some(&reason));
                return;
            }
        }
    }
}

/// Writes one cached packet and accounts it; returns `false` when the
/// socket is gone. The fan-out permit is held only across the CPU-side
/// accounting and buffer fill, never across the flush — blocked socket
/// I/O parks on the subscriber's own thread, not on a shared permit.
fn send_packet(
    out: &mut BufWriter<TcpStream>,
    packet: &Arc<CachedPacket>,
    stats: &mut SubscriberStats,
    fanout: &ExecPool,
) -> bool {
    {
        let _lease = fanout.lease_timeout(1, FANOUT_LEASE_TIMEOUT);
        stats.bytes_per_frame.push(packet.payload_len);
        stats.bits_per_frame.push(packet.bytes.len() as u64 * 8);
        stats.frame_types.push(packet.kind);
        stats.rate_per_frame.push(packet.rate);
        stats.total_bytes += packet.bytes.len();
        if out
            .write_all(&[MSG_PACKET])
            .and_then(|()| out.write_all(&packet.bytes))
            .is_err()
        {
            return false;
        }
    }
    out.flush().is_ok()
}

/// One event off a subscription.
#[derive(Debug, Clone)]
pub enum SubscribeEvent {
    /// The next coded packet, in publish order.
    Packet(Packet),
    /// The broadcast ended cleanly; the trailer covers exactly the
    /// packets this subscriber received.
    End(StreamStats),
}

/// Everything a completed subscription received.
#[derive(Debug, Clone)]
pub struct SubscribeSummary {
    /// The join info the server sent on attach.
    pub join: JoinInfo,
    /// Every received packet, in publish order (the first is an intra).
    pub packets: Vec<Packet>,
    /// The trailer: per-frame stats for the received packet range.
    pub stats: StreamStats,
}

/// A blocking subscriber connection to a broadcast on a
/// [`Server`](crate::Server). Subscribers only read after the
/// handshake: packets arrive as the publisher produces them, starting
/// at an intra boundary (late joiners replay the current GOP segment).
///
/// A lagging subscriber — one that stops calling [`next_event`] while
/// the publisher keeps going — is *evicted*: the server reports the lag
/// as a [`ServeError::Remote`] and closes the connection rather than
/// ever stalling the publisher.
///
/// [`next_event`]: SubscribeClient::next_event
pub struct SubscribeClient {
    reader: BufReader<TcpStream>,
    version: u8,
    join: JoinInfo,
}

impl std::fmt::Debug for SubscribeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubscribeClient({:?})", self.join)
    }
}

impl SubscribeClient {
    /// Connects and performs the subscribe handshake with the default
    /// ten-second join timeout; `hello` must come from
    /// [`Hello::subscribe`](crate::Hello::subscribe). A rejection
    /// (unknown name, geometry mismatch, capacity) surfaces as
    /// [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on connection, handshake or rejection.
    pub fn connect(addr: impl ToSocketAddrs, hello: crate::Hello) -> Result<Self, ServeError> {
        Self::connect_with(addr, hello, Some(Duration::from_secs(10)))
    }

    /// [`connect`](SubscribeClient::connect) with an explicit join
    /// timeout: the ack and join-info reads of the handshake abort with
    /// a timeout error instead of hanging forever when the server
    /// accepts the socket but never answers. The socket reverts to
    /// blocking reads once the join completes — a quiet broadcast is
    /// normal, a quiet handshake is not. `None` disables the timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on connection, handshake, timeout or
    /// rejection.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        hello: crate::Hello,
        join_timeout: Option<Duration>,
    ) -> Result<Self, ServeError> {
        if hello.role != Role::Subscribe {
            return Err(ServeError::Protocol(
                "SubscribeClient needs a subscribe handshake".into(),
            ));
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(join_timeout)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        hello.write_to(&mut writer)?;
        writer.flush()?;
        match read_u8(&mut reader)? {
            MSG_ACK => {
                let _ack = read_ack_body(&mut reader, hello.version)?;
            }
            MSG_ERROR => return Err(ServeError::Remote(read_error_body(&mut reader)?)),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "expected handshake ack, got tag 0x{tag:02X}"
                )))
            }
        }
        let join = match read_u8(&mut reader)? {
            MSG_JOIN => read_join_body(&mut reader)?,
            MSG_ERROR => return Err(ServeError::Remote(read_error_body(&mut reader)?)),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "expected join info, got tag 0x{tag:02X}"
                )))
            }
        };
        // Joined: back to blocking reads. Waiting a long time for the
        // next packet of a quiet broadcast is expected behavior.
        reader.get_ref().set_read_timeout(None)?;
        Ok(SubscribeClient {
            reader,
            version: hello.version,
            join,
        })
    }

    /// What the server said about the joined broadcast.
    pub fn join(&self) -> &JoinInfo {
        &self.join
    }

    /// Sets a read timeout on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Blocks for the next event: a packet, or the end-of-broadcast
    /// trailer.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Remote`] when the server ends the
    /// subscription with an error — eviction for lagging, or a
    /// publisher-side failure.
    pub fn next_event(&mut self) -> Result<SubscribeEvent, ServeError> {
        match read_u8(&mut self.reader)? {
            MSG_PACKET => Ok(SubscribeEvent::Packet(Packet::read_from(&mut self.reader)?)),
            MSG_STATS => Ok(SubscribeEvent::End(read_stats_body(
                &mut self.reader,
                self.version,
            )?)),
            MSG_ERROR => Err(ServeError::Remote(read_error_body(&mut self.reader)?)),
            tag => Err(ServeError::Protocol(format!(
                "unexpected subscription tag 0x{tag:02X}"
            ))),
        }
    }

    /// Drains the subscription to completion: every packet until the
    /// broadcast ends.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] as [`SubscribeClient::next`] does.
    pub fn collect(mut self) -> Result<SubscribeSummary, ServeError> {
        let mut packets = Vec::new();
        loop {
            match self.next_event()? {
                SubscribeEvent::Packet(packet) => packets.push(packet),
                SubscribeEvent::End(stats) => {
                    return Ok(SubscribeSummary {
                        join: self.join,
                        packets,
                        stats,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::{BroadcastInfo, BroadcastRegistry, CachedPacket};
    use crate::proto::Family;
    use nvc_entropy::container::FrameKind;
    use std::io::Read;
    use std::net::TcpListener;

    fn socket_pair() -> (BufWriter<TcpStream>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_write_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Mirror the real server's poll timeout: `hangup`'s post-error
        // drain does blocking reads and relies on it to observe its
        // deadline.
        server
            .set_read_timeout(Some(Duration::from_millis(25)))
            .unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        (BufWriter::new(server), client)
    }

    fn cached(frame_index: u32, kind: FrameKind) -> CachedPacket {
        let packet = Packet::new(frame_index, kind, vec![frame_index as u8; 16]);
        CachedPacket {
            bytes: packet.to_bytes(),
            payload_len: packet.payload.len(),
            frame_index,
            kind,
            rate: 1,
        }
    }

    /// Lag eviction over real sockets, made deterministic by publishing
    /// into the rings *before* the writer threads start draining them:
    /// the slow subscriber's ring (capacity 2) overflows, the fast one
    /// holds everything. The evicted subscriber must receive a clean
    /// `'X'` with the lag reason and a closed connection; the fast one
    /// streams every packet and the trailer, unaffected.
    #[test]
    fn evicted_subscriber_gets_a_clean_error_while_others_stream_on() {
        let registry = BroadcastRegistry::new();
        let info = BroadcastInfo {
            family: Family::Ctvc,
            width: 32,
            height: 32,
            gop: 4,
        };
        let mut guard = registry.create("game", info, 1).unwrap();
        let slow_att = guard.broadcast().attach(2).unwrap();
        let fast_att = guard.broadcast().attach(64).unwrap();
        let mut evicted = 0;
        for i in 0..4 {
            let kind = if i == 0 {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            };
            evicted += guard.broadcast().publish(cached(i, kind));
        }
        assert_eq!(evicted, 1, "the capacity-2 ring must overflow");
        guard.finish();

        let fanout = ExecPool::new(1);
        let stop = AtomicBool::new(false);
        let (slow_out, mut slow_client) = socket_pair();
        let (fast_out, mut fast_client) = socket_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| serve_subscriber(slow_out, slow_att, 3, &fanout, &stop));
            scope.spawn(|| serve_subscriber(fast_out, fast_att, 3, &fanout, &stop));

            let mut tag = [0u8; 1];
            slow_client.read_exact(&mut tag).unwrap();
            assert_eq!(tag[0], MSG_ERROR, "eviction must arrive as 'X'");
            let reason = read_error_body(&mut &slow_client).unwrap();
            assert!(reason.contains("lagging"), "{reason}");
            assert_eq!(
                slow_client.read(&mut tag).unwrap(),
                0,
                "connection must close after the eviction notice"
            );

            for want in 0..4u32 {
                fast_client.read_exact(&mut tag).unwrap();
                assert_eq!(tag[0], MSG_PACKET);
                let packet = Packet::read_from(&mut &fast_client).unwrap();
                assert_eq!(packet.frame_index, want);
            }
            fast_client.read_exact(&mut tag).unwrap();
            assert_eq!(tag[0], MSG_STATS, "clean end must carry the trailer");
            let stats = read_stats_body(&mut &fast_client, 3).unwrap();
            assert_eq!(stats.frames, 4);
        });
    }
}
