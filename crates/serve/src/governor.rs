//! Cross-session rate governor: splits one aggregate bit budget across
//! every live encode/publish session and decides admission.
//!
//! The governor is the serve-level analogue of a per-stream rate
//! controller's reservoir: instead of smoothing one stream's bits over
//! a window, it holds the *sum* of all streams' per-frame bits near a
//! configured budget. Each session registers a demand — its requested
//! target in bits per frame — and the governor hands back a *grant
//! ratio* in `(0, 1]`: the fraction of that demand the session's fair
//! share covers right now. Sessions re-read their ratio at every frame
//! boundary and push the granted rate through the ordinary in-band
//! retarget path, so a governed stream is indistinguishable on the wire
//! from one whose client retargeted it.
//!
//! Three properties drive the design:
//!
//! * **Determinism** (invariant 3): a grant is a pure function of the
//!   set of live sessions and the config — never of observed bits,
//!   wall-clock time, or arrival jitter. Replaying the same admission
//!   sequence with the same frame interleaving reproduces every
//!   session's bitstream byte-for-byte.
//! * **Per-client fairness**: a session's weight is its demand divided
//!   by how many sessions its client has open, so a client opening 50
//!   sessions competes for one client-sized slice, not 50.
//! * **Degrade before drop**: overload walks every session down its
//!   rate ladder (or shrinks its bpp target) step by step; admission
//!   only rejects once projected demand exceeds `reject_overload`
//!   budgets or the scheduler backlog passes `max_backlog`. Load
//!   draining walks the survivors back up.

use crate::server::Counters;
use crate::sync::LockExt;
use nvc_video::rate::{RateMode, RateParam};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Knobs for the cross-session rate governor ([`crate::ServeConfig`]'s
/// `governor` field; `None` disables governing entirely).
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Aggregate budget in coded bits per frame interval, summed across
    /// all governed sessions — the reservoir every grant is carved
    /// from. Values below 1 are clamped to 1.
    pub budget_bits_per_frame: f64,
    /// Demand assumed for a fixed-rate session, in bits per pixel at
    /// its requested rung (closed-loop sessions declare their demand
    /// exactly via their bpp target). Default 0.5.
    pub assumed_bpp: f64,
    /// Per-client fairness: when `true` (default) a session's weight is
    /// divided by its client's open-session count, so budget is split
    /// per client first and per session second.
    pub fair_share: bool,
    /// Floor of the degradation walk, as a ladder position (0 = the
    /// cheapest rung). Sessions are never pushed below this — nor below
    /// their own request if they asked for less. Default 0.
    pub min_position: u32,
    /// Admission rejects once *projected* aggregate demand exceeds this
    /// many budgets — the headroom the degradation curve may spend
    /// before new sessions bounce. Default 8.0.
    pub reject_overload: f64,
    /// Admission rejects while the scheduler backlog (queued jobs
    /// across all sessions) exceeds this. `0` (default) derives
    /// `queue_depth × max_sessions` from the serve config.
    pub max_backlog: usize,
}

impl GovernorConfig {
    /// A governor splitting `budget_bits_per_frame` across all live
    /// sessions, with default fairness and admission knobs.
    pub fn new(budget_bits_per_frame: f64) -> Self {
        GovernorConfig {
            budget_bits_per_frame,
            assumed_bpp: 0.5,
            fair_share: true,
            min_position: 0,
            reject_overload: 8.0,
            max_backlog: 0,
        }
    }
}

struct GovSession {
    client: String,
    /// Demand in bits per frame interval.
    want: f64,
}

struct GovState {
    next_id: u64,
    sessions: BTreeMap<u64, GovSession>,
}

/// The live governor: the session registry plus the allocation
/// arithmetic. One per server, shared by every connection thread.
pub(crate) struct Governor {
    cfg: GovernorConfig,
    budget: f64,
    max_backlog: usize,
    state: Mutex<GovState>,
}

impl Governor {
    pub(crate) fn new(cfg: GovernorConfig, default_backlog: usize) -> Self {
        let budget = cfg.budget_bits_per_frame.max(1.0);
        let max_backlog = if cfg.max_backlog == 0 {
            default_backlog.max(1)
        } else {
            cfg.max_backlog
        };
        Governor {
            cfg,
            budget,
            max_backlog,
            state: Mutex::new(GovState {
                next_id: 0,
                sessions: BTreeMap::new(),
            }),
        }
    }

    pub(crate) fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Compute-side admission gate, applied to every governed
    /// connection including decode streams: refuse new work while the
    /// scheduler is drowning in queued jobs.
    pub(crate) fn check_backlog(&self, backlog: usize) -> Result<(), String> {
        if backlog > self.max_backlog {
            Err(format!(
                "server over compute budget ({backlog} jobs queued, cap {})",
                self.max_backlog
            ))
        } else {
            Ok(())
        }
    }

    /// Bandwidth-side admission: registers a session wanting `want`
    /// bits per frame for `client`, or explains the rejection. On
    /// success the returned ratio is the session's starting grant —
    /// below 1 means the session is admitted *degraded*.
    pub(crate) fn admit(
        &self,
        client: &str,
        want: f64,
        backlog: usize,
    ) -> Result<(u64, f64), String> {
        self.check_backlog(backlog)?;
        let want = want.max(1.0);
        let mut state = self.state.lock_clean();
        let projected: f64 = state.sessions.values().map(|s| s.want).sum::<f64>() + want;
        if projected > self.budget * self.cfg.reject_overload {
            return Err(format!(
                "server over bandwidth budget ({:.0} bits/frame demanded, budget {:.0} x{:.1})",
                projected, self.budget, self.cfg.reject_overload
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        state.sessions.insert(
            id,
            GovSession {
                client: client.to_string(),
                want,
            },
        );
        let ratio = self.ratio_locked(&state, id);
        Ok((id, ratio))
    }

    /// Unregisters a session; the freed share flows back to the
    /// survivors at their next frame boundary.
    pub(crate) fn release(&self, id: u64) {
        let mut state = self.state.lock_clean();
        state.sessions.remove(&id);
    }

    /// The session's current grant ratio in `(0, 1]` — a pure function
    /// of the live session set, so every evaluation between the same
    /// admissions and releases returns the same value.
    pub(crate) fn ratio(&self, id: u64) -> f64 {
        let state = self.state.lock_clean();
        self.ratio_locked(&state, id)
    }

    fn ratio_locked(&self, state: &GovState, id: u64) -> f64 {
        let Some(session) = state.sessions.get(&id) else {
            return 1.0;
        };
        let client_sessions = |client: &str| {
            state
                .sessions
                .values()
                .filter(|s| s.client == client)
                .count() as f64
        };
        let weight_of = |s: &GovSession| {
            if self.cfg.fair_share {
                s.want / client_sessions(&s.client)
            } else {
                s.want
            }
        };
        // BTreeMap iteration keeps the summation order — and therefore
        // the f64 rounding — identical across evaluations.
        let total_weight: f64 = state.sessions.values().map(weight_of).sum();
        if total_weight <= 0.0 {
            return 1.0;
        }
        let allocated = self.budget * weight_of(session) / total_weight;
        (allocated / session.want).clamp(f64::MIN_POSITIVE, 1.0)
    }
}

/// Ladder position granted to a fixed-rate session whose share covers
/// `ratio` of its demand: walk `R::steps_for_ratio(ratio)` rungs down
/// from the request, stopping at the configured floor (or at the
/// request itself if it already sits below the floor).
pub(crate) fn granted_position<R: RateParam>(requested: &R, ratio: f64, floor: u32) -> u32 {
    let req = requested.position();
    req.saturating_sub(R::steps_for_ratio(ratio))
        .max(floor.min(req))
}

/// What a governed session asked for at the handshake — the full-rate
/// mode every grant is computed relative to.
pub(crate) enum GovWant<R: RateParam> {
    Fixed(R),
    TargetBpp { bpp: f64, window: usize },
}

/// A session's registration with the governor, owned by its runner:
/// re-derives the granted rate mode at every frame boundary, counts
/// degrade/restore transitions, and releases the registration when the
/// stream ends (or on drop, whichever comes first).
pub(crate) struct Governed<'env, R: RateParam> {
    gov: &'env Governor,
    counters: &'env Counters,
    id: u64,
    want: GovWant<R>,
    /// Grant currently applied to the session: a ladder position for
    /// fixed-rate wants, a bpp target (scaled by the ratio) otherwise.
    applied_position: u32,
    applied_bpp: f64,
    degraded: bool,
    released: bool,
}

impl<'env, R: RateParam> Governed<'env, R> {
    /// Wraps a fresh admission. The session object itself still holds
    /// the full requested mode; the first [`Governed::refresh`] (before
    /// frame one is coded) applies the admission grant, so a degraded
    /// admission takes effect from the very first frame — exactly what
    /// the ack promised.
    pub(crate) fn new(
        gov: &'env Governor,
        counters: &'env Counters,
        id: u64,
        want: GovWant<R>,
    ) -> Self {
        let (applied_position, applied_bpp) = match &want {
            GovWant::Fixed(rate) => (rate.position(), 0.0),
            GovWant::TargetBpp { bpp, .. } => (0, *bpp),
        };
        Governed {
            gov,
            counters,
            id,
            want,
            applied_position,
            applied_bpp,
            degraded: false,
            released: false,
        }
    }

    /// Re-derives the grant from the governor's current session set.
    /// Returns the rate mode to retarget the session with when the
    /// grant moved, `None` when it is already applied. Called once per
    /// frame, in stream order, before the frame is coded.
    pub(crate) fn refresh(&mut self) -> Option<RateMode<R>> {
        let ratio = self.gov.ratio(self.id);
        let floor = self.gov.config().min_position;
        match &self.want {
            GovWant::Fixed(requested) => {
                let requested = *requested;
                let position = granted_position(&requested, ratio, floor);
                if position == self.applied_position {
                    return None;
                }
                if position < self.applied_position {
                    self.counters
                        .bump_throttle(u64::from(self.applied_position - position));
                }
                self.applied_position = position;
                self.transition(position >= requested.position());
                Some(RateMode::Fixed(R::from_position(position)))
            }
            GovWant::TargetBpp { bpp, window } => {
                let (bpp, window) = (*bpp, *window);
                let granted = bpp * ratio;
                if granted == self.applied_bpp {
                    return None;
                }
                if granted < self.applied_bpp {
                    self.counters.bump_throttle(1);
                }
                self.applied_bpp = granted;
                self.transition(ratio >= 1.0);
                Some(RateMode::TargetBpp {
                    bpp: granted,
                    window,
                })
            }
        }
    }

    fn transition(&mut self, full: bool) {
        if full && self.degraded {
            self.degraded = false;
            self.counters.bump_restored();
        } else if !full && !self.degraded {
            self.degraded = true;
            self.counters.bump_degraded();
        }
    }

    /// Releases the registration now — called when the stream ends,
    /// *before* the stats trailer is written, so a client that has seen
    /// its trailer knows its share is already back in the pool.
    pub(crate) fn end(&mut self) {
        if !self.released {
            self.released = true;
            self.gov.release(self.id);
        }
    }
}

impl<R: RateParam> Drop for Governed<'_, R> {
    fn drop(&mut self) {
        self.end();
    }
}

/// A just-admitted session not yet owned by a runner: releases the
/// registration on drop so every early exit between admission and
/// runner construction (publish-name clash, ack write failure, …)
/// returns the share to the pool.
pub(crate) struct GovAdmit<'env> {
    gov: &'env Governor,
    id: u64,
    ratio: f64,
    claimed: bool,
}

impl<'env> GovAdmit<'env> {
    pub(crate) fn new(gov: &'env Governor, id: u64, ratio: f64) -> Self {
        GovAdmit {
            gov,
            id,
            ratio,
            claimed: false,
        }
    }

    pub(crate) fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The governor this admission was granted by.
    pub(crate) fn governor(&self) -> &'env Governor {
        self.gov
    }

    /// Hands the registration to a runner's [`Governed`] wrapper.
    pub(crate) fn claim(mut self) -> u64 {
        self.claimed = true;
        self.id
    }
}

impl Drop for GovAdmit<'_> {
    fn drop(&mut self) {
        if !self.claimed {
            self.gov.release(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_model::RatePoint;

    fn governor(budget: f64) -> Governor {
        Governor::new(GovernorConfig::new(budget), 64)
    }

    #[test]
    fn solo_session_gets_full_grant() {
        let gov = governor(1000.0);
        let (id, ratio) = gov.admit("alice", 4000.0, 0).unwrap();
        // Oversubscribed even alone: grant is budget/want.
        assert!((ratio - 0.25).abs() < 1e-12);
        gov.release(id);
        let (_, ratio) = gov.admit("alice", 800.0, 0).unwrap();
        // Under budget: grant caps at 1, surplus is not redistributed.
        assert_eq!(ratio, 1.0);
    }

    #[test]
    fn equal_sessions_split_the_budget_evenly() {
        let gov = governor(1000.0);
        let (a, _) = gov.admit("alice", 1000.0, 0).unwrap();
        let (b, _) = gov.admit("bob", 1000.0, 0).unwrap();
        assert!((gov.ratio(a) - 0.5).abs() < 1e-12);
        assert!((gov.ratio(b) - 0.5).abs() < 1e-12);
        // Releasing one restores the other to a full grant.
        gov.release(b);
        assert_eq!(gov.ratio(a), 1.0);
    }

    #[test]
    fn fairness_stops_a_greedy_client_from_starving_the_rest() {
        // Ten full-budget sessions would trip the overload rejection
        // before fairness ever mattered; lift the ceiling so the test
        // isolates the weighting.
        let mut cfg = GovernorConfig::new(1000.0);
        cfg.reject_overload = f64::INFINITY;
        let gov = Governor::new(cfg, 64);
        let (solo, _) = gov.admit("alice", 1000.0, 0).unwrap();
        let greedy: Vec<u64> = (0..9)
            .map(|_| gov.admit("mallory", 1000.0, 0).unwrap().0)
            .collect();
        // With fairness the two *clients* split the budget: alice keeps
        // half, mallory's nine sessions share the other half.
        assert!((gov.ratio(solo) - 0.5).abs() < 1e-12);
        for &id in &greedy {
            assert!((gov.ratio(id) - 0.5 / 9.0).abs() < 1e-12);
        }

        let mut unfair_cfg = GovernorConfig::new(1000.0);
        unfair_cfg.fair_share = false;
        unfair_cfg.reject_overload = f64::INFINITY;
        let unfair = Governor::new(unfair_cfg, 64);
        let (solo, _) = unfair.admit("alice", 1000.0, 0).unwrap();
        for _ in 0..9 {
            unfair.admit("mallory", 1000.0, 0).unwrap();
        }
        // Without fairness alice is starved down to a tenth.
        assert!((unfair.ratio(solo) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn grants_are_a_pure_function_of_the_session_set() {
        let build = || {
            let gov = governor(5000.0);
            let ids: Vec<u64> = [
                ("alice", 3000.0),
                ("bob", 2000.0),
                ("alice", 1000.0),
                ("carol", 4000.0),
            ]
            .iter()
            .map(|(c, w)| gov.admit(c, *w, 0).unwrap().0)
            .collect();
            gov.release(ids[1]);
            ids.iter().map(|&id| gov.ratio(id)).collect::<Vec<f64>>()
        };
        // Bit-for-bit equal, not merely close: the same admissions and
        // releases must reproduce the same f64s (invariant 3).
        assert_eq!(build(), build());
    }

    #[test]
    fn admission_rejects_on_overload_and_backlog() {
        let mut cfg = GovernorConfig::new(1000.0);
        cfg.reject_overload = 2.0;
        cfg.max_backlog = 8;
        let gov = Governor::new(cfg, 64);
        gov.admit("a", 1500.0, 0).unwrap();
        // 1500 + 1000 > 2 × 1000: over the overload ceiling.
        let err = gov.admit("b", 1000.0, 0).unwrap_err();
        assert!(err.contains("bandwidth budget"), "{err}");
        // Within the ceiling it still admits (degraded).
        let (_, ratio) = gov.admit("b", 400.0, 0).unwrap();
        assert!(ratio < 1.0);
        // Backlog past the cap refuses even tiny sessions.
        let err = gov.admit("c", 1.0, 9).unwrap_err();
        assert!(err.contains("compute budget"), "{err}");
        assert!(gov.check_backlog(8).is_ok());
    }

    #[test]
    fn ladder_walk_degrades_and_floors() {
        let requested = RatePoint::try_new(3).unwrap();
        // Full grant: no walk.
        assert_eq!(granted_position(&requested, 1.0, 0), 3);
        // step_ratio 1.25: a 0.7 grant costs ceil(ln(1/0.7)/ln(1.25)) =
        // 2 rungs; 0.4 costs 5 but the 4-rung ladder bottoms out at 0.
        assert_eq!(granted_position(&requested, 0.7, 0), 1);
        assert_eq!(granted_position(&requested, 0.4, 0), 0);
        // The floor holds the walk up…
        assert_eq!(granted_position(&requested, 0.4, 2), 2);
        // …unless the request already sits below it.
        let low = RatePoint::try_new(1).unwrap();
        assert_eq!(granted_position(&low, 1.0, 3), 1);
    }

    #[test]
    fn steps_for_ratio_matches_the_step_ratio_prior() {
        // QP ladder: one step per 2^(1/6) bits multiplier.
        assert_eq!(<u8 as RateParam>::steps_for_ratio(1.0), 0);
        assert_eq!(<u8 as RateParam>::steps_for_ratio(0.5), 6);
        assert_eq!(<u8 as RateParam>::steps_for_ratio(0.25), 12);
        // Degenerate ratios collapse to the ladder bottom, not a panic.
        assert_eq!(
            <u8 as RateParam>::steps_for_ratio(0.0),
            <u8 as RateParam>::ladder_len() - 1
        );
        assert_eq!(
            <u8 as RateParam>::steps_for_ratio(-1.0),
            <u8 as RateParam>::ladder_len() - 1
        );
        assert_eq!(<u8 as RateParam>::steps_for_ratio(2.0), 0);
    }
}
