//! Broadcast relay state: named broadcasts, GOP-aligned segment caching
//! and per-subscriber bounded rings.
//!
//! One *publisher* session encodes a stream once and [`publish`]es every
//! coded packet; any number of *subscribers* attach by name and receive
//! the same packet bytes (`Arc`-shared, never copied per subscriber)
//! through their own bounded ring. The design has two invariants:
//!
//! * **The publisher never blocks on a subscriber.** A ring that fills
//!   up means its subscriber is not draining; the ring is atomically
//!   switched to an evicted state and dropped from the fan-out list.
//!   The slow subscriber gets a clean error, everyone else is
//!   unaffected.
//! * **Every subscriber starts at an intra boundary.** The broadcast
//!   caches the current GOP-aligned segment (all packets since the last
//!   intra, which — in joinable-stream mode — carries a full stream
//!   header). Attaching atomically snapshots that segment as backlog
//!   and hooks the ring into the live fan-out, so the subscriber sees a
//!   gapless, decodable packet sequence from the most recent intra on.
//!
//! Lock order: a broadcast's state lock may be held while taking ring
//! locks, never the reverse.
//!
//! [`publish`]: Broadcast::publish

use crate::poll::PollWaker;
use crate::proto::Family;
use crate::sync::LockExt;
use nvc_entropy::container::FrameKind;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Ring fan-out metrics, on the process-global registry (rings are
/// created deep inside the publisher path, far from the server's
/// [`Counters`](crate::server)).
struct RingMetrics {
    /// Queue depth observed after each delivered push: how close the
    /// fan-out runs to the eviction cliff.
    occupancy: nvc_telemetry::Histogram,
    /// Packets subscribers drained from their rings.
    drained: nvc_telemetry::Counter,
    /// Full-ring evictions at push time.
    overflows: nvc_telemetry::Counter,
}

fn ring_metrics() -> &'static RingMetrics {
    static METRICS: OnceLock<RingMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = nvc_telemetry::Registry::global();
        RingMetrics {
            occupancy: registry.histogram("nvc_ring_occupancy"),
            drained: registry.counter("nvc_ring_drained_total"),
            overflows: registry.counter("nvc_ring_overflow_total"),
        }
    })
}

/// One coded packet as cached for fan-out: the serialized wire bytes
/// (shared by every subscriber) plus the metadata subscribers account
/// stats with, so they never re-parse the container.
#[derive(Debug)]
pub(crate) struct CachedPacket {
    /// The full serialized packet (`Packet::to_bytes`), written to each
    /// subscriber verbatim — byte identity across subscribers is by
    /// construction.
    pub bytes: Vec<u8>,
    /// The packet's payload length (stats: `bytes_per_frame`).
    pub payload_len: usize,
    /// Frame index of the coded frame.
    pub frame_index: u32,
    /// Intra or predicted.
    pub kind: FrameKind,
    /// Rate parameter the frame was coded at.
    pub rate: u8,
}

/// Result of pushing one packet into a subscriber ring.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RingPush {
    /// Queued for the subscriber.
    Delivered,
    /// The ring was full: the subscriber is lagging and has now been
    /// evicted. The caller drops the ring from its fan-out list.
    Overflow,
    /// The subscriber is already gone (evicted, closed or detached).
    Detached,
}

/// Result of popping from a subscriber ring.
#[derive(Debug)]
pub(crate) enum RingPop {
    /// One packet, in publish order.
    Packet(Arc<CachedPacket>),
    /// Nothing arrived within the timeout; poll again.
    Empty,
    /// This subscriber was evicted for lagging (the reason is the error
    /// message to send). Terminal.
    Evicted(String),
    /// The publisher finished cleanly and every queued packet has been
    /// drained. Terminal.
    Closed,
    /// The publisher failed; queued packets have been drained first.
    /// Terminal.
    Failed(String),
}

#[derive(Debug, Default)]
struct RingState {
    queue: VecDeque<Arc<CachedPacket>>,
    evicted: Option<String>,
    closed: bool,
    failed: Option<String>,
    detached: bool,
}

/// A bounded SPSC ring between the publisher's fan-out and one
/// subscriber connection on the poller.
#[derive(Debug)]
pub(crate) struct SubscriberRing {
    cap: usize,
    ring: Mutex<RingState>,
    avail: Condvar,
    /// Wakes the poller thread that drains this ring, set when the
    /// subscriber connection is registered. The condvar stays for
    /// in-process consumers (tests) that block on `pop`.
    ring_notify: Mutex<Option<PollWaker>>,
}

impl SubscriberRing {
    fn new(cap: usize) -> Self {
        SubscriberRing {
            cap: cap.max(1),
            ring: Mutex::new(RingState::default()),
            avail: Condvar::new(),
            ring_notify: Mutex::new(None),
        }
    }

    /// Hooks the ring to a poller connection: every state change
    /// (packet, overflow, close, fail) additionally wakes the poller.
    pub(crate) fn set_notify(&self, waker: PollWaker) {
        *self.ring_notify.lock_clean() = Some(waker);
    }

    fn wake_poller(&self) {
        if let Some(waker) = self.ring_notify.lock_clean().as_ref() {
            waker.wake();
        }
    }

    fn push(&self, packet: Arc<CachedPacket>, lag_reason: impl FnOnce() -> String) -> RingPush {
        let mut state = self.ring.lock_clean();
        if state.detached || state.evicted.is_some() || state.closed || state.failed.is_some() {
            return RingPush::Detached;
        }
        if state.queue.len() >= self.cap {
            // Evict rather than block: queued packets are useless to a
            // reader this far behind, so reclaim their memory now.
            state.queue.clear();
            state.evicted = Some(lag_reason());
            drop(state);
            ring_metrics().overflows.inc();
            self.avail.notify_all();
            self.wake_poller();
            return RingPush::Overflow;
        }
        state.queue.push_back(packet);
        ring_metrics().occupancy.record(state.queue.len() as u64);
        drop(state);
        self.avail.notify_all();
        self.wake_poller();
        RingPush::Delivered
    }

    /// Pops the next packet, waiting up to `timeout`. Queued packets
    /// drain before any terminal state is reported (except eviction,
    /// which already cleared the queue).
    pub(crate) fn pop(&self, timeout: Duration) -> RingPop {
        let deadline = Instant::now() + timeout;
        let mut state = self.ring.lock_clean();
        loop {
            if let Some(packet) = state.queue.pop_front() {
                ring_metrics().drained.inc();
                return RingPop::Packet(packet);
            }
            if let Some(reason) = &state.evicted {
                return RingPop::Evicted(reason.clone());
            }
            if let Some(reason) = &state.failed {
                return RingPop::Failed(reason.clone());
            }
            if state.closed {
                return RingPop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return RingPop::Empty;
            }
            let (guard, _) = self
                .avail
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Marks the subscriber as gone (its socket died); the publisher
    /// quietly drops the ring at the next publish.
    pub(crate) fn detach(&self) {
        let mut state = self.ring.lock_clean();
        state.detached = true;
        state.queue.clear();
    }

    fn close(&self) {
        self.ring.lock_clean().closed = true;
        self.avail.notify_all();
        self.wake_poller();
    }

    fn fail(&self, reason: &str) {
        let mut state = self.ring.lock_clean();
        if state.failed.is_none() {
            state.failed = Some(reason.to_string());
        }
        drop(state);
        self.avail.notify_all();
        self.wake_poller();
    }
}

/// Immutable facts about a broadcast, fixed by the publisher handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BroadcastInfo {
    pub family: Family,
    pub width: usize,
    pub height: usize,
    /// The relay's GOP length in frames (join points are this far
    /// apart).
    pub gop: u16,
}

enum Done {
    Finished,
    Failed(String),
}

struct BroadcastState {
    /// The current GOP-aligned segment: every packet since (and
    /// including) the most recent intra. Replayed to late joiners.
    segment: Vec<Arc<CachedPacket>>,
    /// Live subscriber rings; evicted/detached rings are dropped on the
    /// next publish.
    rings: Vec<Arc<SubscriberRing>>,
    /// Frame index the next published packet will carry.
    next_frame_index: u32,
    /// Rate parameter of the most recently published packet (echoed to
    /// joining subscribers in the ack).
    current_rate: u8,
    published: u64,
    done: Option<Done>,
}

/// What a subscriber gets from [`Broadcast::attach`]: its ring, hooked
/// into the live fan-out, plus the backlog to replay first. `backlog`
/// and the ring are cut atomically, so replaying the backlog and then
/// draining the ring yields a gapless intra-first packet sequence.
#[derive(Debug)]
pub(crate) struct Attachment {
    pub ring: Arc<SubscriberRing>,
    pub backlog: Vec<Arc<CachedPacket>>,
    /// Frame index of the first packet this subscriber will see.
    pub start_index: u32,
    /// Rate the broadcast is currently coded at.
    pub rate: u8,
}

/// One named broadcast: the publisher's segment cache and the
/// subscriber fan-out list.
pub(crate) struct Broadcast {
    info: BroadcastInfo,
    broadcast: Mutex<BroadcastState>,
}

impl Broadcast {
    fn new(info: BroadcastInfo, rate: u8) -> Self {
        Broadcast {
            info,
            broadcast: Mutex::new(BroadcastState {
                segment: Vec::new(),
                rings: Vec::new(),
                next_frame_index: 0,
                current_rate: rate,
                published: 0,
                done: None,
            }),
        }
    }

    pub(crate) fn info(&self) -> BroadcastInfo {
        self.info
    }

    /// Publishes one packet: caches it in the GOP segment (opening a new
    /// segment on intra) and fans it out to every live ring. Returns how
    /// many lagging subscribers were evicted by this publish.
    pub(crate) fn publish(&self, packet: CachedPacket) -> usize {
        let packet = Arc::new(packet);
        let mut state = self.broadcast.lock_clean();
        if packet.kind == FrameKind::Intra {
            state.segment.clear();
        }
        state.segment.push(Arc::clone(&packet));
        state.next_frame_index = packet.frame_index + 1;
        state.current_rate = packet.rate;
        state.published += 1;
        let mut evicted = 0;
        let index = packet.frame_index;
        state.rings.retain(|ring| {
            match ring.push(Arc::clone(&packet), || {
                format!("evicted: subscriber lagging behind the broadcast at frame {index}")
            }) {
                RingPush::Delivered => true,
                RingPush::Overflow => {
                    evicted += 1;
                    false
                }
                RingPush::Detached => false,
            }
        });
        evicted
    }

    /// Attaches a new subscriber: snapshots the current segment as
    /// backlog and adds a fresh ring to the fan-out, atomically.
    ///
    /// # Errors
    ///
    /// Returns the failure message to send when the broadcast has
    /// already ended.
    pub(crate) fn attach(&self, ring_cap: usize) -> Result<Attachment, String> {
        let mut state = self.broadcast.lock_clean();
        match &state.done {
            Some(Done::Finished) => return Err("broadcast has ended".into()),
            Some(Done::Failed(reason)) => return Err(format!("broadcast failed: {reason}")),
            None => {}
        }
        let ring = Arc::new(SubscriberRing::new(ring_cap));
        state.rings.push(Arc::clone(&ring));
        let backlog = state.segment.clone();
        let start_index = backlog
            .first()
            .map_or(state.next_frame_index, |p| p.frame_index);
        Ok(Attachment {
            ring,
            backlog,
            start_index,
            rate: state.current_rate,
        })
    }

    /// Subscribers currently attached (evicted rings linger until the
    /// next publish drops them).
    #[cfg(test)]
    pub(crate) fn subscriber_count(&self) -> usize {
        self.broadcast.lock_clean().rings.len()
    }

    fn end(&self, done: Done) {
        let mut state = self.broadcast.lock_clean();
        for ring in state.rings.drain(..) {
            match &done {
                Done::Finished => ring.close(),
                Done::Failed(reason) => ring.fail(reason),
            }
        }
        state.segment.clear();
        state.done = Some(done);
    }
}

/// The server's name → broadcast map. Cheap to clone (shared state);
/// publishers hold a [`PublisherGuard`] that removes their entry — and
/// fails their subscribers — however the publishing connection ends.
#[derive(Clone, Default)]
pub(crate) struct BroadcastRegistry {
    registry: Arc<Mutex<HashMap<String, Arc<Broadcast>>>>,
}

impl BroadcastRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Creates a broadcast under `name`.
    ///
    /// # Errors
    ///
    /// Returns the failure message to send when the name is taken.
    pub(crate) fn create(
        &self,
        name: &str,
        info: BroadcastInfo,
        rate: u8,
    ) -> Result<PublisherGuard, String> {
        let mut map = self.registry.lock_clean();
        if map.contains_key(name) {
            return Err(format!("broadcast name {name:?} already in use"));
        }
        let broadcast = Arc::new(Broadcast::new(info, rate));
        map.insert(name.to_string(), Arc::clone(&broadcast));
        Ok(PublisherGuard {
            registry: self.clone(),
            name: name.to_string(),
            broadcast,
            done: false,
        })
    }

    pub(crate) fn get(&self, name: &str) -> Option<Arc<Broadcast>> {
        self.registry.lock_clean().get(name).cloned()
    }

    /// Fails every live broadcast (server shutdown): wakes and ends all
    /// subscriber rings so their writer threads exit promptly instead of
    /// sleeping out a ring wait.
    pub(crate) fn fail_all(&self, reason: &str) {
        let broadcasts: Vec<Arc<Broadcast>> = {
            let mut map = self.registry.lock_clean();
            map.drain().map(|(_, b)| b).collect()
        };
        for broadcast in broadcasts {
            broadcast.end(Done::Failed(reason.to_string()));
        }
    }

    fn remove(&self, name: &str, broadcast: &Arc<Broadcast>) {
        let mut map = self.registry.lock_clean();
        // Only remove our own entry — the name may have been re-created
        // by a newer publisher after this one ended.
        if map.get(name).is_some_and(|b| Arc::ptr_eq(b, broadcast)) {
            map.remove(name);
        }
    }
}

/// Ties a broadcast's lifetime to its publishing connection: ending the
/// stream closes every subscriber ring and frees the name. Dropping the
/// guard without an explicit outcome means the publisher's connection
/// died, which fails the subscribers rather than leaving them waiting.
pub(crate) struct PublisherGuard {
    registry: BroadcastRegistry,
    name: String,
    broadcast: Arc<Broadcast>,
    done: bool,
}

impl PublisherGuard {
    pub(crate) fn broadcast(&self) -> &Broadcast {
        &self.broadcast
    }

    /// Clean end of stream: subscribers drain and get their trailer.
    pub(crate) fn finish(&mut self) {
        self.done = true;
        self.broadcast.end(Done::Finished);
        self.registry.remove(&self.name, &self.broadcast);
    }

    /// Publisher-side failure: subscribers get the reason as an error.
    pub(crate) fn fail(&mut self, reason: &str) {
        self.done = true;
        self.broadcast.end(Done::Failed(reason.to_string()));
        self.registry.remove(&self.name, &self.broadcast);
    }
}

impl Drop for PublisherGuard {
    fn drop(&mut self) {
        if !self.done {
            self.fail("publisher connection lost");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(frame_index: u32, kind: FrameKind) -> CachedPacket {
        CachedPacket {
            bytes: vec![frame_index as u8; 8],
            payload_len: 4,
            frame_index,
            kind,
            rate: 1,
        }
    }

    fn info() -> BroadcastInfo {
        BroadcastInfo {
            family: Family::Ctvc,
            width: 32,
            height: 32,
            gop: 4,
        }
    }

    #[test]
    fn late_joiner_gets_backlog_from_most_recent_intra() {
        let registry = BroadcastRegistry::new();
        let mut guard = registry.create("game", info(), 1).unwrap();
        let b = registry.get("game").unwrap();
        b.publish(packet(0, FrameKind::Intra));
        b.publish(packet(1, FrameKind::Predicted));
        b.publish(packet(2, FrameKind::Intra));
        b.publish(packet(3, FrameKind::Predicted));
        let att = b.attach(8).unwrap();
        assert_eq!(att.start_index, 2, "backlog starts at the last intra");
        let indices: Vec<u32> = att.backlog.iter().map(|p| p.frame_index).collect();
        assert_eq!(indices, vec![2, 3]);
        // Live packets continue seamlessly after the backlog.
        b.publish(packet(4, FrameKind::Predicted));
        match att.ring.pop(Duration::ZERO) {
            RingPop::Packet(p) => assert_eq!(p.frame_index, 4),
            other => panic!("expected live packet, got {other:?}"),
        }
        guard.finish();
        assert!(matches!(att.ring.pop(Duration::ZERO), RingPop::Closed));
        assert!(registry.get("game").is_none(), "finish frees the name");
    }

    #[test]
    fn overflowing_ring_evicts_without_touching_others() {
        let registry = BroadcastRegistry::new();
        let guard = registry.create("game", info(), 1).unwrap();
        let b = guard.broadcast();
        b.publish(packet(0, FrameKind::Intra));
        let slow = b.attach(2).unwrap();
        let fast = b.attach(64).unwrap();
        assert_eq!(b.subscriber_count(), 2);
        // The slow ring holds 2; the third push overflows and evicts.
        let mut evicted = 0;
        for i in 1..=3 {
            evicted += b.publish(packet(i, FrameKind::Predicted));
        }
        assert_eq!(evicted, 1);
        assert_eq!(b.subscriber_count(), 1, "evicted ring left the fan-out");
        match slow.ring.pop(Duration::ZERO) {
            RingPop::Evicted(reason) => assert!(reason.contains("lagging"), "{reason}"),
            other => panic!("expected eviction, got {other:?}"),
        }
        // The fast subscriber still sees every packet, in order.
        for want in 1..=3 {
            match fast.ring.pop(Duration::ZERO) {
                RingPop::Packet(p) => assert_eq!(p.frame_index, want),
                other => panic!("expected packet {want}, got {other:?}"),
            }
        }
    }

    #[test]
    fn queued_packets_drain_before_close_and_after_fail() {
        let registry = BroadcastRegistry::new();
        let mut guard = registry.create("a", info(), 1).unwrap();
        let att = guard.broadcast().attach(8).unwrap();
        guard.broadcast().publish(packet(0, FrameKind::Intra));
        guard.fail("publisher connection lost");
        match att.ring.pop(Duration::ZERO) {
            RingPop::Packet(p) => assert_eq!(p.frame_index, 0),
            other => panic!("queued packet must drain first, got {other:?}"),
        }
        assert!(matches!(att.ring.pop(Duration::ZERO), RingPop::Failed(_)));
        // Terminal states are sticky.
        assert!(matches!(att.ring.pop(Duration::ZERO), RingPop::Failed(_)));
    }

    #[test]
    fn names_are_exclusive_until_released() {
        let registry = BroadcastRegistry::new();
        let guard = registry.create("game", info(), 1).unwrap();
        assert!(registry.create("game", info(), 1).is_err());
        drop(guard); // connection died → name freed, broadcast failed
        assert!(registry.get("game").is_none());
        let _guard = registry.create("game", info(), 1).unwrap();
    }

    #[test]
    fn attach_after_end_reports_the_outcome() {
        let registry = BroadcastRegistry::new();
        let mut guard = registry.create("a", info(), 1).unwrap();
        let b = Arc::clone(&guard.broadcast);
        guard.finish();
        assert!(b.attach(8).unwrap_err().contains("ended"));
        let mut guard = registry.create("b", info(), 1).unwrap();
        let b = Arc::clone(&guard.broadcast);
        guard.fail("boom");
        assert!(b.attach(8).unwrap_err().contains("boom"));
    }

    #[test]
    fn detached_rings_are_dropped_silently() {
        let registry = BroadcastRegistry::new();
        let guard = registry.create("game", info(), 1).unwrap();
        let att = guard.broadcast().attach(4).unwrap();
        att.ring.detach();
        let evicted = guard.broadcast().publish(packet(0, FrameKind::Intra));
        assert_eq!(evicted, 0, "a detached ring is not an eviction");
        assert_eq!(guard.broadcast().subscriber_count(), 0);
    }
}
