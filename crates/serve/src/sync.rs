//! Poison-tolerant locking for the serving core.
//!
//! A poisoned mutex means some thread panicked while holding it. The
//! serving core's locks guard state that stays structurally valid at
//! every await-free point (counters, queues, registries — each critical
//! section leaves them consistent), so the right response is to keep
//! serving with the data as-is, not to cascade the panic into every
//! thread that touches the lock afterwards.

use std::sync::{Mutex, MutexGuard};

pub(crate) trait LockExt<T> {
    /// Locks, recovering the guard from a poisoned mutex instead of
    /// panicking.
    fn lock_clean(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_clean(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}
