//! The serving side: acceptor, per-connection reader threads, and a
//! session pool scheduling GOP-grain batches onto shared compute.
//!
//! # Threading model
//!
//! ```text
//! acceptor ──┬── reader(conn 1) ──► slot 1 queue ─┐   ready    ┌─ worker 1
//!            ├── reader(conn 2) ──► slot 2 queue ─┼──►queue ──►┼─ worker 2
//!            └── reader(conn K) ──► slot K queue ─┘            └─ worker W
//! ```
//!
//! * Each **reader** parses and CRC-validates messages off its socket
//!   ([`Packet::read_from`] — the stream is never buffered whole) into
//!   the connection's bounded queue. A full queue blocks the reader,
//!   which stops reading the socket, which backpressures the client
//!   through TCP.
//! * Each **worker** pops a ready session and runs one *GOP-grain batch*
//!   of its queued jobs: up to [`ServeConfig::gop_batch`] frames,
//!   cutting before the next intra packet so a scheduling quantum never
//!   straddles a GOP boundary. One session is never on two workers at
//!   once (frames of a stream are strictly ordered); different sessions
//!   overlap freely — packet *N + 1* of stream A parses and validates
//!   while packet *N* of stream B reconstructs.
//! * Every batch holds an [`ExecPool`] lease for the session's context
//!   width while it computes, so total fan-out across all sessions stays
//!   under [`ServeConfig::exec_cap`] regardless of the connection count.

use crate::broadcast::{BroadcastInfo, BroadcastRegistry, CachedPacket, PublisherGuard};
use crate::governor::{granted_position, GovAdmit, GovWant, Governed, Governor, GovernorConfig};
use crate::proto::{
    read_frame_body, read_retarget_body, read_u8, write_ack_msg, write_error_msg, write_frame_msg,
    write_join_msg, write_packet_msg, write_stats_msg, Ack, Family, Hello, JoinInfo, Retarget,
    Role, TargetBppWire, MSG_END, MSG_FRAME, MSG_PACKET, MSG_RETARGET,
};
use crate::subscribe::serve_subscriber;
use nvc_baseline::{HybridCodec, Profile};
use nvc_core::ExecPool;
use nvc_entropy::container::{FrameKind, Packet};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::codec::{DecoderSession, EncoderSession, StreamStats};
use nvc_video::rate::{RateMode, RateParam};
use nvc_video::Frame;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval for stop-flag checks in blocking reads and accepts.
const POLL: Duration = Duration::from_millis(25);

/// Write timeout on server-side sockets, so a vanished client can never
/// wedge a pool worker mid-response.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long an error-terminated connection drains unread peer data
/// before hard-closing (see `hangup`).
const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Configuration of the served CTVC-Net codec ([`Family::Ctvc`]
    /// streams). Its `threads` field is overridden by
    /// [`ServeConfig::threads_per_session`].
    pub ctvc: CtvcConfig,
    /// Profile of the served hybrid baseline ([`Family::Hybrid`]).
    pub hybrid: Profile,
    /// Pool workers — the number of sessions computing concurrently
    /// (`0` = all available hardware parallelism).
    pub workers: usize,
    /// `ExecCtx` width per session (layer-level fan-out inside one
    /// frame). Serving throughput favors many narrow sessions over few
    /// wide ones, so the default is 1.
    pub threads_per_session: usize,
    /// Total compute-thread permits shared by all sessions (`0` = all
    /// available hardware parallelism). See [`ExecPool`].
    pub exec_cap: usize,
    /// Per-session pending-job bound; a full queue blocks the
    /// connection's reader (backpressure).
    pub queue_depth: usize,
    /// Maximum jobs one scheduling quantum may run before the session
    /// goes back to the ready queue (quanta also cut at GOP boundaries).
    pub gop_batch: usize,
    /// Maximum concurrent sessions; further connections are rejected
    /// with an error message.
    pub max_sessions: usize,
    /// Relay GOP length for publish streams that do not request one in
    /// the handshake: the publisher session forces an intra refresh
    /// every this many frames, bounding how far a late joiner's start
    /// point can lie in the past.
    pub broadcast_gop: usize,
    /// Per-subscriber ring capacity in packets. A subscriber falling
    /// this far behind the publisher is evicted rather than ever
    /// backpressuring the broadcast.
    pub subscriber_ring: usize,
    /// Maximum concurrent subscribers across all broadcasts. Counted
    /// separately from [`ServeConfig::max_sessions`] — subscribers hold
    /// no codec session and no worker-pool slot, so thousands are fine.
    pub max_subscribers: usize,
    /// Permits for subscriber fan-out write work (`0` = all available
    /// hardware parallelism). A soft cap on the CPU side of fan-out;
    /// socket waits never hold a permit. See [`ExecPool`].
    pub fanout_cap: usize,
    /// Time a fresh connection gets to deliver its `Hello`: a peer that
    /// completes TCP accept but stays silent is closed with `'X'` (and
    /// counted under [`ServeReport::rejected`]) instead of pinning a
    /// reader thread forever.
    pub handshake_timeout: Duration,
    /// Cross-session rate governor. `None` (the default) serves every
    /// session at its requested rate with `max_sessions` as the only
    /// admission gate — the exact pre-governor behavior. `Some` splits
    /// the configured budget across all live encode/publish sessions
    /// and turns admission into the three-step
    /// admit / admit-degraded / reject response. See [`GovernorConfig`].
    pub governor: Option<GovernorConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ctvc: CtvcConfig::ctvc_fp(12),
            hybrid: Profile::hevc_like(),
            workers: 0,
            threads_per_session: 1,
            exec_cap: 0,
            queue_depth: 4,
            gop_batch: 8,
            max_sessions: 64,
            broadcast_gop: 8,
            subscriber_ring: 64,
            max_subscribers: 4096,
            fanout_cap: 0,
            handshake_timeout: Duration::from_secs(10),
            governor: None,
        }
    }
}

/// Lifetime counters reported by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Sessions that completed the handshake.
    pub sessions: usize,
    /// Connections rejected (failed handshake or over capacity).
    pub rejected: usize,
    /// Frames processed across all sessions (encoded + decoded).
    pub frames: u64,
    /// Sessions that ended in an error (protocol or codec failure).
    pub errors: u64,
    /// Subscribers that completed a broadcast attach.
    pub subscribers: usize,
    /// Subscribers evicted for lagging behind their broadcast.
    pub evicted: u64,
    /// Governor degradations: how many times a session went from its
    /// full requested rate to a reduced grant (degraded admissions
    /// count on the session's first frame).
    pub degraded: u64,
    /// Total downward rate-grant updates the governor applied — ladder
    /// rungs for fixed-rate sessions, one per shrink for closed-loop
    /// targets. A measure of how hard the degradation curve worked.
    pub throttle_steps: u64,
    /// Governor restorations: sessions walked back up to their full
    /// requested rate as load drained.
    pub restored: u64,
}

#[derive(Default)]
pub(crate) struct Counters {
    sessions: AtomicUsize,
    rejected: AtomicUsize,
    active: AtomicUsize,
    frames: AtomicU64,
    errors: AtomicU64,
    subscribers: AtomicUsize,
    active_subscribers: AtomicUsize,
    evicted: AtomicU64,
    degraded: AtomicU64,
    throttle_steps: AtomicU64,
    restored: AtomicU64,
}

impl Counters {
    fn report(&self) -> ServeReport {
        ServeReport {
            sessions: self.sessions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            subscribers: self.subscribers.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            throttle_steps: self.throttle_steps.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_restored(&self) {
        self.restored.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_throttle(&self, steps: u64) {
        self.throttle_steps.fetch_add(steps, Ordering::Relaxed);
    }
}

/// The `nvc-serve` TCP server. See [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds `addr` and starts serving on a background thread. The
    /// returned handle exposes the bound address (bind to port 0 for an
    /// ephemeral one) and shuts the server down when dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound or the served
    /// codec configuration is invalid.
    pub fn spawn(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = cfg.threads_per_session.max(1);
        let ctvc = CtvcCodec::new(cfg.ctvc.clone().with_threads(threads))
            .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let hybrid = HybridCodec::with_threads(cfg.hybrid.clone(), threads);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let (stop2, counters2) = (Arc::clone(&stop), Arc::clone(&counters));
        let join = std::thread::Builder::new()
            .name("nvc-serve".into())
            .spawn(move || run(listener, cfg, ctvc, hybrid, &stop2, &counters2))?;
        Ok(ServerHandle {
            addr,
            stop,
            counters,
            join: Some(join),
        })
    }
}

/// Handle to a running [`Server`]; shuts it down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn report(&self) -> ServeReport {
        self.counters.report()
    }

    /// Stops accepting, drains worker threads and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_and_join();
        self.counters.report()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------
// Scheduling structures
// ---------------------------------------------------------------------

/// One unit of session work, produced by a reader, consumed by a worker.
enum Job {
    /// A parsed, CRC-validated coded packet (decode sessions).
    Packet(Packet),
    /// A raw frame (encode sessions).
    Frame(Frame),
    /// A mid-stream rate retarget (encode sessions): applies in stream
    /// order between the frames around it.
    Retarget(Retarget),
    /// Clean end of stream: finalize, send the stats trailer.
    End,
    /// Reader-detected failure: report to the peer and close.
    Abort(String),
}

impl Job {
    fn is_control(&self) -> bool {
        matches!(self, Job::End | Job::Abort(_))
    }
}

#[derive(Default)]
struct SlotState {
    pending: VecDeque<Job>,
    /// In the ready queue or on a worker. Guarantees one-worker-at-a-time
    /// (stream order) and at most one ready-queue entry per slot.
    scheduled: bool,
    dead: bool,
}

/// Per-connection session state shared between its reader and the pool.
struct Slot<'env> {
    state: Mutex<SlotState>,
    /// Signalled when a worker drains jobs (readers wait here when the
    /// queue is full) and when the slot dies.
    space: Condvar,
    runner: Mutex<Box<dyn SessionRunner + Send + 'env>>,
}

struct Scheduler<'env> {
    ready: Mutex<VecDeque<Arc<Slot<'env>>>>,
    work: Condvar,
    queue_depth: usize,
    gop_batch: usize,
    /// Jobs sitting in slot queues, not yet taken by a worker — the
    /// governor's queue-length signal for compute-aware admission.
    backlog: AtomicUsize,
}

impl<'env> Scheduler<'env> {
    fn new(queue_depth: usize, gop_batch: usize) -> Self {
        Scheduler {
            ready: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            queue_depth: queue_depth.max(1),
            gop_batch: gop_batch.max(1),
            backlog: AtomicUsize::new(0),
        }
    }

    fn backlog(&self) -> usize {
        self.backlog.load(Ordering::Relaxed)
    }

    /// Queues one job for a session, blocking while the queue is full
    /// (control jobs bypass the bound so a stream can always terminate).
    /// Returns `false` if the session is already dead or the server is
    /// stopping.
    fn enqueue(&self, slot: &Arc<Slot<'env>>, job: Job, stop: &AtomicBool) -> bool {
        let mut state = slot.state.lock().expect("slot lock");
        while !job.is_control() && state.pending.len() >= self.queue_depth {
            if state.dead || stop.load(Ordering::Relaxed) {
                return false;
            }
            let (guard, _) = slot.space.wait_timeout(state, POLL).expect("slot lock");
            state = guard;
        }
        if state.dead || stop.load(Ordering::Relaxed) {
            return false;
        }
        state.pending.push_back(job);
        self.backlog.fetch_add(1, Ordering::Relaxed);
        let newly_ready = !state.scheduled;
        state.scheduled = true;
        drop(state);
        if newly_ready {
            self.ready
                .lock()
                .expect("ready lock")
                .push_back(Arc::clone(slot));
            self.work.notify_one();
        }
        true
    }

    /// Blocks for the next ready session; `None` once the server stops.
    fn next_ready(&self, stop: &AtomicBool) -> Option<Arc<Slot<'env>>> {
        let mut ready = self.ready.lock().expect("ready lock");
        loop {
            if let Some(slot) = ready.pop_front() {
                return Some(slot);
            }
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _) = self.work.wait_timeout(ready, POLL).expect("ready lock");
            ready = guard;
        }
    }

    fn requeue(&self, slot: Arc<Slot<'env>>) {
        self.ready.lock().expect("ready lock").push_back(slot);
        self.work.notify_one();
    }

    /// Takes one scheduling quantum off a slot's queue: at most
    /// `gop_batch` jobs, cutting *before* an intra packet so a quantum
    /// never straddles a GOP boundary.
    fn take_batch(&self, state: &mut SlotState) -> Vec<Job> {
        let mut batch = Vec::new();
        while batch.len() < self.gop_batch {
            match state.pending.front() {
                Some(Job::Packet(p)) if !batch.is_empty() && p.kind == FrameKind::Intra => break,
                Some(_) => batch.push(state.pending.pop_front().expect("non-empty front")),
                None => break,
            }
        }
        self.backlog.fetch_sub(batch.len(), Ordering::Relaxed);
        batch
    }
}

fn worker_loop<'env>(
    sched: &Scheduler<'env>,
    exec: &ExecPool,
    threads_per_session: usize,
    stop: &AtomicBool,
    counters: &Counters,
) {
    while let Some(slot) = sched.next_ready(stop) {
        let batch = {
            let mut state = slot.state.lock().expect("slot lock");
            sched.take_batch(&mut state)
        };
        slot.space.notify_all();
        let mut finished = false;
        if !batch.is_empty() {
            // The lease (not the session's own context) is what caps the
            // machine-wide fan-out: the runner's session computes on a
            // context of exactly this width, so permits model threads.
            let _lease = exec.lease(threads_per_session);
            let mut runner = slot.runner.lock().expect("runner lock");
            for job in batch {
                let data = matches!(job, Job::Packet(_) | Job::Frame(_));
                match runner.step(job) {
                    StepOutcome::Continue => {
                        if data {
                            counters.frames.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    StepOutcome::Finished => {
                        if data {
                            counters.frames.fetch_add(1, Ordering::Relaxed);
                        }
                        finished = true;
                        break;
                    }
                    StepOutcome::Failed => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        finished = true;
                        break;
                    }
                }
            }
        }
        let mut state = slot.state.lock().expect("slot lock");
        if finished {
            state.dead = true;
            sched
                .backlog
                .fetch_sub(state.pending.len(), Ordering::Relaxed);
            state.pending.clear();
            state.scheduled = false;
            drop(state);
            slot.space.notify_all();
            counters.active.fetch_sub(1, Ordering::Relaxed);
        } else if state.pending.is_empty() {
            state.scheduled = false;
        } else {
            drop(state);
            sched.requeue(slot);
        }
    }
}

// ---------------------------------------------------------------------
// Session runners
// ---------------------------------------------------------------------

enum StepOutcome {
    Continue,
    Finished,
    Failed,
}

/// One live session: consumes jobs in stream order, writes responses to
/// its own connection. A runner is only ever driven by one worker at a
/// time (see [`SlotState::scheduled`]).
trait SessionRunner {
    fn step(&mut self, job: Job) -> StepOutcome;
}

pub(crate) fn hangup(out: &mut BufWriter<TcpStream>, message: Option<&str>) {
    if let Some(message) = message {
        let _ = write_error_msg(out, message);
        let _ = out.flush();
        // Deliver the error reliably: closing while client data is still
        // queued unread would RST the connection, which can destroy the
        // message before the peer reads it. Half-close, then drain and
        // discard whatever the peer already sent (bounded by a deadline;
        // the socket carries a `POLL` read timeout).
        let sock = out.get_ref();
        let _ = sock.shutdown(Shutdown::Write);
        let deadline = std::time::Instant::now() + DRAIN_TIMEOUT;
        let mut discard = [0u8; 4096];
        while std::time::Instant::now() < deadline {
            match (&mut &*sock).read(&mut discard) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(_) => break,
            }
        }
    } else {
        let _ = out.flush();
    }
    let _ = out.get_ref().shutdown(Shutdown::Both);
}

struct DecodeRunner<S> {
    sess: S,
    out: BufWriter<TcpStream>,
    /// Geometry from the handshake; the decoded stream must match it,
    /// so clients can trust the negotiated size end to end.
    negotiated: (usize, usize),
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
}

impl<S: DecoderSession> DecodeRunner<S> {
    fn new(sess: S, negotiated: (usize, usize), version: u8, out: BufWriter<TcpStream>) -> Self {
        DecodeRunner {
            sess,
            out,
            negotiated,
            version,
            bytes_per_frame: Vec::new(),
            bits_per_frame: Vec::new(),
            frame_types: Vec::new(),
            rate_per_frame: Vec::new(),
            total_bytes: 0,
        }
    }
}

impl<S: DecoderSession> SessionRunner for DecodeRunner<S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        match job {
            Job::Packet(packet) => {
                let bytes = packet.to_bytes();
                match self.sess.push_packet(&bytes) {
                    Ok(frame) if (frame.width(), frame.height()) != self.negotiated => {
                        hangup(
                            &mut self.out,
                            Some(&format!(
                                "bitstream is {}x{}, negotiated {}x{}",
                                frame.width(),
                                frame.height(),
                                self.negotiated.0,
                                self.negotiated.1
                            )),
                        );
                        StepOutcome::Failed
                    }
                    Ok(frame) => {
                        self.bytes_per_frame.push(packet.payload.len());
                        self.bits_per_frame.push(bytes.len() as u64 * 8);
                        self.frame_types.push(packet.kind);
                        // The in-band rate governing this frame (stream
                        // header or a per-packet rate switch).
                        self.rate_per_frame.push(self.sess.last_rate().unwrap_or(0));
                        self.total_bytes += bytes.len();
                        let ok = write_frame_msg(&mut self.out, packet.frame_index, &frame)
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            hangup(&mut self.out, None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        hangup(&mut self.out, Some(&format!("decode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Frame(_) => {
                hangup(&mut self.out, Some("raw frame on a decode stream"));
                StepOutcome::Failed
            }
            Job::Retarget(_) => {
                hangup(&mut self.out, Some("rate retarget on a decode stream"));
                StepOutcome::Failed
            }
            Job::End => {
                let stats = StreamStats {
                    frames: self.bytes_per_frame.len(),
                    bytes_per_frame: std::mem::take(&mut self.bytes_per_frame),
                    bits_per_frame: std::mem::take(&mut self.bits_per_frame),
                    frame_types: std::mem::take(&mut self.frame_types),
                    rate_per_frame: std::mem::take(&mut self.rate_per_frame),
                    total_bytes: self.total_bytes,
                };
                let _ = write_stats_msg(&mut self.out, &stats, self.version);
                hangup(&mut self.out, None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                hangup(&mut self.out, Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

struct EncodeRunner<'env, S: EncoderSession> {
    sess: Option<S>,
    out: BufWriter<TcpStream>,
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    /// Governor registration on a governed server: re-derives the
    /// granted rate mode before every frame, in stream order.
    gov: Option<Governed<'env, S::Rate>>,
}

impl<'env, S: EncoderSession> EncodeRunner<'env, S> {
    fn new(
        sess: S,
        version: u8,
        out: BufWriter<TcpStream>,
        gov: Option<Governed<'env, S::Rate>>,
    ) -> Self {
        EncodeRunner {
            sess: Some(sess),
            out,
            version,
            gov,
        }
    }
}

impl<S: EncoderSession> SessionRunner for EncodeRunner<'_, S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        let Some(sess) = self.sess.as_mut() else {
            hangup(&mut self.out, Some("stream already finished"));
            return StepOutcome::Failed;
        };
        match job {
            Job::Frame(frame) => {
                if let Some(gov) = self.gov.as_mut() {
                    if let Some(mode) = gov.refresh() {
                        sess.set_rate_mode(mode);
                    }
                }
                match sess.push_frame(&frame) {
                    Ok(packet) => {
                        let ok = write_packet_msg(&mut self.out, &packet)
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            hangup(&mut self.out, None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        hangup(&mut self.out, Some(&format!("encode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Packet(_) => {
                hangup(&mut self.out, Some("coded packet on an encode stream"));
                StepOutcome::Failed
            }
            Job::Retarget(retarget) => {
                // Same conversion + plausibility bar as the handshake.
                match wire_rate_mode::<S::Rate>(retarget.target, retarget.rate) {
                    Ok(mode) => {
                        sess.set_rate_mode(mode);
                        if retarget.restart_gop {
                            sess.restart_gop();
                        }
                        StepOutcome::Continue
                    }
                    Err(e) => {
                        hangup(&mut self.out, Some(&format!("retarget: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::End => {
                let finished = self.sess.take().expect("session present").finish();
                // Release the governor share *before* the trailer goes
                // out: a client that has read its trailer may rely on
                // the share being back in the pool (determinism tests
                // sequence admissions against observed stream ends).
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                match finished {
                    Ok(stats) => {
                        let _ = write_stats_msg(&mut self.out, &stats, self.version);
                    }
                    Err(e) => {
                        let _ = write_error_msg(&mut self.out, &format!("finish: {e}"));
                    }
                }
                hangup(&mut self.out, None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                hangup(&mut self.out, Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

/// An encode session that is also a broadcast publisher: every coded
/// packet is echoed back to the publishing client *and* published into
/// the broadcast for fan-out. The session runs in joinable-stream mode
/// (every intra carries a full stream header) and forces an intra
/// refresh every `gop` frames, so a late joiner's backlog always begins
/// with a self-describing packet at most one GOP in the past.
struct PublishRunner<'env, S: EncoderSession> {
    sess: Option<S>,
    out: BufWriter<TcpStream>,
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    guard: PublisherGuard,
    /// Relay GOP length: frames since the last intra before a forced
    /// refresh.
    gop: u32,
    since_intra: u32,
    counters: &'env Counters,
    /// Governor registration on a governed server: re-derives the
    /// granted rate mode before every frame, in stream order.
    gov: Option<Governed<'env, S::Rate>>,
}

impl<'env, S: EncoderSession> PublishRunner<'env, S> {
    fn new(
        sess: S,
        version: u8,
        out: BufWriter<TcpStream>,
        guard: PublisherGuard,
        gop: u32,
        counters: &'env Counters,
        gov: Option<Governed<'env, S::Rate>>,
    ) -> Self {
        PublishRunner {
            sess: Some(sess),
            out,
            version,
            guard,
            gop: gop.max(1),
            since_intra: 0,
            counters,
            gov,
        }
    }
}

impl<S: EncoderSession> SessionRunner for PublishRunner<'_, S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        let Some(sess) = self.sess.as_mut() else {
            hangup(&mut self.out, Some("stream already finished"));
            return StepOutcome::Failed;
        };
        match job {
            Job::Frame(frame) => {
                if let Some(gov) = self.gov.as_mut() {
                    if let Some(mode) = gov.refresh() {
                        sess.set_rate_mode(mode);
                    }
                }
                if self.since_intra >= self.gop {
                    sess.restart_gop();
                }
                match sess.push_frame(&frame) {
                    Ok(packet) => {
                        self.since_intra = match packet.kind {
                            FrameKind::Intra => 1,
                            FrameKind::Predicted => self.since_intra + 1,
                        };
                        // Serialize once; subscribers get these exact
                        // bytes (Arc-shared), the publisher an echo of
                        // the same buffer — byte identity across every
                        // receiver is by construction.
                        let bytes = packet.to_bytes();
                        let evicted = self.guard.broadcast().publish(CachedPacket {
                            bytes: bytes.clone(),
                            payload_len: packet.payload.len(),
                            frame_index: packet.frame_index,
                            kind: packet.kind,
                            rate: sess.last_rate().unwrap_or(0),
                        });
                        if evicted > 0 {
                            self.counters
                                .evicted
                                .fetch_add(evicted as u64, Ordering::Relaxed);
                        }
                        let ok = self
                            .out
                            .write_all(&[MSG_PACKET])
                            .and_then(|()| self.out.write_all(&bytes))
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            self.guard.fail("publisher connection lost");
                            hangup(&mut self.out, None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        self.guard.fail(&format!("encode: {e}"));
                        hangup(&mut self.out, Some(&format!("encode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Packet(_) => {
                hangup(&mut self.out, Some("coded packet on a publish stream"));
                StepOutcome::Failed
            }
            Job::Retarget(retarget) => {
                match wire_rate_mode::<S::Rate>(retarget.target, retarget.rate) {
                    Ok(mode) => {
                        sess.set_rate_mode(mode);
                        if retarget.restart_gop {
                            sess.restart_gop();
                        }
                        StepOutcome::Continue
                    }
                    Err(e) => {
                        hangup(&mut self.out, Some(&format!("retarget: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::End => {
                let finished = self.sess.take().expect("session present").finish();
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                match finished {
                    Ok(stats) => {
                        let _ = write_stats_msg(&mut self.out, &stats, self.version);
                    }
                    Err(e) => {
                        let _ = write_error_msg(&mut self.out, &format!("finish: {e}"));
                    }
                }
                self.guard.finish();
                hangup(&mut self.out, None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                self.guard.fail(&message);
                hangup(&mut self.out, Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// `Read` adapter that turns socket read timeouts into retries until the
/// server's stop flag is raised, so `read_exact`-based incremental
/// parsers ([`Packet::read_into`], frame bodies) never observe a spurious
/// timeout mid-message and never outlive shutdown.
struct StopRead<'a> {
    inner: TcpStream,
    stop: &'a AtomicBool,
    /// While set, the retry loop gives up at this instant instead of
    /// spinning forever — bounds the handshake, so a connection that
    /// never sends its `Hello` cannot pin a reader thread. Cleared once
    /// the handshake lands; mid-stream liveness stays TCP's problem.
    deadline: Option<Instant>,
}

impl Read for StopRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Err(io::Error::other("server shutting down"));
            }
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    if self
                        .deadline
                        .is_some_and(|deadline| Instant::now() >= deadline)
                    {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            "handshake deadline exceeded",
                        ));
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Builds a session rate mode from the wire's `(target, fixed rate)`
/// pair — the *single* conversion both the handshake and the mid-stream
/// `'R'` retarget go through, so the two paths can never drift apart in
/// what they accept. Note the hybrid QP domain is every byte (the
/// quantizer step extrapolates beyond the useful 0..=51, exactly as
/// before the rate-mode handshake existed), while CTVC validates
/// against the calibrated sweep.
fn wire_rate_mode<R: RateParam>(
    target: Option<TargetBppWire>,
    rate: u8,
) -> Result<RateMode<R>, String> {
    match target {
        Some(t) if t.milli_bpp == 0 => Err("target bpp must be positive".into()),
        Some(t) => Ok(RateMode::TargetBpp {
            bpp: t.bpp(),
            window: usize::from(t.window),
        }),
        None => Ok(RateMode::Fixed(R::from_wire(rate)?)),
    }
}

/// The rate byte a degraded admission acks: the rung the governor's
/// grant puts a fixed-rate session at for its first frame (closed-loop
/// sessions keep their bpp target, so their ack echoes the request).
/// Reuses the exact walk the runner takes, so the ack and frame one
/// can never disagree.
fn degraded_ack_rate(hello: &Hello, ratio: f64, floor: u32) -> u8 {
    if hello.target.is_some() {
        return hello.rate;
    }
    match hello.family {
        Family::Ctvc => RatePoint::from_wire(hello.rate)
            .map(|r| RatePoint::from_position(granted_position(&r, ratio, floor)).to_wire())
            .unwrap_or(hello.rate),
        Family::Hybrid => <u8 as RateParam>::from_wire(hello.rate)
            .map(|r| <u8 as RateParam>::from_position(granted_position(&r, ratio, floor)).to_wire())
            .unwrap_or(hello.rate),
    }
}

/// Turns a fresh admission into the runner-owned [`Governed`] wrapper,
/// recording what the session asked for so every later grant is derived
/// from the same request.
fn claim_governed<'env, R: RateParam>(
    gov: &'env Governor,
    counters: &'env Counters,
    admit: GovAdmit<'env>,
    hello: &Hello,
) -> Governed<'env, R> {
    let want = match hello.target {
        Some(t) => GovWant::TargetBpp {
            bpp: t.bpp(),
            window: usize::from(t.window),
        },
        None => GovWant::Fixed(R::from_wire(hello.rate).expect("validated above")),
    };
    Governed::new(gov, counters, admit.claim(), want)
}

/// Validates the semantic half of a handshake against the served codecs.
/// Subscribe handshakes carry no rate of their own (the broadcast's rate
/// is what they get), so only their geometry is checked here — the rest
/// is validated against the named broadcast at attach time.
fn validate_hello(hello: &Hello) -> Result<(), String> {
    if hello.target.is_some() && !matches!(hello.role, Role::Encode | Role::Publish) {
        return Err("target-bpp mode only applies to encode streams".into());
    }
    match hello.family {
        Family::Ctvc => {
            if hello.role != Role::Subscribe {
                wire_rate_mode::<RatePoint>(hello.target, hello.rate)?;
            }
            if !hello.width.is_multiple_of(16) || !hello.height.is_multiple_of(16) {
                return Err(format!(
                    "CTVC streams need dimensions divisible by 16, got {}x{}",
                    hello.width, hello.height
                ));
            }
            Ok(())
        }
        Family::Hybrid if hello.role == Role::Subscribe => Ok(()),
        Family::Hybrid => wire_rate_mode::<u8>(hello.target, hello.rate).map(|_| ()),
    }
}

#[allow(clippy::too_many_arguments)]
fn connection<'env>(
    stream: TcpStream,
    ctvc: &'env CtvcCodec,
    hybrid: &'env HybridCodec,
    sched: &Scheduler<'env>,
    cfg: &ServeConfig,
    registry: &BroadcastRegistry,
    fanout: &ExecPool,
    governor: Option<&'env Governor>,
    stop: &AtomicBool,
    counters: &'env Counters,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(write_half) = stream.try_clone() else {
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut out = BufWriter::new(write_half);
    let mut reader = BufReader::new(StopRead {
        inner: stream,
        stop,
        deadline: Some(Instant::now() + cfg.handshake_timeout),
    });

    // Handshake: structural validation, semantic validation, admission.
    let hello = match Hello::read_from(&mut reader) {
        Ok(hello) => hello,
        Err(e) => {
            hangup(&mut out, Some(&format!("handshake: {e}")));
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    // The deadline only bounds the handshake; from here the connection
    // is a live stream and quiet periods between frames are legitimate.
    reader.get_mut().deadline = None;
    if let Err(reason) = validate_hello(&hello) {
        hangup(&mut out, Some(&format!("handshake: {reason}")));
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Subscribers take a different path entirely: no codec session, no
    // pool slot — just an attach and a writer loop on this thread.
    if hello.role == Role::Subscribe {
        subscriber_connection(out, &hello, registry, fanout, cfg, stop, counters);
        return;
    }
    // Atomic admission (reserve-then-ack): concurrent handshakes race
    // for slots under the cap, never past it.
    if counters
        .active
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |active| {
            (active < cfg.max_sessions).then_some(active + 1)
        })
        .is_err()
    {
        hangup(&mut out, Some("server at session capacity"));
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Governed admission: backlog-aware for every session, budget-aware
    // for the bandwidth-bearing roles. The three-step response — admit,
    // admit-degraded (the ack says so), reject with a clean 'X' — all
    // resolves here, before the ack.
    let mut gov_admit: Option<GovAdmit<'env>> = None;
    if let Some(gov) = governor {
        let backlog = sched.backlog();
        let admitted = if matches!(hello.role, Role::Encode | Role::Publish) {
            let pixels = (hello.width * hello.height) as f64;
            let want = match hello.target {
                Some(t) => t.bpp() * pixels,
                None => gov.config().assumed_bpp * pixels,
            };
            let client = hello.client.clone().unwrap_or_else(|| {
                out.get_ref()
                    .peer_addr()
                    .map(|peer| peer.ip().to_string())
                    .unwrap_or_else(|_| "unknown-peer".into())
            });
            gov.admit(&client, want, backlog)
                .map(|(id, ratio)| Some(GovAdmit::new(gov, id, ratio)))
        } else {
            gov.check_backlog(backlog).map(|()| None)
        };
        match admitted {
            Ok(admit) => gov_admit = admit,
            Err(reason) => {
                hangup(&mut out, Some(&format!("admission: {reason}")));
                counters.active.fetch_sub(1, Ordering::Relaxed);
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    // Publish streams claim their broadcast name *before* the ack, so a
    // duplicate name is a handshake rejection, not a mid-stream abort.
    let relay_gop: u16 = if hello.gop != 0 {
        hello.gop
    } else {
        cfg.broadcast_gop.clamp(1, usize::from(u16::MAX)) as u16
    };
    let mut publish_guard = None;
    if hello.role == Role::Publish {
        let name = hello.broadcast.as_deref().unwrap_or_default();
        let info = BroadcastInfo {
            family: hello.family,
            width: hello.width,
            height: hello.height,
            gop: relay_gop,
        };
        match registry.create(name, info, hello.rate) {
            Ok(guard) => publish_guard = Some(guard),
            Err(reason) => {
                hangup(&mut out, Some(&format!("handshake: {reason}")));
                counters.active.fetch_sub(1, Ordering::Relaxed);
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    let ack = match &gov_admit {
        Some(admit) if admit.ratio() < 1.0 => Ack {
            rate: degraded_ack_rate(
                &hello,
                admit.ratio(),
                governor.map_or(0, |g| g.config().min_position),
            ),
            degraded: true,
        },
        _ => Ack {
            rate: hello.rate,
            degraded: false,
        },
    };
    if write_ack_msg(&mut out, hello.version, &ack)
        .and_then(|()| out.flush())
        .is_err()
    {
        counters.active.fetch_sub(1, Ordering::Relaxed);
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    counters.sessions.fetch_add(1, Ordering::Relaxed);

    let negotiated = (hello.width, hello.height);
    let version = hello.version;
    let runner: Box<dyn SessionRunner + Send + 'env> = match (hello.family, hello.role) {
        (Family::Ctvc, Role::Decode) => Box::new(DecodeRunner::new(
            ctvc.start_decode(),
            negotiated,
            version,
            out,
        )),
        (Family::Ctvc, Role::Encode) => {
            let mode =
                wire_rate_mode::<RatePoint>(hello.target, hello.rate).expect("validated above");
            let governed = gov_admit.map(|admit| {
                claim_governed::<RatePoint>(
                    governor.expect("admission implies a governor"),
                    counters,
                    admit,
                    &hello,
                )
            });
            Box::new(EncodeRunner::new(
                ctvc.start_encode(mode),
                version,
                out,
                governed,
            ))
        }
        (Family::Hybrid, Role::Decode) => Box::new(DecodeRunner::new(
            hybrid.start_decode(),
            negotiated,
            version,
            out,
        )),
        (Family::Hybrid, Role::Encode) => {
            let mode = wire_rate_mode::<u8>(hello.target, hello.rate).expect("validated above");
            let governed = gov_admit.map(|admit| {
                claim_governed::<u8>(
                    governor.expect("admission implies a governor"),
                    counters,
                    admit,
                    &hello,
                )
            });
            Box::new(EncodeRunner::new(
                hybrid.start_encode(mode),
                version,
                out,
                governed,
            ))
        }
        (Family::Ctvc, Role::Publish) => {
            let mode =
                wire_rate_mode::<RatePoint>(hello.target, hello.rate).expect("validated above");
            let mut sess = ctvc.start_encode(mode);
            let joinable = sess.set_join_headers(true);
            debug_assert!(joinable, "served CTVC codec lacks joinable-stream mode");
            let guard = publish_guard.take().expect("claimed above");
            let governed = gov_admit.map(|admit| {
                claim_governed::<RatePoint>(
                    governor.expect("admission implies a governor"),
                    counters,
                    admit,
                    &hello,
                )
            });
            Box::new(PublishRunner::new(
                sess,
                version,
                out,
                guard,
                u32::from(relay_gop),
                counters,
                governed,
            ))
        }
        (Family::Hybrid, Role::Publish) => {
            let mode = wire_rate_mode::<u8>(hello.target, hello.rate).expect("validated above");
            let mut sess = hybrid.start_encode(mode);
            let joinable = sess.set_join_headers(true);
            debug_assert!(joinable, "served hybrid codec lacks joinable-stream mode");
            let guard = publish_guard.take().expect("claimed above");
            let governed = gov_admit.map(|admit| {
                claim_governed::<u8>(
                    governor.expect("admission implies a governor"),
                    counters,
                    admit,
                    &hello,
                )
            });
            Box::new(PublishRunner::new(
                sess,
                version,
                out,
                guard,
                u32::from(relay_gop),
                counters,
                governed,
            ))
        }
        (_, Role::Subscribe) => unreachable!("subscribers return above"),
    };
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::default()),
        space: Condvar::new(),
        runner: Mutex::new(runner),
    });

    // Reader loop: parse + validate one message at a time, queue it for
    // the pool. Any wire-level failure turns into an Abort job so the
    // error report flows through the session's single writer.
    loop {
        let tag = match read_u8(&mut reader) {
            Ok(tag) => tag,
            Err(e) => {
                sched.enqueue(
                    &slot,
                    Job::Abort(format!("connection lost mid-stream: {e}")),
                    stop,
                );
                return;
            }
        };
        let job = match (tag, hello.role) {
            (MSG_PACKET, Role::Decode) => match Packet::read_from(&mut reader) {
                Ok(packet) => Job::Packet(packet),
                Err(e) => Job::Abort(format!("bad packet: {e}")),
            },
            (MSG_FRAME, Role::Encode | Role::Publish) => {
                // The negotiated geometry is enforced on the *header*,
                // before any payload is read, so a hostile size field
                // never drives an allocation.
                match read_frame_body(&mut reader, Some((hello.width, hello.height))) {
                    Ok((_, frame)) => Job::Frame(frame),
                    Err(e) => Job::Abort(format!("bad frame: {e}")),
                }
            }
            // Parsed for either direction so a decode stream gets the
            // specific "retarget on a decode stream" diagnostic from
            // its runner rather than a generic unexpected-tag abort.
            (MSG_RETARGET, _) if hello.version >= 2 => match read_retarget_body(&mut reader) {
                Ok(retarget) => Job::Retarget(retarget),
                Err(e) => Job::Abort(format!("bad retarget: {e}")),
            },
            (MSG_END, _) => Job::End,
            (tag, _) => Job::Abort(format!("unexpected message tag 0x{tag:02X}")),
        };
        let last = job.is_control();
        if !sched.enqueue(&slot, job, stop) || last {
            return;
        }
    }
}

/// The subscriber half of [`connection`]: resolves the named broadcast,
/// validates the handshake against its fixed facts, attaches, sends the
/// ack plus the `'J'` join info, then runs the fan-out writer loop on
/// this thread until the broadcast ends or the subscriber is evicted.
fn subscriber_connection(
    mut out: BufWriter<TcpStream>,
    hello: &Hello,
    registry: &BroadcastRegistry,
    fanout: &ExecPool,
    cfg: &ServeConfig,
    stop: &AtomicBool,
    counters: &Counters,
) {
    let name = hello.broadcast.as_deref().unwrap_or_default();
    let Some(broadcast) = registry.get(name) else {
        hangup(
            &mut out,
            Some(&format!("handshake: no broadcast named {name:?}")),
        );
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let info = broadcast.info();
    if info.family != hello.family {
        hangup(
            &mut out,
            Some(&format!(
                "handshake: broadcast {name:?} serves {:?} streams, not {:?}",
                info.family, hello.family
            )),
        );
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if (info.width, info.height) != (hello.width, hello.height) {
        hangup(
            &mut out,
            Some(&format!(
                "handshake: broadcast {name:?} is {}x{}, requested {}x{}",
                info.width, info.height, hello.width, hello.height
            )),
        );
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Subscriber admission is separate from session admission: a
    // subscriber holds no codec state and no pool slot, so the cap is
    // orders of magnitude higher.
    if counters
        .active_subscribers
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |active| {
            (active < cfg.max_subscribers).then_some(active + 1)
        })
        .is_err()
    {
        hangup(&mut out, Some("server at subscriber capacity"));
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let attachment = match broadcast.attach(cfg.subscriber_ring) {
        Ok(attachment) => attachment,
        Err(reason) => {
            hangup(&mut out, Some(&format!("handshake: {reason}")));
            counters.active_subscribers.fetch_sub(1, Ordering::Relaxed);
            counters.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let join = JoinInfo {
        family: info.family,
        width: info.width,
        height: info.height,
        start_index: attachment.start_index,
        rate: attachment.rate,
        gop: info.gop,
    };
    let ack = Ack {
        rate: attachment.rate,
        degraded: false,
    };
    if write_ack_msg(&mut out, hello.version, &ack)
        .and_then(|()| write_join_msg(&mut out, &join))
        .and_then(|()| out.flush())
        .is_err()
    {
        attachment.ring.detach();
        counters.active_subscribers.fetch_sub(1, Ordering::Relaxed);
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return;
    }
    counters.subscribers.fetch_add(1, Ordering::Relaxed);
    serve_subscriber(out, attachment, hello.version, fanout, stop);
    counters.active_subscribers.fetch_sub(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// The serve loop
// ---------------------------------------------------------------------

fn run(
    listener: TcpListener,
    cfg: ServeConfig,
    ctvc: CtvcCodec,
    hybrid: HybridCodec,
    stop: &AtomicBool,
    counters: &Counters,
) {
    let hardware = nvc_core::ExecCtx::auto().threads();
    let workers = if cfg.workers == 0 {
        hardware
    } else {
        cfg.workers
    };
    let threads_per_session = cfg.threads_per_session.max(1);
    let exec = ExecPool::new(cfg.exec_cap);
    // Fan-out write work gets its own permit pool so a thousand
    // subscribers can never starve the codec workers of compute permits
    // (and vice versa).
    let fanout = ExecPool::new(cfg.fanout_cap);
    let registry = BroadcastRegistry::new();
    // Default compute-admission ceiling: the deepest backlog the slot
    // queues can legitimately hold at once. Declared before the
    // scheduler so connection threads holding governor registrations
    // outlive nothing that still references them.
    let governor = cfg
        .governor
        .clone()
        .map(|gov_cfg| Governor::new(gov_cfg, cfg.queue_depth.max(1) * cfg.max_sessions.max(1)));
    let sched = Scheduler::new(cfg.queue_depth, cfg.gop_batch);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| worker_loop(&sched, &exec, threads_per_session, stop, counters));
        }
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let (ctvc, hybrid, sched) = (&ctvc, &hybrid, &sched);
                    let (cfg, registry, fanout) = (&cfg, &registry, &fanout);
                    let governor = governor.as_ref();
                    scope.spawn(move || {
                        connection(
                            stream, ctvc, hybrid, sched, cfg, registry, fanout, governor, stop,
                            counters,
                        )
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => break,
            }
        }
        stop.store(true, Ordering::Relaxed);
        sched.work.notify_all();
        // Wake every subscriber writer parked on a ring wait so the
        // scope join is not at the mercy of the ring-wait backstop.
        registry.fail_all("server shutting down");
    });
}
