//! The serving side: one event-driven poller thread multiplexing every
//! socket, and a session pool scheduling GOP-grain batches onto shared
//! compute.
//!
//! # Threading model
//!
//! ```text
//!            ┌──────────── poller (this thread) ────────────┐
//! accept ──► │ conn 1: Hello ──► Session ──► decode bytes   │   ready    ┌─ worker 1
//!            │ conn 2: Session (jobs ──► slot queue) ───────┼──► queue ──┼─ worker 2
//!            │ conn K: Subscriber (ring ──► outbox ──► sock)│            └─ worker W
//!            └──── nonblocking reads/writes, timer wheel ───┘
//! ```
//!
//! * The **poller** owns every socket, all nonblocking. It accepts,
//!   parses handshakes and messages incrementally ([`MsgDecoder`]
//!   accepts bytes in arbitrary chunks), queues parsed jobs into the
//!   per-session slot, pumps broadcast rings into subscriber outboxes,
//!   and drains outboxes whenever sockets accept bytes. Deadlines (the
//!   handshake timeout, write stalls, post-error drains) live on a
//!   coarse [`TimerWheel`]. The thread count is fixed: one poller plus
//!   the worker pool, independent of the connection count.
//! * Each **worker** pops a ready session and runs one *GOP-grain batch*
//!   of its queued jobs: up to [`ServeConfig::gop_batch`] frames,
//!   cutting before the next intra packet so a scheduling quantum never
//!   straddles a GOP boundary. One session is never on two workers at
//!   once (frames of a stream are strictly ordered); different sessions
//!   overlap freely. Responses are queued into the connection's outbox
//!   and the poller is woken to write them.
//! * Every batch holds an [`ExecPool`] lease for the session's context
//!   width while it computes, so total fan-out across all sessions stays
//!   under [`ServeConfig::exec_cap`] regardless of the connection count.
//!
//! A full slot queue *parks* the decoded job instead of blocking: the
//! connection drops out of the read set, TCP backpressures the client,
//! and the worker's space wake re-admits it — the same backpressure the
//! old per-connection reader threads provided, without the threads.

use crate::broadcast::{BroadcastInfo, BroadcastRegistry, CachedPacket, PublisherGuard};
use crate::conn::{
    pump_subscriber, push_bytes, push_shared, queue_hangup, service_writes, CloseKind, Conn,
    ConnKind, OutHandle, OutState, SubscriberStats, WriteStatus,
};
use crate::governor::{granted_position, GovAdmit, GovWant, Governed, Governor, GovernorConfig};
use crate::poll::{PollShared, PollWaker, TimerKind, TimerWheel};
use crate::proto::{
    ack_msg_bytes, write_error_msg, write_frame_msg, write_join_msg, write_packet_msg,
    write_stats_msg, Ack, Family, Hello, HelloDecoder, JoinInfo, MsgDecoder, Retarget, Role,
    TargetBppWire, WireMsg, MSG_PACKET,
};
use crate::sync::LockExt;
use nvc_baseline::{HybridCodec, Profile};
use nvc_core::ExecPool;
use nvc_entropy::container::{FrameKind, Packet};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_telemetry::{Counter as TCounter, Gauge, Histogram as TH, Registry};
use nvc_video::codec::{DecoderSession, EncoderSession, StreamStats};
use nvc_video::rate::{RateMode, RateParam};
use nvc_video::Frame;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Idle-park backstop for the poller and the stop-flag poll interval for
/// worker waits.
const POLL: Duration = Duration::from_millis(25);

/// Default for [`ServeConfig::write_timeout`]: how long a blocked write
/// may sit without progress before the connection is dropped, so a
/// vanished client can never pin its outbox (and whatever it retains)
/// forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// First delay before re-probing a blocked socket. A peer that drains
/// promptly is rediscovered within a timer tick; one that stays full
/// backs off exponentially to [`RETRY_MAX`], so a swarm of stalled
/// subscribers costs a bounded trickle of `EAGAIN` probes rather than
/// one probe per socket per poller pass.
const RETRY_MIN: Duration = Duration::from_millis(10);

/// Cap on the blocked-write probe backoff: the longest a reopened
/// receive window can go unnoticed.
const RETRY_MAX: Duration = Duration::from_millis(320);

/// How long an error-terminated connection drains unread peer data
/// before hard-closing (see [`CloseKind::Drain`]).
const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Configuration of the served CTVC-Net codec ([`Family::Ctvc`]
    /// streams). Its `threads` field is overridden by
    /// [`ServeConfig::threads_per_session`].
    pub ctvc: CtvcConfig,
    /// Profile of the served hybrid baseline ([`Family::Hybrid`]).
    pub hybrid: Profile,
    /// Pool workers — the number of sessions computing concurrently
    /// (`0` = all available hardware parallelism).
    pub workers: usize,
    /// `ExecCtx` width per session (layer-level fan-out inside one
    /// frame). Serving throughput favors many narrow sessions over few
    /// wide ones, so the default is 1.
    pub threads_per_session: usize,
    /// Total compute-thread permits shared by all sessions (`0` = all
    /// available hardware parallelism). See [`ExecPool`].
    pub exec_cap: usize,
    /// Per-session pending-job bound; a full queue parks the
    /// connection's decoder, which stops reading the socket
    /// (backpressure).
    pub queue_depth: usize,
    /// Maximum jobs one scheduling quantum may run before the session
    /// goes back to the ready queue (quanta also cut at GOP boundaries).
    pub gop_batch: usize,
    /// Maximum concurrent sessions; further connections are rejected
    /// with an error message.
    pub max_sessions: usize,
    /// Relay GOP length for publish streams that do not request one in
    /// the handshake: the publisher session forces an intra refresh
    /// every this many frames, bounding how far a late joiner's start
    /// point can lie in the past.
    pub broadcast_gop: usize,
    /// Per-subscriber ring capacity in packets. A subscriber falling
    /// this far behind the publisher is evicted rather than ever
    /// backpressuring the broadcast.
    pub subscriber_ring: usize,
    /// Maximum concurrent subscribers across all broadcasts. Counted
    /// separately from [`ServeConfig::max_sessions`] — subscribers hold
    /// no codec session and no worker-pool slot, so thousands are fine.
    pub max_subscribers: usize,
    /// Kept for configuration compatibility: the event-driven core
    /// performs all fan-out writes on the poller thread, so there is no
    /// separate fan-out permit pool to cap anymore.
    pub fanout_cap: usize,
    /// Time a fresh connection gets to deliver its `Hello`: a peer that
    /// completes TCP accept but stays silent is closed with `'X'` (and
    /// counted under [`ServeReport::rejected`]) when the timer-wheel
    /// deadline fires.
    pub handshake_timeout: Duration,
    /// How long a blocked write may sit without progress before the
    /// connection is dropped, so a vanished client can never pin its
    /// outbox (and whatever it retains) forever. Any write that moves
    /// bytes resets the clock — a slow-but-draining peer survives;
    /// a wedged one does not.
    pub write_timeout: Duration,
    /// Cross-session rate governor. `None` (the default) serves every
    /// session at its requested rate with `max_sessions` as the only
    /// admission gate — the exact pre-governor behavior. `Some` splits
    /// the configured budget across all live encode/publish sessions
    /// and turns admission into the three-step
    /// admit / admit-degraded / reject response. See [`GovernorConfig`].
    pub governor: Option<GovernorConfig>,
    /// Bind address for the live metrics endpoint (e.g.
    /// `"127.0.0.1:0"`). When set, [`Server::spawn`] opens a second
    /// listener whose every connection receives one Prometheus-style
    /// text snapshot of the server's registry, the process-global
    /// registry, and the most recent spans — then is closed. `None`
    /// (the default) serves no metrics endpoint.
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ctvc: CtvcConfig::ctvc_fp(12),
            hybrid: Profile::hevc_like(),
            workers: 0,
            threads_per_session: 1,
            exec_cap: 0,
            queue_depth: 4,
            gop_batch: 8,
            max_sessions: 64,
            broadcast_gop: 8,
            subscriber_ring: 64,
            max_subscribers: 4096,
            fanout_cap: 0,
            handshake_timeout: Duration::from_secs(10),
            write_timeout: WRITE_TIMEOUT,
            governor: None,
            metrics_addr: None,
        }
    }
}

/// Lifetime counters reported by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Sessions that completed the handshake.
    pub sessions: usize,
    /// Connections rejected (failed handshake or over capacity).
    pub rejected: usize,
    /// Frames processed across all sessions (encoded + decoded).
    pub frames: u64,
    /// Sessions that ended in an error (protocol or codec failure).
    pub errors: u64,
    /// Subscribers that completed a broadcast attach.
    pub subscribers: usize,
    /// Subscribers evicted for lagging behind their broadcast.
    pub evicted: u64,
    /// Governor degradations: how many times a session went from its
    /// full requested rate to a reduced grant (degraded admissions
    /// count on the session's first frame).
    pub degraded: u64,
    /// Total downward rate-grant updates the governor applied — ladder
    /// rungs for fixed-rate sessions, one per shrink for closed-loop
    /// targets. A measure of how hard the degradation curve worked.
    pub throttle_steps: u64,
    /// Governor restorations: sessions walked back up to their full
    /// requested rate as load drained.
    pub restored: u64,
    /// Poller passes: how many times the event loop woke and scanned
    /// for work (accepts, wakes, readable sockets, timers).
    pub poll_wakeups: u64,
    /// Poller passes that found nothing to do — the cost of readiness
    /// polling without an OS readiness API. High ratios against
    /// [`ServeReport::poll_wakeups`] mean the loop is parked-bound, not
    /// work-bound.
    pub spurious_polls: u64,
    /// High-water mark of concurrently registered connections
    /// (sessions + subscribers + in-handshake), all multiplexed on the
    /// one poller thread.
    pub max_registered: u64,
    /// Timer-wheel deadlines that fired and acted (handshake timeouts,
    /// write-stall kills, post-error drain closes). Stale fires — the
    /// connection moved on before the deadline — are not counted.
    pub timer_fires: u64,
}

/// The server's live state, counted on a per-server
/// [`nvc_telemetry::Registry`]. [`ServeReport`] and the live metrics
/// endpoint both read this same storage, so the shutdown view and a
/// mid-run scrape can never disagree about a counter.
pub(crate) struct Counters {
    /// The server-scoped registry the handles below live in; the
    /// metrics endpoint renders it (plus the process-global registry).
    registry: Registry,
    sessions: TCounter,
    rejected: TCounter,
    active: Gauge,
    frames: TCounter,
    errors: TCounter,
    subscribers: TCounter,
    active_subscribers: Gauge,
    evicted: TCounter,
    degraded: TCounter,
    throttle_steps: TCounter,
    restored: TCounter,
    poll_wakeups: TCounter,
    spurious_polls: TCounter,
    max_registered: Gauge,
    timer_fires: TCounter,
    /// How long each poller park actually lasted.
    park_us: TH,
    /// Wake-to-work latency: from the first `PollShared::wake` of a
    /// batch to the poller pass that drains it.
    wake_latency_us: TH,
    /// Timer-wheel fire lag: how far past its due tick each fired
    /// deadline was collected.
    fire_lag_us: TH,
    /// Governor grant ratio at admission, in percent (100 = full rate).
    gov_grant_ratio_pct: TH,
    gov_admit: TCounter,
    gov_degraded_admit: TCounter,
    gov_reject: TCounter,
}

impl Default for Counters {
    fn default() -> Self {
        let registry = Registry::new();
        Counters {
            sessions: registry.counter("nvc_serve_sessions_total"),
            rejected: registry.counter("nvc_serve_rejected_total"),
            active: registry.gauge("nvc_serve_active_sessions"),
            frames: registry.counter("nvc_serve_frames_total"),
            errors: registry.counter("nvc_serve_errors_total"),
            subscribers: registry.counter("nvc_serve_subscribers_total"),
            active_subscribers: registry.gauge("nvc_serve_active_subscribers"),
            evicted: registry.counter("nvc_serve_evicted_total"),
            degraded: registry.counter("nvc_governor_degraded_total"),
            throttle_steps: registry.counter("nvc_governor_throttle_steps_total"),
            restored: registry.counter("nvc_governor_restored_total"),
            poll_wakeups: registry.counter("nvc_poll_wakeups_total"),
            spurious_polls: registry.counter("nvc_poll_spurious_total"),
            max_registered: registry.gauge("nvc_poll_max_registered"),
            timer_fires: registry.counter("nvc_poll_timer_fires_total"),
            park_us: registry.histogram("nvc_poll_park_us"),
            wake_latency_us: registry.histogram("nvc_poll_wake_latency_us"),
            fire_lag_us: registry.histogram("nvc_poll_timer_fire_lag_us"),
            gov_grant_ratio_pct: registry.histogram("nvc_governor_grant_ratio_pct"),
            gov_admit: registry.counter("nvc_governor_admit_total"),
            gov_degraded_admit: registry.counter("nvc_governor_degraded_admit_total"),
            gov_reject: registry.counter("nvc_governor_reject_total"),
            registry,
        }
    }
}

impl Counters {
    fn report(&self) -> ServeReport {
        ServeReport {
            sessions: self.sessions.get() as usize,
            rejected: self.rejected.get() as usize,
            frames: self.frames.get(),
            errors: self.errors.get(),
            subscribers: self.subscribers.get() as usize,
            evicted: self.evicted.get(),
            degraded: self.degraded.get(),
            throttle_steps: self.throttle_steps.get(),
            restored: self.restored.get(),
            poll_wakeups: self.poll_wakeups.get(),
            spurious_polls: self.spurious_polls.get(),
            max_registered: self.max_registered.get().max(0) as u64,
            timer_fires: self.timer_fires.get(),
        }
    }

    pub(crate) fn bump_degraded(&self) {
        self.degraded.inc();
    }

    pub(crate) fn bump_restored(&self) {
        self.restored.inc();
    }

    pub(crate) fn bump_throttle(&self, steps: u64) {
        self.throttle_steps.add(steps);
    }
}

/// The `nvc-serve` TCP server. See [`Server::spawn`].
pub struct Server;

impl Server {
    /// Binds `addr` and starts serving on a background thread. The
    /// returned handle exposes the bound address (bind to port 0 for an
    /// ephemeral one) and shuts the server down when dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound or the served
    /// codec configuration is invalid.
    pub fn spawn(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = cfg.threads_per_session.max(1);
        let ctvc = CtvcCodec::new(cfg.ctvc.clone().with_threads(threads))
            .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let hybrid = HybridCodec::with_threads(cfg.hybrid.clone(), threads);
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let shared = PollShared::new();
        // The metrics listener binds before the serving thread takes
        // `cfg`, so a bad metrics address fails the spawn cleanly.
        let mut metrics_addr = None;
        let mut metrics_join = None;
        if let Some(bind) = cfg.metrics_addr.as_deref() {
            let metrics_listener = TcpListener::bind(bind)?;
            metrics_listener.set_nonblocking(true)?;
            metrics_addr = Some(metrics_listener.local_addr()?);
            let (stop_m, counters_m) = (Arc::clone(&stop), Arc::clone(&counters));
            metrics_join = Some(
                std::thread::Builder::new()
                    .name("nvc-metrics".into())
                    .spawn(move || metrics_loop(&metrics_listener, &stop_m, &counters_m))?,
            );
        }
        let (stop2, counters2, shared2) = (
            Arc::clone(&stop),
            Arc::clone(&counters),
            Arc::clone(&shared),
        );
        let join = std::thread::Builder::new()
            .name("nvc-serve".into())
            .spawn(move || run(listener, cfg, ctvc, hybrid, &stop2, &counters2, shared2))?;
        Ok(ServerHandle {
            addr,
            metrics_addr,
            stop,
            counters,
            shared,
            join: Some(join),
            metrics_join,
        })
    }
}

/// Handle to a running [`Server`]; shuts it down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    shared: Arc<PollShared>,
    join: Option<JoinHandle<()>>,
    metrics_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the live metrics endpoint, when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn report(&self) -> ServeReport {
        self.counters.report()
    }

    /// Stops accepting, drains worker threads and returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_and_join();
        self.counters.report()
    }

    fn stop_and_join(&mut self) {
        // order: Relaxed — the stop flag is a latch the loops poll; the
        // join() below is the real synchronization point.
        self.stop.store(true, Ordering::Relaxed);
        // The poller may be parked mid-backoff; kick it so shutdown
        // does not wait out the park timeout.
        self.shared.kick();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.metrics_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------
// Scheduling structures
// ---------------------------------------------------------------------

/// One unit of session work, produced by the poller's protocol decoder,
/// consumed by a worker.
pub(crate) enum Job {
    /// A parsed, CRC-validated coded packet (decode sessions).
    Packet(Packet),
    /// A raw frame (encode sessions).
    Frame(Frame),
    /// A mid-stream rate retarget (encode sessions): applies in stream
    /// order between the frames around it.
    Retarget(Retarget),
    /// Clean end of stream: finalize, send the stats trailer.
    End,
    /// Poller-detected failure: report to the peer and close.
    Abort(String),
}

impl Job {
    fn is_control(&self) -> bool {
        matches!(self, Job::End | Job::Abort(_))
    }
}

#[derive(Default)]
struct SlotState {
    pending: VecDeque<Job>,
    /// In the ready queue or on a worker. Guarantees one-worker-at-a-time
    /// (stream order) and at most one ready-queue entry per slot.
    scheduled: bool,
    dead: bool,
}

/// Per-connection session state shared between the poller and the pool.
pub(crate) struct Slot<'env> {
    state: Mutex<SlotState>,
    /// Signalled when a worker drains jobs and when the slot dies.
    space: Condvar,
    runner: Mutex<Box<dyn SessionRunner + Send + 'env>>,
    /// Wakes the owning connection's poller when queue space frees, so
    /// a parked job retries.
    waker: PollWaker,
}

/// Outcome of a nonblocking enqueue attempt.
enum Enqueue {
    /// Queued; a worker will run it in stream order.
    Queued,
    /// The bounded queue is full — the job comes back to be parked, and
    /// the connection stops reading until the worker's space wake.
    Full(Job),
    /// The session already died; the job was dropped.
    Dead,
}

struct Scheduler<'env> {
    ready: Mutex<VecDeque<Arc<Slot<'env>>>>,
    work: Condvar,
    queue_depth: usize,
    gop_batch: usize,
    /// Jobs sitting in slot queues, not yet taken by a worker — the
    /// governor's queue-length signal for compute-aware admission.
    backlog: AtomicUsize,
}

impl<'env> Scheduler<'env> {
    fn new(queue_depth: usize, gop_batch: usize) -> Self {
        Scheduler {
            ready: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            queue_depth: queue_depth.max(1),
            gop_batch: gop_batch.max(1),
            backlog: AtomicUsize::new(0),
        }
    }

    fn backlog(&self) -> usize {
        // order: Relaxed — an admission hint, not a guard; a slightly
        // stale count only shifts the admission decision by one job.
        self.backlog.load(Ordering::Relaxed)
    }

    /// Queues one job for a session without ever blocking (control jobs
    /// bypass the bound so a stream can always terminate).
    fn try_enqueue(&self, slot: &Arc<Slot<'env>>, job: Job) -> Enqueue {
        let mut state = slot.state.lock_clean();
        if state.dead {
            return Enqueue::Dead;
        }
        if !job.is_control() && state.pending.len() >= self.queue_depth {
            return Enqueue::Full(job);
        }
        state.pending.push_back(job);
        // order: Relaxed — a statistic for the admission gate; the job
        // itself is published by the slot mutex.
        self.backlog.fetch_add(1, Ordering::Relaxed);
        let newly_ready = !state.scheduled;
        state.scheduled = true;
        drop(state);
        if newly_ready {
            self.ready.lock_clean().push_back(Arc::clone(slot));
            self.work.notify_one();
        }
        Enqueue::Queued
    }

    /// Blocks for the next ready session; `None` once the server stops.
    fn next_ready(&self, stop: &AtomicBool) -> Option<Arc<Slot<'env>>> {
        let mut ready = self.ready.lock_clean();
        loop {
            if let Some(slot) = ready.pop_front() {
                return Some(slot);
            }
            // order: Relaxed — a latch re-polled every wait timeout;
            // missing one edge only costs a POLL interval.
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _) = self
                .work
                .wait_timeout(ready, POLL)
                .unwrap_or_else(|e| e.into_inner());
            ready = guard;
        }
    }

    fn requeue(&self, slot: Arc<Slot<'env>>) {
        self.ready.lock_clean().push_back(slot);
        self.work.notify_one();
    }

    /// Takes one scheduling quantum off a slot's queue: at most
    /// `gop_batch` jobs, cutting *before* an intra packet so a quantum
    /// never straddles a GOP boundary.
    fn take_batch(&self, state: &mut SlotState) -> Vec<Job> {
        let mut batch = Vec::new();
        while batch.len() < self.gop_batch {
            match state.pending.pop_front() {
                Some(Job::Packet(p)) if !batch.is_empty() && p.kind == FrameKind::Intra => {
                    // The next GOP starts here; leave its intra queued.
                    state.pending.push_front(Job::Packet(p));
                    break;
                }
                Some(job) => batch.push(job),
                None => break,
            }
        }
        // order: Relaxed — see `try_enqueue`; the slot mutex publishes
        // the jobs themselves.
        self.backlog.fetch_sub(batch.len(), Ordering::Relaxed);
        batch
    }
}

fn worker_loop<'env>(
    sched: &Scheduler<'env>,
    exec: &ExecPool,
    threads_per_session: usize,
    stop: &AtomicBool,
    counters: &Counters,
) {
    while let Some(slot) = sched.next_ready(stop) {
        let batch = {
            let mut state = slot.state.lock_clean();
            sched.take_batch(&mut state)
        };
        slot.space.notify_all();
        // Freed queue space: the owning connection may have a parked
        // job waiting for it.
        slot.waker.wake();
        let mut finished = false;
        if !batch.is_empty() {
            // The lease (not the session's own context) is what caps the
            // machine-wide fan-out: the runner's session computes on a
            // context of exactly this width, so permits model threads.
            let _lease = exec.lease(threads_per_session);
            let mut runner = slot.runner.lock_clean();
            for job in batch {
                let data = matches!(job, Job::Packet(_) | Job::Frame(_));
                match runner.step(job) {
                    StepOutcome::Continue => {
                        if data {
                            counters.frames.inc();
                        }
                    }
                    StepOutcome::Finished => {
                        if data {
                            counters.frames.inc();
                        }
                        finished = true;
                        break;
                    }
                    StepOutcome::Failed => {
                        counters.errors.inc();
                        finished = true;
                        break;
                    }
                }
            }
        }
        let mut state = slot.state.lock_clean();
        if finished {
            state.dead = true;
            // order: Relaxed — see `Scheduler::try_enqueue`.
            sched
                .backlog
                .fetch_sub(state.pending.len(), Ordering::Relaxed);
            state.pending.clear();
            state.scheduled = false;
            drop(state);
            slot.space.notify_all();
            // `active` is NOT decremented here: the poller frees the
            // capacity slot when it removes the connection, ordering
            // the free against the next accept.
            slot.waker.wake();
        } else if state.pending.is_empty() {
            state.scheduled = false;
        } else {
            drop(state);
            sched.requeue(slot);
        }
    }
}

// ---------------------------------------------------------------------
// Session runners
// ---------------------------------------------------------------------

enum StepOutcome {
    Continue,
    Finished,
    Failed,
}

/// One live session: consumes jobs in stream order, queues responses
/// into its connection's outbox. A runner is only ever driven by one
/// worker at a time (see [`SlotState::scheduled`]).
trait SessionRunner {
    fn step(&mut self, job: Job) -> StepOutcome;
}

struct DecodeRunner<S> {
    sess: S,
    out: OutHandle,
    /// Geometry from the handshake; the decoded stream must match it,
    /// so clients can trust the negotiated size end to end.
    negotiated: (usize, usize),
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
}

impl<S: DecoderSession> DecodeRunner<S> {
    fn new(sess: S, negotiated: (usize, usize), version: u8, out: OutHandle) -> Self {
        DecodeRunner {
            sess,
            out,
            negotiated,
            version,
            bytes_per_frame: Vec::new(),
            bits_per_frame: Vec::new(),
            frame_types: Vec::new(),
            rate_per_frame: Vec::new(),
            total_bytes: 0,
        }
    }
}

impl<S: DecoderSession> SessionRunner for DecodeRunner<S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        match job {
            Job::Packet(packet) => {
                let bytes = packet.to_bytes();
                match self.sess.push_packet(&bytes) {
                    Ok(frame) if (frame.width(), frame.height()) != self.negotiated => {
                        self.out.hangup(Some(&format!(
                            "bitstream is {}x{}, negotiated {}x{}",
                            frame.width(),
                            frame.height(),
                            self.negotiated.0,
                            self.negotiated.1
                        )));
                        StepOutcome::Failed
                    }
                    Ok(frame) => {
                        self.bytes_per_frame.push(packet.payload.len());
                        self.bits_per_frame.push(bytes.len() as u64 * 8);
                        self.frame_types.push(packet.kind);
                        // The in-band rate governing this frame (stream
                        // header or a per-packet rate switch).
                        self.rate_per_frame.push(self.sess.last_rate().unwrap_or(0));
                        self.total_bytes += bytes.len();
                        let ok = write_frame_msg(&mut self.out, packet.frame_index, &frame)
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            self.out.hangup(None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        self.out.hangup(Some(&format!("decode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Frame(_) => {
                self.out.hangup(Some("raw frame on a decode stream"));
                StepOutcome::Failed
            }
            Job::Retarget(_) => {
                self.out.hangup(Some("rate retarget on a decode stream"));
                StepOutcome::Failed
            }
            Job::End => {
                let stats = StreamStats {
                    frames: self.bytes_per_frame.len(),
                    bytes_per_frame: std::mem::take(&mut self.bytes_per_frame),
                    bits_per_frame: std::mem::take(&mut self.bits_per_frame),
                    frame_types: std::mem::take(&mut self.frame_types),
                    rate_per_frame: std::mem::take(&mut self.rate_per_frame),
                    total_bytes: self.total_bytes,
                };
                let _ = write_stats_msg(&mut self.out, &stats, self.version);
                self.out.hangup(None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                self.out.hangup(Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

struct EncodeRunner<'env, S: EncoderSession> {
    sess: Option<S>,
    out: OutHandle,
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    /// Governor registration on a governed server: re-derives the
    /// granted rate mode before every frame, in stream order.
    gov: Option<Governed<'env, S::Rate>>,
}

impl<'env, S: EncoderSession> EncodeRunner<'env, S> {
    fn new(sess: S, version: u8, out: OutHandle, gov: Option<Governed<'env, S::Rate>>) -> Self {
        EncodeRunner {
            sess: Some(sess),
            out,
            version,
            gov,
        }
    }
}

impl<S: EncoderSession> SessionRunner for EncodeRunner<'_, S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        let Some(sess) = self.sess.as_mut() else {
            self.out.hangup(Some("stream already finished"));
            return StepOutcome::Failed;
        };
        match job {
            Job::Frame(frame) => {
                if let Some(gov) = self.gov.as_mut() {
                    if let Some(mode) = gov.refresh() {
                        sess.set_rate_mode(mode);
                    }
                }
                match sess.push_frame(&frame) {
                    Ok(packet) => {
                        let ok = write_packet_msg(&mut self.out, &packet)
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            self.out.hangup(None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        self.out.hangup(Some(&format!("encode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Packet(_) => {
                self.out.hangup(Some("coded packet on an encode stream"));
                StepOutcome::Failed
            }
            Job::Retarget(retarget) => {
                // Same conversion + plausibility bar as the handshake.
                match wire_rate_mode::<S::Rate>(retarget.target, retarget.rate) {
                    Ok(mode) => {
                        sess.set_rate_mode(mode);
                        if retarget.restart_gop {
                            sess.restart_gop();
                        }
                        StepOutcome::Continue
                    }
                    Err(e) => {
                        self.out.hangup(Some(&format!("retarget: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::End => {
                // Non-`None` by the guard at entry; `map` keeps this
                // arm total rather than panicking on a repeat End.
                let finished = self.sess.take().map(S::finish);
                // Release the governor share *before* the trailer goes
                // out: a client that has read its trailer may rely on
                // the share being back in the pool (determinism tests
                // sequence admissions against observed stream ends).
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                match finished {
                    Some(Ok(stats)) => {
                        let _ = write_stats_msg(&mut self.out, &stats, self.version);
                    }
                    Some(Err(e)) => {
                        let _ = write_error_msg(&mut self.out, &format!("finish: {e}"));
                    }
                    None => {}
                }
                self.out.hangup(None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                self.out.hangup(Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

/// An encode session that is also a broadcast publisher: every coded
/// packet is echoed back to the publishing client *and* published into
/// the broadcast for fan-out. The session runs in joinable-stream mode
/// (every intra carries a full stream header) and forces an intra
/// refresh every `gop` frames, so a late joiner's backlog always begins
/// with a self-describing packet at most one GOP in the past.
struct PublishRunner<'env, S: EncoderSession> {
    sess: Option<S>,
    out: OutHandle,
    /// Negotiated protocol version — fixes the stats-trailer layout.
    version: u8,
    guard: PublisherGuard,
    /// Relay GOP length: frames since the last intra before a forced
    /// refresh.
    gop: u32,
    since_intra: u32,
    counters: &'env Counters,
    /// Governor registration on a governed server: re-derives the
    /// granted rate mode before every frame, in stream order.
    gov: Option<Governed<'env, S::Rate>>,
}

impl<'env, S: EncoderSession> PublishRunner<'env, S> {
    fn new(
        sess: S,
        version: u8,
        out: OutHandle,
        guard: PublisherGuard,
        gop: u32,
        counters: &'env Counters,
        gov: Option<Governed<'env, S::Rate>>,
    ) -> Self {
        PublishRunner {
            sess: Some(sess),
            out,
            version,
            guard,
            gop: gop.max(1),
            since_intra: 0,
            counters,
            gov,
        }
    }
}

impl<S: EncoderSession> SessionRunner for PublishRunner<'_, S> {
    fn step(&mut self, job: Job) -> StepOutcome {
        let Some(sess) = self.sess.as_mut() else {
            self.out.hangup(Some("stream already finished"));
            return StepOutcome::Failed;
        };
        match job {
            Job::Frame(frame) => {
                if let Some(gov) = self.gov.as_mut() {
                    if let Some(mode) = gov.refresh() {
                        sess.set_rate_mode(mode);
                    }
                }
                if self.since_intra >= self.gop {
                    sess.restart_gop();
                }
                match sess.push_frame(&frame) {
                    Ok(packet) => {
                        self.since_intra = match packet.kind {
                            FrameKind::Intra => 1,
                            FrameKind::Predicted => self.since_intra + 1,
                        };
                        // Serialize once; subscribers get these exact
                        // bytes (Arc-shared), the publisher an echo of
                        // the same buffer — byte identity across every
                        // receiver is by construction.
                        let bytes = packet.to_bytes();
                        let evicted = self.guard.broadcast().publish(CachedPacket {
                            bytes: bytes.clone(),
                            payload_len: packet.payload.len(),
                            frame_index: packet.frame_index,
                            kind: packet.kind,
                            rate: sess.last_rate().unwrap_or(0),
                        });
                        if evicted > 0 {
                            self.counters.evicted.add(evicted as u64);
                        }
                        let ok = self
                            .out
                            .write_all(&[MSG_PACKET])
                            .and_then(|()| self.out.write_all(&bytes))
                            .and_then(|()| self.out.flush())
                            .is_ok();
                        if ok {
                            StepOutcome::Continue
                        } else {
                            self.guard.fail("publisher connection lost");
                            self.out.hangup(None);
                            StepOutcome::Failed
                        }
                    }
                    Err(e) => {
                        self.guard.fail(&format!("encode: {e}"));
                        self.out.hangup(Some(&format!("encode: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::Packet(_) => {
                self.out.hangup(Some("coded packet on a publish stream"));
                StepOutcome::Failed
            }
            Job::Retarget(retarget) => {
                match wire_rate_mode::<S::Rate>(retarget.target, retarget.rate) {
                    Ok(mode) => {
                        sess.set_rate_mode(mode);
                        if retarget.restart_gop {
                            sess.restart_gop();
                        }
                        StepOutcome::Continue
                    }
                    Err(e) => {
                        self.out.hangup(Some(&format!("retarget: {e}")));
                        StepOutcome::Failed
                    }
                }
            }
            Job::End => {
                // Non-`None` by the guard at entry (see `EncodeRunner`).
                let finished = self.sess.take().map(S::finish);
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                match finished {
                    Some(Ok(stats)) => {
                        let _ = write_stats_msg(&mut self.out, &stats, self.version);
                    }
                    Some(Err(e)) => {
                        let _ = write_error_msg(&mut self.out, &format!("finish: {e}"));
                    }
                    None => {}
                }
                self.guard.finish();
                self.out.hangup(None);
                StepOutcome::Finished
            }
            Job::Abort(message) => {
                if let Some(gov) = self.gov.as_mut() {
                    gov.end();
                }
                self.guard.fail(&message);
                self.out.hangup(Some(&message));
                StepOutcome::Failed
            }
        }
    }
}

// ---------------------------------------------------------------------
// Handshake validation helpers
// ---------------------------------------------------------------------

/// Builds a session rate mode from the wire's `(target, fixed rate)`
/// pair — the *single* conversion both the handshake and the mid-stream
/// `'R'` retarget go through, so the two paths can never drift apart in
/// what they accept. Note the hybrid QP domain is every byte (the
/// quantizer step extrapolates beyond the useful 0..=51, exactly as
/// before the rate-mode handshake existed), while CTVC validates
/// against the calibrated sweep.
fn wire_rate_mode<R: RateParam>(
    target: Option<TargetBppWire>,
    rate: u8,
) -> Result<RateMode<R>, String> {
    match target {
        Some(t) if t.milli_bpp == 0 => Err("target bpp must be positive".into()),
        Some(t) => Ok(RateMode::TargetBpp {
            bpp: t.bpp(),
            window: usize::from(t.window),
        }),
        None => Ok(RateMode::Fixed(R::from_wire(rate)?)),
    }
}

/// The codec-facing shape an accepted handshake resolves to, computed
/// *before* admission so every fallible wire conversion sits behind the
/// reject path and the runner construction below it cannot fail.
enum SessionPlan {
    CtvcDecode,
    HybridDecode,
    CtvcEncode(RateMode<RatePoint>),
    HybridEncode(RateMode<u8>),
    CtvcPublish(RateMode<RatePoint>),
    HybridPublish(RateMode<u8>),
}

impl SessionPlan {
    /// Resolves a non-subscribe handshake. [`validate_hello`] already
    /// accepted the rate, so this succeeds on every reachable input —
    /// routing the conversion through a `Result` anyway keeps the
    /// handshake total.
    fn resolve(hello: &Hello) -> Result<SessionPlan, String> {
        match (hello.family, hello.role) {
            (Family::Ctvc, Role::Decode) => Ok(SessionPlan::CtvcDecode),
            (Family::Hybrid, Role::Decode) => Ok(SessionPlan::HybridDecode),
            (Family::Ctvc, Role::Encode) => {
                wire_rate_mode::<RatePoint>(hello.target, hello.rate).map(SessionPlan::CtvcEncode)
            }
            (Family::Ctvc, Role::Publish) => {
                wire_rate_mode::<RatePoint>(hello.target, hello.rate).map(SessionPlan::CtvcPublish)
            }
            (Family::Hybrid, Role::Encode) => {
                wire_rate_mode::<u8>(hello.target, hello.rate).map(SessionPlan::HybridEncode)
            }
            (Family::Hybrid, Role::Publish) => {
                wire_rate_mode::<u8>(hello.target, hello.rate).map(SessionPlan::HybridPublish)
            }
            (_, Role::Subscribe) => Err("subscribe streams hold no codec session".into()),
        }
    }

    fn is_publish(&self) -> bool {
        matches!(
            self,
            SessionPlan::CtvcPublish(_) | SessionPlan::HybridPublish(_)
        )
    }
}

/// The rate byte a degraded admission acks: the rung the governor's
/// grant puts a fixed-rate session at for its first frame (closed-loop
/// sessions keep their bpp target, so their ack echoes the request).
/// Reuses the exact walk the runner takes, so the ack and frame one
/// can never disagree.
fn degraded_ack_rate(hello: &Hello, ratio: f64, floor: u32) -> u8 {
    if hello.target.is_some() {
        return hello.rate;
    }
    match hello.family {
        Family::Ctvc => RatePoint::from_wire(hello.rate)
            .map(|r| RatePoint::from_position(granted_position(&r, ratio, floor)).to_wire())
            .unwrap_or(hello.rate),
        Family::Hybrid => <u8 as RateParam>::from_wire(hello.rate)
            .map(|r| <u8 as RateParam>::from_position(granted_position(&r, ratio, floor)).to_wire())
            .unwrap_or(hello.rate),
    }
}

/// Turns a fresh admission into the runner-owned [`Governed`] wrapper,
/// recording what the session asked for so every later grant is derived
/// from the same request. The want is read off the already-converted
/// session rate mode, so no fallible wire conversion happens here.
fn claim_governed<'env, R: RateParam>(
    counters: &'env Counters,
    admit: GovAdmit<'env>,
    mode: &RateMode<R>,
) -> Option<Governed<'env, R>> {
    let want = match mode {
        RateMode::TargetBpp { bpp, window } => GovWant::TargetBpp {
            bpp: *bpp,
            window: *window,
        },
        RateMode::Fixed(rate) => GovWant::Fixed(*rate),
        // Callback/controller modes are not constructible from the
        // wire; dropping the admission (which releases its share)
        // leaves such a session ungoverned rather than inventing a
        // demand the governor cannot re-derive.
        RateMode::PerFrame(_) | RateMode::Controller(_) => return None,
    };
    let gov = admit.governor();
    Some(Governed::new(gov, counters, admit.claim(), want))
}

/// Validates the semantic half of a handshake against the served codecs.
/// Subscribe handshakes carry no rate of their own (the broadcast's rate
/// is what they get), so only their geometry is checked here — the rest
/// is validated against the named broadcast at attach time.
fn validate_hello(hello: &Hello) -> Result<(), String> {
    if hello.target.is_some() && !matches!(hello.role, Role::Encode | Role::Publish) {
        return Err("target-bpp mode only applies to encode streams".into());
    }
    match hello.family {
        Family::Ctvc => {
            if hello.role != Role::Subscribe {
                wire_rate_mode::<RatePoint>(hello.target, hello.rate)?;
            }
            if !hello.width.is_multiple_of(16) || !hello.height.is_multiple_of(16) {
                return Err(format!(
                    "CTVC streams need dimensions divisible by 16, got {}x{}",
                    hello.width, hello.height
                ));
            }
            Ok(())
        }
        Family::Hybrid if hello.role == Role::Subscribe => Ok(()),
        Family::Hybrid => wire_rate_mode::<u8>(hello.target, hello.rate).map(|_| ()),
    }
}

// ---------------------------------------------------------------------
// The poller
// ---------------------------------------------------------------------

/// What one socket read produced.
enum Input {
    Data(usize),
    Eof,
    Failed(io::Error),
    Block,
}

/// The event loop's state: every registered connection, the read/write
/// interest sets, and the timer wheel. Runs on the `nvc-serve` thread.
struct Poller<'p, 'env: 'p> {
    cfg: &'env ServeConfig,
    ctvc: &'env CtvcCodec,
    hybrid: &'env HybridCodec,
    // A shorter borrow than `'env`: the scheduler's queues hold
    // `Slot<'env>`s (invariant over `'env`), so borrowing it *for*
    // `'env` would demand the scheduler outlive its own drop.
    sched: &'p Scheduler<'env>,
    registry: &'env BroadcastRegistry,
    governor: Option<&'env Governor>,
    counters: &'env Counters,
    shared: Arc<PollShared>,
    conns: HashMap<u64, Conn<'env>>,
    /// Tokens whose sockets are read each pass: in-handshake, active
    /// non-parked sessions, and draining connections (reads discarded).
    /// Subscribers are write-only — their death surfaces on a write.
    /// Blocked writes are *not* swept per pass; they re-probe via
    /// [`TimerKind::WriteRetry`] entries on the wheel.
    read_set: HashSet<u64>,
    wheel: TimerWheel,
    fired: Vec<(u64, u32, TimerKind)>,
    next_token: u64,
    scratch: Vec<u8>,
}

impl<'p, 'env> Poller<'p, 'env> {
    #[allow(clippy::too_many_arguments)] // one borrow per serving subsystem
    fn new(
        cfg: &'env ServeConfig,
        ctvc: &'env CtvcCodec,
        hybrid: &'env HybridCodec,
        sched: &'p Scheduler<'env>,
        registry: &'env BroadcastRegistry,
        governor: Option<&'env Governor>,
        counters: &'env Counters,
        shared: Arc<PollShared>,
    ) -> Self {
        Poller {
            cfg,
            ctvc,
            hybrid,
            sched,
            registry,
            governor,
            counters,
            shared,
            conns: HashMap::new(),
            read_set: HashSet::new(),
            wheel: {
                let mut wheel = TimerWheel::new();
                wheel.set_fire_lag(counters.fire_lag_us.clone());
                wheel
            },
            fired: Vec::new(),
            next_token: 0,
            scratch: vec![0u8; 64 * 1024],
        }
    }

    /// Recomputes whether `token`'s socket should be read each pass.
    fn sync_interest(&mut self, token: u64) {
        let want = match self.conns.get(&token) {
            Some(conn) => {
                conn.draining
                    || match &conn.kind {
                        ConnKind::Hello(_) => true,
                        ConnKind::Session { ended, parked, .. } => !*ended && parked.is_none(),
                        ConnKind::Subscriber { .. } | ConnKind::Finishing => false,
                    }
            }
            None => false,
        };
        if want {
            self.read_set.insert(token);
        } else {
            self.read_set.remove(&token);
        }
    }

    /// Registers a fresh accept: nonblocking socket, handshake decoder,
    /// deadline on the wheel.
    fn register(&mut self, sock: TcpStream, now: Instant) {
        let _ = sock.set_nodelay(true);
        if sock.set_nonblocking(true).is_err() {
            self.counters.rejected.inc();
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.wheel.arm(
            token,
            0,
            TimerKind::Handshake,
            now + self.cfg.handshake_timeout,
        );
        self.conns.insert(
            token,
            Conn {
                sock,
                out: Arc::new(Mutex::new(OutState::default())),
                gen: 0,
                draining: false,
                stalled_since: None,
                retry_backoff: RETRY_MIN,
                retry_armed: false,
                kind: ConnKind::Hello(HelloDecoder::new()),
            },
        );
        self.read_set.insert(token);
    }

    /// Rejects an in-progress handshake (or kills an established
    /// connection) with an `'X'` notice: queue the message and a
    /// draining close, count it, and stop feeding the protocol machine.
    fn reject(&mut self, token: u64, message: &str) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.kind = ConnKind::Finishing;
            conn.gen = conn.gen.wrapping_add(1);
            queue_hangup(&conn.out, Some(message));
        }
        self.counters.rejected.inc();
        self.sync_interest(token);
    }

    /// Unregisters a connection. `lost` says the peer vanished with the
    /// stream still live — an established session then still needs its
    /// runner driven once (governor share release, publisher failure),
    /// so a synthesized abort is queued for the workers.
    fn remove_conn(&mut self, token: u64, lost: bool) {
        self.read_set.remove(&token);
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        match conn.kind {
            ConnKind::Session {
                slot,
                decoder,
                ended,
                ..
            } => {
                if lost && !ended {
                    let _ = self
                        .sched
                        .try_enqueue(&slot, Job::Abort(decoder.interrupt(None)));
                }
                // The capacity slot frees *here*, on the poller thread:
                // strictly after this session's last byte went out and
                // strictly before the next accept is admitted, so a
                // client that saw the trailer can always reconnect.
                self.counters.active.sub(1);
            }
            ConnKind::Subscriber { ring, .. } => {
                ring.detach();
                self.counters.active_subscribers.sub(1);
            }
            ConnKind::Hello(_) | ConnKind::Finishing => {}
        }
    }

    /// Services one woken token: phase-specific forward progress, then
    /// the outbox.
    fn service(&mut self, token: u64, now: Instant) {
        enum Act {
            Drive,
            Pump,
            Nothing,
        }
        let act = match self.conns.get(&token) {
            Some(conn) => match &conn.kind {
                ConnKind::Session { .. } => Act::Drive,
                ConnKind::Subscriber { .. } => Act::Pump,
                _ => Act::Nothing,
            },
            None => return,
        };
        match act {
            Act::Drive => self.drive_session(token),
            Act::Pump => {
                self.flush_subscriber(token, now);
                return;
            }
            Act::Nothing => {}
        }
        // A socket known to be blocked can't take the new bytes anyway;
        // its pending `WriteRetry` probe rediscovers writability.
        // Skipping the attempt keeps a frame's fan-out from paying one
        // futile `EAGAIN` per stalled subscriber.
        let blocked = self
            .conns
            .get(&token)
            .is_some_and(|conn| conn.stalled_since.is_some());
        if !blocked {
            self.apply_write(token, now);
        }
    }

    /// Drains a subscriber's ring through its outbox until the ring
    /// runs dry, the socket blocks, or the connection goes terminal.
    ///
    /// The loop matters: [`pump`](Server::pump) stops
    /// moving ring packets while the outbox sits at its cap, and a
    /// terminal ring state (closed broadcast, eviction notice) stays
    /// parked *behind* that backlog — with its one-shot ring wake long
    /// spent. One pump-then-write round would strand the tail the
    /// moment the writes catch up, so keep refilling while bytes move.
    /// A socket known to be blocked is left to its pending
    /// [`TimerKind::WriteRetry`] probe — no futile `EAGAIN` per pass.
    fn flush_subscriber(&mut self, token: u64, now: Instant) {
        loop {
            self.pump(token);
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.draining || conn.stalled_since.is_some() {
                return;
            }
            if !self.apply_write(token, now) {
                return;
            }
        }
    }

    /// Decodes buffered session bytes into jobs until the buffer runs
    /// dry, the queue fills (job parked, reads paused), or the stream
    /// terminates.
    fn drive_session(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let ConnKind::Session {
                slot,
                decoder,
                parked,
                ended,
            } = &mut conn.kind
            else {
                return;
            };
            if *ended {
                break;
            }
            let job = if let Some(job) = parked.take() {
                job
            } else {
                match decoder.next_msg() {
                    Ok(Some(WireMsg::Packet(packet))) => Job::Packet(packet),
                    // The frame index is client-assigned bookkeeping the
                    // encoder re-derives; drop it exactly as the old
                    // blocking reader did.
                    Ok(Some(WireMsg::Frame(_, frame))) => Job::Frame(frame),
                    Ok(Some(WireMsg::Retarget(retarget))) => Job::Retarget(retarget),
                    Ok(Some(WireMsg::End)) => Job::End,
                    Ok(None) => break,
                    Err(message) => Job::Abort(message),
                }
            };
            let control = job.is_control();
            match self.sched.try_enqueue(slot, job) {
                Enqueue::Queued => {
                    if control {
                        *ended = true;
                        break;
                    }
                }
                Enqueue::Full(job) => {
                    *parked = Some(job);
                    break;
                }
                Enqueue::Dead => {
                    *ended = true;
                    break;
                }
            }
        }
        self.sync_interest(token);
    }

    /// Transfers ring packets into a subscriber's outbox (bounded by the
    /// outbox cap); marks the subscription done on a terminal ring state.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let ConnKind::Subscriber {
            ring,
            stats,
            version,
            done,
        } = &mut conn.kind
        {
            if !*done {
                *done = pump_subscriber(ring, &conn.out, stats, *version);
            }
        }
    }

    /// Drains a connection's outbox into its socket and applies the
    /// outcome: stall tracking, queued closes, peer death. Returns
    /// whether any bytes moved.
    fn apply_write(&mut self, token: u64, now: Instant) -> bool {
        let status = {
            let Some(conn) = self.conns.get(&token) else {
                return false;
            };
            if conn.draining {
                return false;
            }
            service_writes(&conn.sock, &conn.out)
        };
        match status {
            WriteStatus::Idle => {
                self.clear_stall(token);
                false
            }
            WriteStatus::Progress => {
                self.clear_stall(token);
                true
            }
            WriteStatus::Blocked { progressed } => {
                let (stall, retry) = {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return progressed;
                    };
                    let first = conn.stalled_since.is_none();
                    if progressed || first {
                        conn.stalled_since = Some(now);
                    }
                    if progressed {
                        // The peer is draining, just slower than we
                        // write; probe promptly again.
                        conn.retry_backoff = RETRY_MIN;
                    }
                    let retry = (!conn.retry_armed).then(|| {
                        conn.retry_armed = true;
                        let delay = conn.retry_backoff;
                        conn.retry_backoff = (conn.retry_backoff * 2).min(RETRY_MAX);
                        (conn.gen, delay)
                    });
                    (first.then_some(conn.gen), retry)
                };
                if let Some(gen) = stall {
                    self.wheel.arm(
                        token,
                        gen,
                        TimerKind::WriteStall,
                        now + self.cfg.write_timeout,
                    );
                }
                if let Some((gen, delay)) = retry {
                    self.wheel
                        .arm(token, gen, TimerKind::WriteRetry, now + delay);
                }
                progressed
            }
            WriteStatus::Gone => {
                self.remove_conn(token, true);
                true
            }
            WriteStatus::Close(CloseKind::Graceful) => {
                if let Some(conn) = self.conns.get(&token) {
                    let _ = conn.sock.shutdown(Shutdown::Both);
                }
                self.remove_conn(token, false);
                true
            }
            WriteStatus::Close(CloseKind::Drain) => {
                // Half-close so the peer sees the notice plus EOF, then
                // give it a bounded window to read before the hard
                // close — the old post-error drain, now on the wheel.
                let gen = {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return true;
                    };
                    let _ = conn.sock.shutdown(Shutdown::Write);
                    conn.draining = true;
                    conn.stalled_since = None;
                    conn.gen = conn.gen.wrapping_add(1);
                    conn.gen
                };
                self.wheel
                    .arm(token, gen, TimerKind::Drain, now + DRAIN_TIMEOUT);
                self.sync_interest(token);
                true
            }
        }
    }

    fn clear_stall(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.stalled_since = None;
            conn.retry_backoff = RETRY_MIN;
        }
    }

    /// One nonblocking read on a read-interested connection.
    fn service_read(&mut self, token: u64, now: Instant) -> bool {
        let input = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match (&conn.sock).read(&mut self.scratch) {
                Ok(0) => Input::Eof,
                Ok(n) => Input::Data(n),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) =>
                {
                    Input::Block
                }
                Err(e) => Input::Failed(e),
            }
        };
        match input {
            Input::Block => false,
            Input::Data(n) => {
                self.on_bytes(token, n, now);
                true
            }
            Input::Eof => {
                self.on_read_lost(token, None, now);
                true
            }
            Input::Failed(e) => {
                self.on_read_lost(token, Some(e), now);
                true
            }
        }
    }

    /// Routes `n` fresh bytes into the connection's protocol machine.
    fn on_bytes(&mut self, token: u64, n: usize, now: Instant) {
        enum Next {
            Establish(Hello, Vec<u8>),
            Reject(String),
            Drive,
            Nothing,
        }
        let next = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.draining {
                // Post-error drain: discard whatever the peer sends.
                Next::Nothing
            } else {
                match &mut conn.kind {
                    ConnKind::Hello(decoder) => match decoder.feed(&self.scratch[..n]) {
                        Ok(Some(hello)) => Next::Establish(hello, decoder.take_rest()),
                        Ok(None) => Next::Nothing,
                        Err(e) => Next::Reject(format!("handshake: {e}")),
                    },
                    ConnKind::Session { decoder, ended, .. } if !*ended => {
                        decoder.feed(&self.scratch[..n]);
                        Next::Drive
                    }
                    _ => Next::Nothing,
                }
            }
        };
        match next {
            Next::Establish(hello, rest) => self.establish(token, hello, rest, now),
            Next::Reject(message) => {
                self.reject(token, &message);
                self.apply_write(token, now);
            }
            Next::Drive => {
                self.drive_session(token);
                self.apply_write(token, now);
            }
            Next::Nothing => {}
        }
    }

    /// The read side died (EOF or a hard error): reproduce the old
    /// blocking reader's diagnostics from the decoder's buffered state.
    fn on_read_lost(&mut self, token: u64, err: Option<io::Error>, now: Instant) {
        enum Next {
            CloseNow,
            Reject(String),
            Abort(String),
            Nothing,
        }
        let next = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.draining {
                Next::CloseNow
            } else {
                match &conn.kind {
                    ConnKind::Hello(decoder) => {
                        Next::Reject(format!("handshake: {}", decoder.interrupt(err)))
                    }
                    ConnKind::Session { decoder, ended, .. } if !*ended => {
                        Next::Abort(decoder.interrupt(err))
                    }
                    _ => Next::Nothing,
                }
            }
        };
        match next {
            Next::CloseNow => {
                if let Some(conn) = self.conns.get(&token) {
                    let _ = conn.sock.shutdown(Shutdown::Both);
                }
                self.remove_conn(token, false);
            }
            Next::Reject(message) => {
                self.reject(token, &message);
                self.apply_write(token, now);
            }
            Next::Abort(message) => {
                {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    let ConnKind::Session {
                        slot,
                        parked,
                        ended,
                        ..
                    } = &mut conn.kind
                    else {
                        return;
                    };
                    *parked = None;
                    let _ = self.sched.try_enqueue(slot, Job::Abort(message));
                    *ended = true;
                }
                self.sync_interest(token);
            }
            Next::Nothing => {
                self.sync_interest(token);
            }
        }
    }

    /// Handles every due timer. Returns whether any acted.
    fn on_timers(&mut self, now: Instant) -> bool {
        self.wheel.advance(now, &mut self.fired);
        let mut acted = false;
        while let Some((token, gen, kind)) = self.fired.pop() {
            acted |= self.on_timer(token, gen, kind, now);
        }
        acted
    }

    fn on_timer(&mut self, token: u64, gen: u32, kind: TimerKind, now: Instant) -> bool {
        let Some(conn) = self.conns.get(&token) else {
            return false;
        };
        // Stale: the connection changed phase after arming.
        if conn.gen != gen {
            return false;
        }
        match kind {
            TimerKind::Handshake => {
                let message = match &conn.kind {
                    ConnKind::Hello(decoder) => format!(
                        "handshake: {}",
                        decoder.interrupt(Some(io::Error::new(
                            ErrorKind::TimedOut,
                            "handshake deadline exceeded",
                        )))
                    ),
                    _ => return false,
                };
                self.counters.timer_fires.inc();
                self.reject(token, &message);
                self.apply_write(token, now);
                true
            }
            TimerKind::WriteStall => {
                let Some(since) = conn.stalled_since else {
                    return false;
                };
                if now.saturating_duration_since(since) >= self.cfg.write_timeout {
                    self.counters.timer_fires.inc();
                    self.remove_conn(token, true);
                    true
                } else {
                    // Progress reset the stall clock after arming;
                    // re-arm for the remainder (not counted as a fire).
                    self.wheel.arm(
                        token,
                        gen,
                        TimerKind::WriteStall,
                        since + self.cfg.write_timeout,
                    );
                    false
                }
            }
            TimerKind::WriteRetry => {
                let blocked = conn.stalled_since.is_some();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.retry_armed = false;
                }
                if !blocked {
                    // Progress beat the probe; the backoff was already
                    // reset and nothing is pending.
                    return false;
                }
                self.counters.timer_fires.inc();
                let acted = self.apply_write(token, now);
                // A probe that cleared the stall may have exposed ring
                // backlog (or an eviction notice) the pump parked under
                // outbox backpressure; drain it now or it starves.
                self.flush_subscriber(token, now);
                acted
            }
            TimerKind::Drain => {
                if !conn.draining {
                    return false;
                }
                self.counters.timer_fires.inc();
                let _ = conn.sock.shutdown(Shutdown::Both);
                self.remove_conn(token, false);
                true
            }
        }
    }

    /// The event loop. Exits when `stop` is raised or the listener
    /// fails hard.
    fn poll_loop(&mut self, listener: &TcpListener, stop: &AtomicBool) {
        self.shared.register_thread();
        let mut wakes: Vec<u64> = Vec::new();
        let mut tokens: Vec<u64> = Vec::new();
        let mut backoff = Duration::from_micros(200);
        loop {
            // order: Relaxed — the stop latch is re-polled every pass;
            // `ServerHandle::stop_and_join` joins for the real sync.
            if stop.load(Ordering::Relaxed) {
                break;
            }
            self.counters.poll_wakeups.inc();
            let mut progress = false;
            let mut fatal = false;
            // 1. Accept everything pending.
            let now = Instant::now();
            loop {
                match listener.accept() {
                    Ok((sock, _)) => {
                        self.register(sock, now);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            self.counters
                .max_registered
                .record_max(self.conns.len() as i64);
            // 2. Service explicit wakes (worker flushes, ring pushes,
            // freed queue space).
            wakes.clear();
            if let Some(since) = self.shared.drain(&mut wakes) {
                self.counters
                    .wake_latency_us
                    .record(nvc_telemetry::epoch_micros().saturating_sub(since));
            }
            if !wakes.is_empty() {
                progress = true;
                wakes.sort_unstable();
                wakes.dedup();
                let now = Instant::now();
                for &token in &wakes {
                    self.service(token, now);
                }
            }
            // 3. Read every read-interested socket once.
            tokens.clear();
            tokens.extend(self.read_set.iter().copied());
            let now = Instant::now();
            for &token in &tokens {
                progress |= self.service_read(token, now);
            }
            // 4. Fire due timers (including blocked-write re-probes —
            // no socket is swept per pass just for being blocked).
            progress |= self.on_timers(Instant::now());
            if fatal {
                break;
            }
            // 5. Park. Live readers cap the park low; otherwise sleep
            // until the next timer or the idle backstop. A wake landing
            // between drain and park makes park return immediately
            // (sticky unpark permit), so nothing is lost.
            if progress {
                backoff = Duration::from_micros(200);
                continue;
            }
            self.counters.spurious_polls.inc();
            let cap = if !self.read_set.is_empty() {
                Duration::from_millis(2)
            } else {
                POLL
            };
            backoff = (backoff * 2).min(cap);
            let mut park = backoff;
            if let Some(deadline) = self.wheel.next_deadline() {
                park = park.min(deadline.saturating_duration_since(Instant::now()));
            }
            if !park.is_zero() {
                let _park = self.counters.park_us.time();
                std::thread::park_timeout(park);
            }
        }
        // Shutdown sweep: one best-effort flush so trailers already
        // queued have a chance to leave, then drop every socket.
        tokens.clear();
        tokens.extend(self.conns.keys().copied());
        let now = Instant::now();
        for &token in &tokens {
            self.apply_write(token, now);
        }
    }

    /// Completes a handshake: structural validation already passed (the
    /// `Hello` parsed); this is semantic validation, admission, the ack,
    /// and the phase change to a live session or subscriber. `rest` is
    /// whatever the client pipelined behind its `Hello`.
    fn establish(&mut self, token: u64, hello: Hello, rest: Vec<u8>, now: Instant) {
        if let Err(reason) = validate_hello(&hello) {
            self.reject(token, &format!("handshake: {reason}"));
            self.apply_write(token, now);
            return;
        }
        // Subscribers take a different path entirely: no codec session,
        // no pool slot — just an attach and a ring-fed outbox.
        if hello.role == Role::Subscribe {
            self.establish_subscriber(token, hello, now);
            return;
        }
        let plan = match SessionPlan::resolve(&hello) {
            Ok(plan) => plan,
            Err(reason) => {
                self.reject(token, &format!("handshake: {reason}"));
                self.apply_write(token, now);
                return;
            }
        };
        // The connection's outbox and peer identity, captured before
        // any admission state changes hands — nothing to unwind if the
        // token already raced away.
        let (out, peer) = match self.conns.get(&token) {
            Some(conn) => (
                Arc::clone(&conn.out),
                conn.sock.peer_addr().ok().map(|p| p.ip().to_string()),
            ),
            None => return,
        };
        // Atomic admission (reserve-then-ack): handshakes race for
        // slots under the cap, never past it.
        if !self.counters.active.try_inc(self.cfg.max_sessions as i64) {
            self.reject(token, "server at session capacity");
            self.apply_write(token, now);
            return;
        }
        // Governed admission: backlog-aware for every session,
        // budget-aware for the bandwidth-bearing roles. The three-step
        // response — admit, admit-degraded (the ack says so), reject
        // with a clean 'X' — all resolves here, before the ack.
        let mut gov_admit: Option<GovAdmit<'env>> = None;
        if let Some(gov) = self.governor {
            let backlog = self.sched.backlog();
            let admitted = if matches!(hello.role, Role::Encode | Role::Publish) {
                let pixels = (hello.width * hello.height) as f64;
                let want = match hello.target {
                    Some(t) => t.bpp() * pixels,
                    None => gov.config().assumed_bpp * pixels,
                };
                let client = hello
                    .client
                    .clone()
                    .or_else(|| peer.clone())
                    .unwrap_or_else(|| "unknown-peer".into());
                gov.admit(&client, want, backlog)
                    .map(|(id, ratio)| Some(GovAdmit::new(gov, id, ratio)))
            } else {
                gov.check_backlog(backlog).map(|()| None)
            };
            match admitted {
                Ok(admit) => {
                    self.counters.gov_admit.inc();
                    if let Some(admit) = &admit {
                        self.counters
                            .gov_grant_ratio_pct
                            .record((admit.ratio() * 100.0).round() as u64);
                        if admit.ratio() < 1.0 {
                            self.counters.gov_degraded_admit.inc();
                        }
                    }
                    gov_admit = admit;
                }
                Err(reason) => {
                    self.counters.gov_reject.inc();
                    self.counters.active.sub(1);
                    self.reject(token, &format!("admission: {reason}"));
                    self.apply_write(token, now);
                    return;
                }
            }
        }
        // Publish streams claim their broadcast name *before* the ack,
        // so a duplicate name is a handshake rejection, not a
        // mid-stream abort.
        let relay_gop: u16 = if hello.gop != 0 {
            hello.gop
        } else {
            self.cfg.broadcast_gop.clamp(1, usize::from(u16::MAX)) as u16
        };
        let mut publish_guard = None;
        if hello.role == Role::Publish {
            let name = hello.broadcast.as_deref().unwrap_or_default();
            let info = BroadcastInfo {
                family: hello.family,
                width: hello.width,
                height: hello.height,
                gop: relay_gop,
            };
            match self.registry.create(name, info, hello.rate) {
                Ok(guard) => publish_guard = Some(guard),
                Err(reason) => {
                    self.counters.active.sub(1);
                    self.reject(token, &format!("handshake: {reason}"));
                    self.apply_write(token, now);
                    return;
                }
            }
        }
        let ack = match &gov_admit {
            Some(admit) if admit.ratio() < 1.0 => Ack {
                rate: degraded_ack_rate(
                    &hello,
                    admit.ratio(),
                    self.governor.map_or(0, |g| g.config().min_position),
                ),
                degraded: true,
            },
            _ => Ack {
                rate: hello.rate,
                degraded: false,
            },
        };
        // A publish plan must have claimed its broadcast name above;
        // recover by rejecting (not panicking) if that pairing ever
        // breaks. The dropped `gov_admit` returns its share on its own.
        if plan.is_publish() && publish_guard.is_none() {
            self.counters.active.sub(1);
            self.reject(token, "internal: publish stream without a broadcast claim");
            self.apply_write(token, now);
            return;
        }
        let waker = PollWaker::new(Arc::clone(&self.shared), token);
        push_bytes(&out, ack_msg_bytes(hello.version, &ack));
        self.counters.sessions.inc();

        let negotiated = (hello.width, hello.height);
        let version = hello.version;
        let counters = self.counters;
        let out_handle = OutHandle::new(Arc::clone(&out), waker.clone());
        let runner: Box<dyn SessionRunner + Send + 'env> = match plan {
            SessionPlan::CtvcDecode => Box::new(DecodeRunner::new(
                self.ctvc.start_decode(),
                negotiated,
                version,
                out_handle,
            )),
            SessionPlan::HybridDecode => Box::new(DecodeRunner::new(
                self.hybrid.start_decode(),
                negotiated,
                version,
                out_handle,
            )),
            SessionPlan::CtvcEncode(mode) => {
                let governed = gov_admit.and_then(|admit| claim_governed(counters, admit, &mode));
                Box::new(EncodeRunner::new(
                    self.ctvc.start_encode(mode),
                    version,
                    out_handle,
                    governed,
                ))
            }
            SessionPlan::HybridEncode(mode) => {
                let governed = gov_admit.and_then(|admit| claim_governed(counters, admit, &mode));
                Box::new(EncodeRunner::new(
                    self.hybrid.start_encode(mode),
                    version,
                    out_handle,
                    governed,
                ))
            }
            SessionPlan::CtvcPublish(mode) => {
                let governed = gov_admit.and_then(|admit| claim_governed(counters, admit, &mode));
                let mut sess = self.ctvc.start_encode(mode);
                let joinable = sess.set_join_headers(true);
                debug_assert!(joinable, "served CTVC codec lacks joinable-stream mode");
                let Some(guard) = publish_guard.take() else {
                    // Checked non-`None` before the ack went out.
                    self.counters.active.sub(1);
                    self.remove_conn(token, false);
                    return;
                };
                Box::new(PublishRunner::new(
                    sess,
                    version,
                    out_handle,
                    guard,
                    u32::from(relay_gop),
                    counters,
                    governed,
                ))
            }
            SessionPlan::HybridPublish(mode) => {
                let governed = gov_admit.and_then(|admit| claim_governed(counters, admit, &mode));
                let mut sess = self.hybrid.start_encode(mode);
                let joinable = sess.set_join_headers(true);
                debug_assert!(joinable, "served hybrid codec lacks joinable-stream mode");
                let Some(guard) = publish_guard.take() else {
                    // Checked non-`None` before the ack went out.
                    self.counters.active.sub(1);
                    self.remove_conn(token, false);
                    return;
                };
                Box::new(PublishRunner::new(
                    sess,
                    version,
                    out_handle,
                    guard,
                    u32::from(relay_gop),
                    counters,
                    governed,
                ))
            }
        };
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::default()),
            space: Condvar::new(),
            runner: Mutex::new(runner),
            waker,
        });
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                // The token raced away mid-establish: free the capacity
                // slot the admission above reserved (dropping the slot's
                // runner releases any governor share and publish claim).
                self.counters.active.sub(1);
                return;
            };
            conn.gen = conn.gen.wrapping_add(1);
            let mut decoder = MsgDecoder::new(hello.role, hello.version, hello.width, hello.height);
            // Bytes the client pipelined behind its Hello.
            decoder.feed(&rest);
            conn.kind = ConnKind::Session {
                slot,
                decoder,
                parked: None,
                ended: false,
            };
        }
        self.drive_session(token);
        self.apply_write(token, now);
    }

    /// The subscriber half of [`Poller::establish`]: resolves the named
    /// broadcast, validates the handshake against its fixed facts,
    /// attaches, queues the ack plus the `'J'` join info and the backlog,
    /// and flips the connection into ring-fed mode.
    fn establish_subscriber(&mut self, token: u64, hello: Hello, now: Instant) {
        let name = hello.broadcast.as_deref().unwrap_or_default();
        let Some(broadcast) = self.registry.get(name) else {
            self.reject(token, &format!("handshake: no broadcast named {name:?}"));
            self.apply_write(token, now);
            return;
        };
        let info = broadcast.info();
        if info.family != hello.family {
            self.reject(
                token,
                &format!(
                    "handshake: broadcast {name:?} serves {:?} streams, not {:?}",
                    info.family, hello.family
                ),
            );
            self.apply_write(token, now);
            return;
        }
        if (info.width, info.height) != (hello.width, hello.height) {
            self.reject(
                token,
                &format!(
                    "handshake: broadcast {name:?} is {}x{}, requested {}x{}",
                    info.width, info.height, hello.width, hello.height
                ),
            );
            self.apply_write(token, now);
            return;
        }
        // Subscriber admission is separate from session admission: a
        // subscriber holds no codec state and no pool slot, so the cap
        // is orders of magnitude higher.
        if !self
            .counters
            .active_subscribers
            .try_inc(self.cfg.max_subscribers as i64)
        {
            self.reject(token, "server at subscriber capacity");
            self.apply_write(token, now);
            return;
        }
        let attachment = match broadcast.attach(self.cfg.subscriber_ring) {
            Ok(attachment) => attachment,
            Err(reason) => {
                self.counters.active_subscribers.sub(1);
                self.reject(token, &format!("handshake: {reason}"));
                self.apply_write(token, now);
                return;
            }
        };
        let join = JoinInfo {
            family: info.family,
            width: info.width,
            height: info.height,
            start_index: attachment.start_index,
            rate: attachment.rate,
            gop: info.gop,
        };
        let ack = Ack {
            rate: attachment.rate,
            degraded: false,
        };
        let mut bytes = ack_msg_bytes(hello.version, &ack);
        if write_join_msg(&mut bytes, &join).is_err() {
            // The broadcast's geometry was wire-validated when it was
            // created, so a failed re-encode is unreachable; unwind the
            // attach rather than panicking if it ever happens.
            attachment.ring.detach();
            self.counters.active_subscribers.sub(1);
            self.reject(token, "handshake: broadcast geometry not encodable");
            self.apply_write(token, now);
            return;
        }
        let Some(out) = self.conns.get(&token).map(|conn| Arc::clone(&conn.out)) else {
            attachment.ring.detach();
            self.counters.active_subscribers.sub(1);
            return;
        };
        push_bytes(&out, bytes);
        self.counters.subscribers.inc();
        // Ring pushes from the publisher's worker now wake this token.
        attachment
            .ring
            .set_notify(PollWaker::new(Arc::clone(&self.shared), token));
        // The join-time backlog (at most one GOP segment) goes straight
        // into the outbox, bypassing the pump's cap, and is accounted in
        // the trailer like every later packet.
        let mut stats = SubscriberStats::default();
        for packet in &attachment.backlog {
            stats.account(packet);
            push_shared(&out, Arc::clone(packet));
        }
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                attachment.ring.detach();
                self.counters.active_subscribers.sub(1);
                return;
            };
            conn.gen = conn.gen.wrapping_add(1);
            conn.kind = ConnKind::Subscriber {
                ring: Arc::clone(&attachment.ring),
                stats: Some(stats),
                version: hello.version,
                done: false,
            };
        }
        self.sync_interest(token);
        self.flush_subscriber(token, now);
    }
}

// ---------------------------------------------------------------------
// The serve loop
// ---------------------------------------------------------------------

fn run(
    listener: TcpListener,
    cfg: ServeConfig,
    ctvc: CtvcCodec,
    hybrid: HybridCodec,
    stop: &AtomicBool,
    counters: &Counters,
    shared: Arc<PollShared>,
) {
    let hardware = nvc_core::ExecCtx::auto().threads();
    let workers = if cfg.workers == 0 {
        hardware
    } else {
        cfg.workers
    };
    let threads_per_session = cfg.threads_per_session.max(1);
    let exec = ExecPool::new(cfg.exec_cap);
    let registry = BroadcastRegistry::new();
    // Default compute-admission ceiling: the deepest backlog the slot
    // queues can legitimately hold at once.
    let governor = cfg
        .governor
        .clone()
        .map(|gov_cfg| Governor::new(gov_cfg, cfg.queue_depth.max(1) * cfg.max_sessions.max(1)));
    let sched = Scheduler::new(cfg.queue_depth, cfg.gop_batch);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| worker_loop(&sched, &exec, threads_per_session, stop, counters));
        }
        // The poller runs right here on the `nvc-serve` thread: one
        // event loop for the listener and every connection.
        let mut poller = Poller::new(
            &cfg,
            &ctvc,
            &hybrid,
            &sched,
            &registry,
            governor.as_ref(),
            counters,
            Arc::clone(&shared),
        );
        poller.poll_loop(&listener, stop);
        // order: Relaxed — workers re-poll the latch under the notified
        // condvar; the scope join below is the synchronization point.
        stop.store(true, Ordering::Relaxed);
        sched.work.notify_all();
        registry.fail_all("server shutting down");
    });
}

// ---------------------------------------------------------------------
// The live metrics endpoint
// ---------------------------------------------------------------------

/// Accept loop for the metrics listener: every connection gets one
/// snapshot and is closed. Runs on the `nvc-metrics` thread; never
/// touches the serving poller or any session state — a scrape can slow
/// nothing but itself.
fn metrics_loop(listener: &TcpListener, stop: &AtomicBool, counters: &Counters) {
    // order: Relaxed — a stop latch re-polled every accept round.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut sock, _)) => {
                let _ = answer_scrape(&mut sock, counters);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Writes one HTTP/1.0 response carrying the metrics snapshot. The
/// request itself is drained best-effort and ignored: whatever path was
/// asked, the answer is the same text snapshot.
fn answer_scrape(sock: &mut TcpStream, counters: &Counters) -> io::Result<()> {
    sock.set_nonblocking(false)?;
    sock.set_read_timeout(Some(Duration::from_millis(500)))?;
    sock.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut request = [0u8; 1024];
    let _ = sock.read(&mut request);
    let body = metrics_snapshot(counters);
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    sock.write_all(header.as_bytes())?;
    sock.write_all(body.as_bytes())?;
    sock.flush()
}

/// One text snapshot: the server's own registry (serving counters,
/// poller and governor histograms), the process-global registry
/// (kernel, codec, pool and ring metrics), and the most recent spans.
fn metrics_snapshot(counters: &Counters) -> String {
    use std::fmt::Write as _;
    let mut out = counters.registry.render();
    out.push_str(&Registry::global().render());
    let spans = nvc_telemetry::recent_spans(32);
    if !spans.is_empty() {
        out.push_str("# recent spans: name start_us dur_us\n");
        for s in spans {
            let _ = writeln!(out, "# span {} {} {}", s.name, s.start_us, s.dur_us);
        }
    }
    out
}

/// Fetches one metrics snapshot from a server's live endpoint (see
/// [`ServeConfig::metrics_addr`]) and returns the response body.
///
/// # Errors
///
/// Returns an error if the endpoint cannot be reached or the response
/// is not valid UTF-8.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut sock = TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let _ = sock.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(ErrorKind::InvalidData, "metrics response not UTF-8"))?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_, body)) => body,
        None => &text,
    };
    Ok(body.to_string())
}
