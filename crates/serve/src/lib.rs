//! `nvc-serve` — a `std::net`-only multi-session streaming server and
//! client library for the workspace's codecs.
//!
//! The packet container ([`nvc_entropy::container::Packet`]: length
//! prefix + CRC) and the session API
//! ([`nvc_video::codec::EncoderSession`] / [`DecoderSession`]) were built
//! transport-shaped; this crate is the transport. A connection speaks a
//! small tagged-message protocol (see [`proto`]):
//!
//! 1. a [`Hello`] handshake fixes the codec family (learned CTVC-Net or
//!    the classical hybrid), the stream geometry, the rate mode —
//!    fixed `RatePoint`/QP, validated server-side, or closed-loop
//!    target-bpp ([`Hello::with_target_bpp`]) — and the *direction*:
//!    whether the server runs the encoder (raw frames in, packets out)
//!    or the decoder (packets in, reconstructed frames out);
//! 2. length-delimited messages stream one coded [`Packet`] or one raw
//!    frame at a time, each answered in order by the opposite kind; an
//!    encode stream may interleave [`Retarget`] messages (`'R'`) to
//!    switch its rate mode mid-stream, optionally forcing an intra
//!    refresh at the switch;
//! 3. an end-of-stream marker is answered with a
//!    [`nvc_video::StreamStats`] trailer (per-frame byte and bit
//!    counts, frame types and the rate each frame was coded at), then
//!    the connection closes.
//!
//! Server side, a [`Server`] runs an *event-driven core*: one poller
//! thread owns the listener and every socket, all nonblocking, and
//! multiplexes them through a readiness loop built from `std` primitives
//! alone (a token-carrying wake channel plus a coarse timer wheel — no
//! `epoll` binding, no external crates). Handshakes and mid-stream
//! messages are parsed by resumable decoders that accept bytes in
//! arbitrary chunks; parsed jobs land in a bounded per-session queue (a
//! full queue parks the connection's decoder, backpressuring the client
//! through TCP), and a fixed set of workers schedules sessions onto the
//! compute in GOP-grain batches — packet *N + 1* of stream A is parsed
//! and validated while packet *N* of stream B runs reconstruction.
//! Every connection owns one live encoder/decoder session (the carried
//! reference state stays resident between packets, VCT-style); total
//! compute fan-out is capped by a shared [`nvc_core::ExecPool`], and the
//! server's thread count is `1 + workers`, independent of how many
//! thousands of connections are live. Client side, a blocking
//! [`StreamClient`] pipelines up to a window of messages per stream.
//!
//! Malformed input — a bogus handshake, a truncated or CRC-corrupted
//! packet, geometry that does not match the stream — yields a clean
//! error message to the peer and a closed connection, never a panic or a
//! hang; bitstreams and reconstructions are bit-identical to the
//! in-process session API at every worker count.
//!
//! # Broadcast
//!
//! Protocol version 3 adds two connection roles on top of the
//! point-to-point encode/decode pairs: a [`Role::Publish`] connection is
//! an encode stream whose coded packets are *also* published into a
//! named broadcast, and any number of [`Role::Subscribe`] connections
//! ([`SubscribeClient`]) attach to that name and receive the same packet
//! bytes — encoded once, fanned out to everyone. The publisher's
//! session runs in joinable-stream mode (every intra carries a full
//! stream header), the server caches the current GOP-aligned segment,
//! and a late joiner's stream starts at the most recent intra, so it is
//! decodable from its first packet. A subscriber that stops reading
//! while the publisher keeps going is evicted with a clean error rather
//! than ever slowing the broadcast down.
//!
//! # Governor & admission
//!
//! A server configured with [`ServeConfig::governor`] splits one
//! aggregate bit budget ([`GovernorConfig`]) across every live
//! encode/publish session, weighted by demand with per-client fairness
//! (protocol version 4's client-identity handshake field,
//! [`Hello::with_client`]). Admission becomes a three-step response:
//! admit at full rate, admit *degraded* — started a few rungs down the
//! rate ladder, flagged in the handshake ack — or reject with a clean
//! `'X'` once projected demand or scheduler backlog pass the configured
//! ceilings. Under load every session walks down its ladder before any
//! session is dropped, and walks back up as load drains; grants are a
//! pure function of the live session set, so governed streams replay
//! byte-identically. [`ServeReport`]'s `degraded` / `throttle_steps` /
//! `restored` counters expose the curve's work.
//!
//! # Example
//!
//! ```
//! use nvc_model::CtvcConfig;
//! use nvc_serve::{Hello, ServeConfig, Server, StreamClient};
//! use nvc_video::synthetic::{SceneConfig, Synthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ServeConfig {
//!     ctvc: CtvcConfig::ctvc_fp(8),
//!     ..ServeConfig::default()
//! };
//! let server = Server::spawn("127.0.0.1:0", cfg)?;
//!
//! // Remote-encode two frames; the server returns the coded packets.
//! let seq = Synthesizer::new(SceneConfig::uvg_like(32, 32, 2)).generate();
//! let mut client = StreamClient::connect(server.addr(), Hello::ctvc_encode(1, 32, 32))?;
//! for frame in seq.frames() {
//!     client.send_frame(frame)?;
//! }
//! let summary = client.finish()?;
//! assert_eq!(summary.packets.len(), 2);
//! assert_eq!(summary.stats.frames, 2);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod broadcast;
mod client;
mod conn;
mod governor;
mod poll;
pub mod proto;
mod server;
mod subscribe;
mod sync;

pub use client::{StreamClient, StreamSummary};
pub use governor::GovernorConfig;
pub use proto::{Ack, Direction, Family, Hello, JoinInfo, Retarget, Role, TargetBppWire};
pub use server::{scrape_metrics, ServeConfig, ServeReport, Server, ServerHandle};
pub use subscribe::{SubscribeClient, SubscribeEvent, SubscribeSummary};

use std::error::Error;
use std::fmt;

/// Error type of the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed wire data detected locally (bad tag, bad CRC, bad
    /// geometry, truncation).
    Protocol(String),
    /// A failure reported by the peer before it closed the connection.
    Remote(String),
    /// Codec-side failure (invalid frame, undecodable payload).
    Codec(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(s) => write!(f, "protocol error: {s}"),
            ServeError::Remote(s) => write!(f, "remote error: {s}"),
            ServeError::Codec(s) => write!(f, "codec error: {s}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<nvc_entropy::CodingError> for ServeError {
    fn from(e: nvc_entropy::CodingError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

impl From<nvc_video::VideoError> for ServeError {
    fn from(e: nvc_video::VideoError) -> Self {
        ServeError::Codec(e.to_string())
    }
}
