//! Per-connection state for the event-driven serving core: the shared
//! outbox every byte leaves through, nonblocking write servicing, and
//! the subscriber ring pump.
//!
//! Each connection owns one [`OutState`] outbox. Producers — compute
//! workers running session runners, the poller's handshake logic, the
//! ring pump — queue [`Chunk`]s into it under a mutex and wake the
//! poller; the poller alone performs socket writes, draining the outbox
//! whenever the socket is write-ready ([`service_writes`]). Broadcast
//! fan-out chunks hold the cached packet by `Arc` ([`Chunk::Shared`]),
//! so 10 000 subscribers share one copy of every coded frame and the
//! per-subscriber cost is a vectored write.
//!
//! Connection teardown is a queued [`CloseKind`], not an immediate
//! `shutdown`: the close applies only once every previously queued byte
//! has left, which preserves the old blocking writer's guarantee that an
//! error notice or stats trailer always precedes the FIN.

use crate::broadcast::{CachedPacket, RingPop, SubscriberRing};
use crate::poll::PollWaker;
use crate::proto::{error_msg_bytes, stats_msg_bytes, HelloDecoder, MsgDecoder, MSG_PACKET};
use crate::server::{Job, Slot};
use crate::sync::LockExt;
use nvc_video::StreamStats;
use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outbox backpressure bound for subscriber connections: the ring pump
/// stops transferring packets once this many bytes are queued, leaving
/// the rest in the ring — where overflow is detected and the lagging
/// subscriber evicted. An unbounded outbox would defeat eviction by
/// pinning every published packet for the slowest reader. The join-time
/// backlog bypasses the cap (it is at most one GOP segment, queued
/// before the first pump).
pub(crate) const SUB_OUTBOX_CAP: usize = 64 * 1024;

/// One queued unit of output.
#[derive(Debug)]
pub(crate) enum Chunk {
    /// Bytes owned by this connection (handshake replies, encoded
    /// packets, frames, trailers, error notices).
    Own(Vec<u8>),
    /// One broadcast packet, `Arc`-shared with every other subscriber.
    /// Logically the `'P'` tag byte followed by the serialized packet;
    /// the tag is materialized only inside the vectored write.
    Shared(Arc<CachedPacket>),
}

impl Chunk {
    fn len(&self) -> usize {
        match self {
            Chunk::Own(bytes) => bytes.len(),
            Chunk::Shared(packet) => 1 + packet.bytes.len(),
        }
    }
}

/// How a connection should end once its outbox drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseKind {
    /// Flush everything, then close both directions.
    Graceful,
    /// Flush everything (the last chunk is an `'X'` notice), then shut
    /// down the write side and give the peer a bounded window to read
    /// the notice before the hard close — the old post-error drain.
    Drain,
}

/// A connection's outbox. Shared between the poller (sole writer to the
/// socket) and whichever producer feeds this connection.
#[derive(Debug, Default)]
pub(crate) struct OutState {
    chunks: VecDeque<Chunk>,
    /// Bytes of the front chunk already written.
    front_pos: usize,
    /// Total unwritten bytes across all chunks.
    queued: usize,
    /// The socket died under a write; everything queued was discarded
    /// and future pushes are black-holed.
    gone: bool,
    /// Queued end-of-connection, applied when the outbox drains. First
    /// close wins.
    close: Option<CloseKind>,
}

/// Queues owned bytes (no-op once the socket is gone).
pub(crate) fn push_bytes(out: &Mutex<OutState>, bytes: Vec<u8>) {
    if bytes.is_empty() {
        return;
    }
    let mut st = out.lock_clean();
    if st.gone {
        return;
    }
    st.queued += bytes.len();
    st.chunks.push_back(Chunk::Own(bytes));
}

/// Queues one `Arc`-shared broadcast packet.
pub(crate) fn push_shared(out: &Mutex<OutState>, packet: Arc<CachedPacket>) {
    let mut st = out.lock_clean();
    if st.gone {
        return;
    }
    st.queued += 1 + packet.bytes.len();
    st.chunks.push_back(Chunk::Shared(packet));
}

/// Queues an end-of-connection. The first queued close wins — a later,
/// different close (say a graceful end racing an eviction) must not
/// override what the peer is already being told.
pub(crate) fn set_close(out: &Mutex<OutState>, kind: CloseKind) {
    let mut st = out.lock_clean();
    if st.close.is_none() {
        st.close = Some(kind);
    }
}

/// The queued equivalent of the old blocking `hangup`: with a message,
/// queue the `'X'` notice and a draining close; without, just a graceful
/// close.
pub(crate) fn queue_hangup(out: &Mutex<OutState>, message: Option<&str>) {
    match message {
        Some(message) => {
            push_bytes(out, error_msg_bytes(message));
            set_close(out, CloseKind::Drain);
        }
        None => set_close(out, CloseKind::Graceful),
    }
}

/// Result of one write-servicing pass over a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteStatus {
    /// Nothing queued, no close pending.
    Idle,
    /// The outbox drained fully (no close pending).
    Progress,
    /// The socket stopped accepting bytes with data still queued.
    /// `progressed` says whether this pass wrote anything first —
    /// progress resets the write-stall clock.
    Blocked {
        /// Whether any bytes left before the socket blocked.
        progressed: bool,
    },
    /// The peer is gone (zero-length write or hard error). The outbox
    /// was discarded.
    Gone,
    /// The outbox drained and a close was queued: apply it.
    Close(CloseKind),
}

/// Upper bound on the `IoSlice`s gathered into one vectored write (well
/// under every platform's `IOV_MAX`).
const GATHER_MAX: usize = 32;

/// Drains a connection's outbox into its nonblocking socket until the
/// outbox empties or the socket blocks. The only place socket writes
/// happen. Queued chunks are gathered into a single vectored write —
/// when fan-out saturates and several packets are queued per
/// subscriber, one syscall moves them all, which is what keeps the
/// per-subscriber cost from scaling with backlog depth.
pub(crate) fn service_writes(sock: &TcpStream, out: &Mutex<OutState>) -> WriteStatus {
    let mut st = out.lock_clean();
    if st.gone {
        return WriteStatus::Gone;
    }
    let tag = [MSG_PACKET];
    let mut progressed = false;
    loop {
        if st.chunks.is_empty() {
            break;
        }
        let res = {
            let mut slices = [IoSlice::new(&[]); GATHER_MAX];
            let mut used = 0;
            for (i, chunk) in st.chunks.iter().enumerate() {
                if used + 2 > GATHER_MAX {
                    break;
                }
                let skip = if i == 0 { st.front_pos } else { 0 };
                match chunk {
                    Chunk::Own(bytes) => {
                        slices[used] = IoSlice::new(&bytes[skip..]);
                        used += 1;
                    }
                    Chunk::Shared(packet) => {
                        if skip == 0 {
                            slices[used] = IoSlice::new(&tag);
                            slices[used + 1] = IoSlice::new(&packet.bytes);
                            used += 2;
                        } else {
                            slices[used] = IoSlice::new(&packet.bytes[skip - 1..]);
                            used += 1;
                        }
                    }
                }
            }
            (&*sock).write_vectored(&slices[..used])
        };
        match res {
            Ok(0) => {
                st.gone = true;
                st.chunks.clear();
                st.queued = 0;
                return WriteStatus::Gone;
            }
            Ok(mut n) => {
                progressed = true;
                st.queued -= n;
                while n > 0 {
                    // The kernel never reports more written than was
                    // submitted, so bytes always map onto chunks; bail
                    // rather than panic if that assumption ever breaks.
                    let Some(front) = st.chunks.front() else {
                        st.front_pos = 0;
                        break;
                    };
                    let left = front.len() - st.front_pos;
                    if n >= left {
                        n -= left;
                        st.chunks.pop_front();
                        st.front_pos = 0;
                    } else {
                        st.front_pos += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return WriteStatus::Blocked { progressed };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                st.gone = true;
                st.chunks.clear();
                st.queued = 0;
                return WriteStatus::Gone;
            }
        }
    }
    match st.close {
        Some(kind) => WriteStatus::Close(kind),
        None if progressed => WriteStatus::Progress,
        None => WriteStatus::Idle,
    }
}

/// A producer-side handle to a connection's outbox, implementing
/// [`Write`] so session runners keep using `write_*_msg` + `flush`
/// exactly as they did against a `BufWriter<TcpStream>`. Writes buffer
/// locally; `flush` publishes the buffer as one chunk and wakes the
/// poller.
pub(crate) struct OutHandle {
    out: Arc<Mutex<OutState>>,
    waker: PollWaker,
    buf: Vec<u8>,
}

impl OutHandle {
    pub(crate) fn new(out: Arc<Mutex<OutState>>, waker: PollWaker) -> Self {
        OutHandle {
            out,
            waker,
            buf: Vec::new(),
        }
    }

    /// The old blocking `hangup`, producer-side: queue the optional
    /// `'X'` notice and the matching close, then wake the poller.
    pub(crate) fn hangup(&mut self, message: Option<&str>) {
        let close = match message {
            Some(message) => {
                self.buf.extend_from_slice(&error_msg_bytes(message));
                CloseKind::Drain
            }
            None => CloseKind::Graceful,
        };
        let _ = self.flush();
        set_close(&self.out, close);
        self.waker.wake();
    }
}

impl Write for OutHandle {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut st = self.out.lock_clean();
        if st.gone {
            // Surface the death like a failed socket write would have,
            // so runner steps that flush mid-stream report an error.
            self.buf.clear();
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer connection lost",
            ));
        }
        let chunk = std::mem::take(&mut self.buf);
        st.queued += chunk.len();
        st.chunks.push_back(Chunk::Own(chunk));
        drop(st);
        self.waker.wake();
        Ok(())
    }
}

/// Per-subscriber stats accumulator: the same per-frame columns an
/// encode stream's trailer carries, derived from the cached packets so
/// every subscriber's trailer describes exactly the bytes it received.
#[derive(Debug, Default)]
pub(crate) struct SubscriberStats {
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<nvc_entropy::container::FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
}

impl SubscriberStats {
    pub(crate) fn account(&mut self, packet: &CachedPacket) {
        self.bytes_per_frame.push(packet.payload_len);
        self.bits_per_frame.push(packet.bytes.len() as u64 * 8);
        self.frame_types.push(packet.kind);
        self.rate_per_frame.push(packet.rate);
        self.total_bytes += packet.bytes.len();
    }

    fn finish(self) -> StreamStats {
        StreamStats {
            frames: self.bytes_per_frame.len(),
            bytes_per_frame: self.bytes_per_frame,
            bits_per_frame: self.bits_per_frame,
            frame_types: self.frame_types,
            rate_per_frame: self.rate_per_frame,
            total_bytes: self.total_bytes,
        }
    }
}

/// Transfers ring packets into a subscriber's outbox, stopping at the
/// backpressure cap, ring exhaustion, or a terminal ring state. Returns
/// `true` when the subscription reached its end (trailer or error
/// queued, close set) — the connection then only needs its outbox
/// drained.
pub(crate) fn pump_subscriber(
    ring: &SubscriberRing,
    out: &Mutex<OutState>,
    stats: &mut Option<SubscriberStats>,
    version: u8,
) -> bool {
    loop {
        {
            let st = out.lock_clean();
            if st.gone || st.close.is_some() {
                return false;
            }
            // Backpressure: leave packets in the ring once the outbox
            // is full — ring overflow is where lagging is detected.
            if !st.chunks.is_empty() && st.queued >= SUB_OUTBOX_CAP {
                return false;
            }
        }
        match ring.pop(Duration::ZERO) {
            RingPop::Packet(packet) => {
                if let Some(stats) = stats.as_mut() {
                    stats.account(&packet);
                }
                push_shared(out, packet);
            }
            RingPop::Empty => return false,
            RingPop::Closed => {
                let trailer = stats.take().unwrap_or_default().finish();
                push_bytes(out, stats_msg_bytes(&trailer, version));
                set_close(out, CloseKind::Graceful);
                return true;
            }
            RingPop::Evicted(reason) | RingPop::Failed(reason) => {
                queue_hangup(out, Some(&reason));
                return true;
            }
        }
    }
}

/// One registered connection on the poller.
pub(crate) struct Conn<'env> {
    pub(crate) sock: TcpStream,
    pub(crate) out: Arc<Mutex<OutState>>,
    /// Bumped whenever the connection changes phase; a timer fire whose
    /// generation doesn't match is stale and ignored.
    pub(crate) gen: u32,
    /// The write side is shut down and the connection only waits out
    /// its post-error drain window (reads are discarded).
    pub(crate) draining: bool,
    /// When the current write stall started, if the socket is blocked.
    pub(crate) stalled_since: Option<Instant>,
    /// Delay before the next blocked-write probe; doubles while the
    /// socket stays full, resets on any progress.
    pub(crate) retry_backoff: Duration,
    /// A `WriteRetry` timer is already pending for this connection.
    pub(crate) retry_armed: bool,
    pub(crate) kind: ConnKind<'env>,
}

/// What phase a connection is in — its protocol state machine.
pub(crate) enum ConnKind<'env> {
    /// Accumulating the handshake.
    Hello(HelloDecoder),
    /// An established encode/decode/publish session: bytes decode into
    /// jobs for the compute workers via the session's slot.
    Session {
        slot: Arc<Slot<'env>>,
        decoder: MsgDecoder,
        /// A decoded job the slot had no queue space for; retried when
        /// the workers free space and wake this connection.
        parked: Option<Job>,
        /// The stream saw its terminal job; remaining input is ignored.
        ended: bool,
    },
    /// An established subscriber: packets flow ring → outbox → socket.
    Subscriber {
        ring: Arc<SubscriberRing>,
        stats: Option<SubscriberStats>,
        version: u8,
        /// The subscription ended; only the outbox drain remains.
        done: bool,
    },
    /// Nothing left but flushing the outbox and closing.
    Finishing,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::{BroadcastInfo, BroadcastRegistry};
    use crate::proto::{read_error_body, read_stats_body, MSG_ERROR, MSG_STATS};
    use nvc_entropy::container::{FrameKind, Packet};
    use std::io::Read;
    use std::net::{Shutdown, TcpListener};

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_write_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        (server, client)
    }

    fn cached(frame_index: u32, kind: FrameKind) -> CachedPacket {
        let packet = Packet::new(frame_index, kind, vec![frame_index as u8; 16]);
        CachedPacket {
            bytes: packet.to_bytes(),
            payload_len: packet.payload.len(),
            frame_index,
            kind,
            rate: 1,
        }
    }

    /// Lag eviction, end to end over real sockets but fully
    /// deterministic: publish into the rings first, then drive the pump
    /// and write servicing by hand. The evicted subscriber must receive
    /// a clean `'X'` with the lag reason and a closed connection; the
    /// fast one streams every packet and the trailer, unaffected.
    #[test]
    fn evicted_subscriber_gets_a_clean_error_while_others_stream_on() {
        let registry = BroadcastRegistry::new();
        let info = BroadcastInfo {
            family: crate::proto::Family::Ctvc,
            width: 32,
            height: 32,
            gop: 4,
        };
        let mut guard = registry.create("game", info, 1).unwrap();
        let slow_att = guard.broadcast().attach(2).unwrap();
        let fast_att = guard.broadcast().attach(64).unwrap();
        let mut evicted = 0;
        for i in 0..4 {
            let kind = if i == 0 {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            };
            evicted += guard.broadcast().publish(cached(i, kind));
        }
        assert_eq!(evicted, 1, "the capacity-2 ring must overflow");
        guard.finish();

        let (slow_srv, mut slow_client) = socket_pair();
        let (fast_srv, mut fast_client) = socket_pair();
        let slow_out = Mutex::new(OutState::default());
        let fast_out = Mutex::new(OutState::default());

        let mut slow_stats = Some(SubscriberStats::default());
        assert!(
            pump_subscriber(&slow_att.ring, &slow_out, &mut slow_stats, 3),
            "eviction is terminal"
        );
        match service_writes(&slow_srv, &slow_out) {
            WriteStatus::Close(CloseKind::Drain) => {
                slow_srv.shutdown(Shutdown::Write).unwrap();
            }
            other => panic!("expected a draining close, got {other:?}"),
        }

        let mut fast_stats = Some(SubscriberStats::default());
        assert!(
            pump_subscriber(&fast_att.ring, &fast_out, &mut fast_stats, 3),
            "a closed broadcast is terminal"
        );
        match service_writes(&fast_srv, &fast_out) {
            WriteStatus::Close(CloseKind::Graceful) => {
                fast_srv.shutdown(Shutdown::Both).unwrap();
            }
            other => panic!("expected a graceful close, got {other:?}"),
        }

        let mut tag = [0u8; 1];
        slow_client.read_exact(&mut tag).unwrap();
        assert_eq!(tag[0], MSG_ERROR, "eviction must arrive as 'X'");
        let reason = read_error_body(&mut &slow_client).unwrap();
        assert!(reason.contains("lagging"), "{reason}");
        assert_eq!(
            slow_client.read(&mut tag).unwrap(),
            0,
            "connection must close after the eviction notice"
        );

        for want in 0..4u32 {
            fast_client.read_exact(&mut tag).unwrap();
            assert_eq!(tag[0], MSG_PACKET);
            let packet = Packet::read_from(&mut &fast_client).unwrap();
            assert_eq!(packet.frame_index, want);
        }
        fast_client.read_exact(&mut tag).unwrap();
        assert_eq!(tag[0], MSG_STATS, "clean end must carry the trailer");
        let stats = read_stats_body(&mut &fast_client, 3).unwrap();
        assert_eq!(stats.frames, 4);
    }

    /// The outbox applies a queued close only after every previously
    /// queued byte has left, and black-holes writes once the peer dies.
    #[test]
    fn outbox_orders_notices_before_close_and_blackholes_the_dead() {
        let (srv, mut client) = socket_pair();
        let out = Mutex::new(OutState::default());
        queue_hangup(&out, Some("boom"));
        assert!(matches!(
            service_writes(&srv, &out),
            WriteStatus::Close(CloseKind::Drain)
        ));
        srv.shutdown(Shutdown::Write).unwrap();
        let mut tag = [0u8; 1];
        client.read_exact(&mut tag).unwrap();
        assert_eq!(tag[0], MSG_ERROR);
        assert_eq!(read_error_body(&mut &client).unwrap(), "boom");

        // Peer closes; the next serviced write discovers the death and
        // subsequent pushes are dropped.
        drop(client);
        loop {
            push_bytes(&out, vec![0u8; 4096]);
            match service_writes(&srv, &out) {
                WriteStatus::Gone => break,
                WriteStatus::Progress | WriteStatus::Blocked { .. } => {}
                other => panic!("unexpected status {other:?}"),
            }
        }
        push_bytes(&out, vec![1u8; 16]);
        assert_eq!(out.lock().unwrap().queued, 0, "dead outbox drops pushes");
        assert!(matches!(service_writes(&srv, &out), WriteStatus::Gone));
    }
}
