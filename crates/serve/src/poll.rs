//! A dependency-free readiness loop's moving parts: the cross-thread
//! wake channel and a coarse timer wheel.
//!
//! The serving core runs every socket nonblocking on one poller thread
//! (see `server.rs`). `std` offers no `epoll`-style readiness API, so
//! the loop is built from the two primitives this module provides:
//!
//! * [`PollShared`] / [`PollWaker`] — a token-carrying wake channel.
//!   Workers, subscriber rings and the acceptor push a connection token
//!   and `unpark` the poller; an [`AtomicBool`] dedupes the unparks so
//!   a 10 000-subscriber fan-out costs one `unpark` per batch, not one
//!   per ring. `park_timeout`'s sticky permit makes the handoff
//!   lost-wakeup-free: a wake landing between drain and park just makes
//!   the next park return immediately.
//! * [`TimerWheel`] — a hashed wheel (256 slots × 10 ms ticks) holding
//!   the handshake deadline, write-stall, write-retry and post-error
//!   drain timers.
//!   Entries are never cancelled; each carries the connection's
//!   generation counter and a stale fire (generation mismatch) is
//!   ignored, which keeps arming O(1) with no per-timer bookkeeping.

use crate::sync::LockExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Timer granularity. Every deadline the wheel carries (handshake
/// timeout, write stall, drain bound) is hundreds of milliseconds or
/// more, so 10 ms of slack is invisible.
const TIMER_TICK_MS: u64 = 10;

/// Wheel size. Deadlines further than `WHEEL_SLOTS` ticks out simply
/// stay in their slot across multiple revolutions (each entry stores
/// its absolute tick).
const WHEEL_SLOTS: usize = 256;

/// The pending wake batch: the token queue and the epoch-µs stamp of
/// the wake that opened it, kept under ONE mutex so "batch non-empty ⇔
/// stamp set" holds in every reachable state. (An earlier revision kept
/// the stamp in a separate `AtomicU64` stored after the `notified`
/// swap; a drain racing that window observed a non-empty batch with a
/// zero stamp and mis-attributed the late stamp to the next batch. The
/// `waker/legacy-stamp` model in `nvc-explore` reproduces that race.)
#[derive(Debug, Default)]
struct WakeQueue {
    /// Tokens with pending work, drained once per poller pass.
    tokens: Vec<u64>,
    /// Epoch-µs timestamp of the wake that opened this batch (0 = no
    /// undrained batch). [`PollShared::drain`] hands it back so the
    /// poller can record wake-to-work latency per batch.
    since: u64,
}

/// State shared between the poller thread and everyone who needs to
/// wake it: compute workers (outbox flushes, freed queue space) and
/// broadcast rings (new packets for a subscriber).
#[derive(Debug, Default)]
pub(crate) struct PollShared {
    /// The pending batch (tokens + opening stamp).
    wakes: Mutex<WakeQueue>,
    /// Set once a wake has been delivered and not yet drained; dedupes
    /// the `unpark` calls of a wake flood down to one.
    notified: AtomicBool,
    /// The poller thread, registered when its loop starts.
    thread: Mutex<Option<Thread>>,
}

impl PollShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Called by the poller at loop start so wakers know whom to unpark.
    pub(crate) fn register_thread(&self) {
        *self.thread.lock_clean() = Some(std::thread::current());
    }

    /// Queues a token for service and unparks the poller (deduped).
    pub(crate) fn wake(&self, token: u64) {
        {
            let mut q = self.wakes.lock_clean();
            q.tokens.push(token);
            if q.since == 0 {
                // This wake opened the batch: stamp it, under the same
                // lock as the push, so drain can measure how long the
                // batch waited for the poller and can never see a
                // non-empty batch without its stamp.
                q.since = nvc_telemetry::epoch_micros().max(1);
            }
        }
        // order: AcqRel — the false→true edge elects exactly one waker
        // per undrained batch to pay the unpark; pairs with the Release
        // clear in `drain` so the election happens-after the previous
        // batch was taken.
        if !self.notified.swap(true, Ordering::AcqRel) {
            self.unpark();
        }
    }

    /// Unconditional unpark — shutdown path, where losing the deduped
    /// edge to a concurrent waker must not leave the poller parked.
    pub(crate) fn kick(&self) {
        // order: Release — unconditional store; only needs to not sink
        // below the shutdown flag the caller set before kicking.
        self.notified.store(true, Ordering::Release);
        self.unpark();
    }

    fn unpark(&self) {
        if let Some(t) = self.thread.lock_clean().as_ref() {
            t.unpark();
        }
    }

    /// Drains pending wake tokens into `wakes`. Clearing `notified`
    /// *before* taking the queue keeps the handoff lost-wakeup-free:
    /// a token pushed after the clear re-arms the unpark permit.
    /// (`nvc-explore`'s `waker/drain-before-clear` model shows the
    /// opposite order losing a wakeup.)
    ///
    /// Returns the epoch-µs stamp of the wake that opened the drained
    /// batch (`None` iff the batch was empty): the stamp travels with
    /// the tokens under one lock, so it can neither be missing for a
    /// non-empty batch nor leak onto the next one.
    pub(crate) fn drain(&self, wakes: &mut Vec<u64>) -> Option<u64> {
        // order: Release — re-arms the wake edge; pairs with the AcqRel
        // swap in `wake` so a push after this clear wins the election
        // and unparks us again.
        self.notified.store(false, Ordering::Release);
        let mut q = self.wakes.lock_clean();
        wakes.append(&mut q.tokens);
        match std::mem::take(&mut q.since) {
            0 => None,
            since => Some(since),
        }
    }
}

/// A handle that wakes the poller on behalf of one connection.
#[derive(Debug, Clone)]
pub(crate) struct PollWaker {
    shared: Arc<PollShared>,
    token: u64,
}

impl PollWaker {
    pub(crate) fn new(shared: Arc<PollShared>, token: u64) -> Self {
        PollWaker { shared, token }
    }

    pub(crate) fn wake(&self) {
        self.shared.wake(self.token);
    }
}

/// What a timer was armed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// The handshake deadline: a connection that has not completed its
    /// `Hello` by now is rejected.
    Handshake,
    /// A blocked write has not progressed; if still stalled when this
    /// fires, the connection is dropped (the old per-thread
    /// `SO_SNDTIMEO` write timeout, rebuilt on the wheel).
    WriteStall,
    /// Re-probe a blocked socket. Without a readiness API the only way
    /// to learn the peer resumed reading is another write attempt;
    /// these fire on a per-connection exponential backoff so ten
    /// thousand stalled subscribers cost a bounded trickle of `EAGAIN`
    /// probes instead of a sweep of every blocked socket per pass.
    WriteRetry,
    /// Bound on the post-error drain: how long a hung-up connection
    /// waits for the peer to read the `'X'` before hard-closing.
    Drain,
}

#[derive(Debug)]
struct TimerEntry {
    token: u64,
    /// Connection generation at arm time; a fire whose generation no
    /// longer matches the connection's is stale and ignored.
    gen: u32,
    kind: TimerKind,
    /// Absolute tick the entry fires at.
    tick: u64,
}

/// A hashed timer wheel: arming is a push into `deadline % slots`,
/// advancing scans only the slots the clock passed through.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    start: Instant,
    slots: Vec<Vec<TimerEntry>>,
    /// Last tick fully advanced past.
    cursor: u64,
    len: usize,
    /// Records how far past its due tick each fired entry was
    /// collected, in µs. Injectable so tests can assert the wheel's
    /// lag bound in isolation.
    fire_lag: Option<nvc_telemetry::Histogram>,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            start: Instant::now(),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: 0,
            fire_lag: None,
        }
    }

    /// Installs the histogram fire lag is recorded into.
    pub(crate) fn set_fire_lag(&mut self, hist: nvc_telemetry::Histogram) {
        self.fire_lag = Some(hist);
    }

    fn tick_at(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.start).as_millis() as u64) / TIMER_TICK_MS
    }

    /// Arms a timer for `token` at `deadline` (rounded up to the next
    /// tick, so timers never fire early).
    pub(crate) fn arm(&mut self, token: u64, gen: u32, kind: TimerKind, deadline: Instant) {
        let tick = (self.tick_at(deadline) + 1).max(self.cursor + 1);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(TimerEntry {
            token,
            gen,
            kind,
            tick,
        });
        self.len += 1;
    }

    /// Collects every entry whose tick the clock has passed into
    /// `fired` as `(token, gen, kind)` triples.
    pub(crate) fn advance(&mut self, now: Instant, fired: &mut Vec<(u64, u32, TimerKind)>) {
        let now_tick = self.tick_at(now);
        if self.len == 0 || now_tick <= self.cursor {
            self.cursor = self.cursor.max(now_tick);
            return;
        }
        let now_us = now.saturating_duration_since(self.start).as_micros() as u64;
        // A long idle gap would walk the cursor over every elapsed tick;
        // past one full revolution a single sweep of all slots sees the
        // same entries.
        if now_tick - self.cursor >= WHEEL_SLOTS as u64 {
            for slot in &mut self.slots {
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].tick <= now_tick {
                        let e = slot.swap_remove(i);
                        self.len -= 1;
                        if let Some(h) = &self.fire_lag {
                            h.record(now_us.saturating_sub(e.tick * TIMER_TICK_MS * 1000));
                        }
                        fired.push((e.token, e.gen, e.kind));
                    } else {
                        i += 1;
                    }
                }
            }
            self.cursor = now_tick;
            return;
        }
        while self.cursor < now_tick {
            self.cursor += 1;
            let cursor = self.cursor;
            let slot = &mut self.slots[(cursor % WHEEL_SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].tick <= cursor {
                    let e = slot.swap_remove(i);
                    self.len -= 1;
                    if let Some(h) = &self.fire_lag {
                        h.record(now_us.saturating_sub(e.tick * TIMER_TICK_MS * 1000));
                    }
                    fired.push((e.token, e.gen, e.kind));
                } else {
                    i += 1;
                }
            }
        }
    }

    /// The earliest pending deadline, as an `Instant` — how long the
    /// poller may park. `None` when no timers are armed.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        let tick = self.slots.iter().flatten().map(|e| e.tick).min()?;
        Some(self.start + Duration::from_millis(tick * TIMER_TICK_MS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_in_order_and_never_early() {
        let mut wheel = TimerWheel::new();
        let t0 = wheel.start;
        wheel.arm(1, 0, TimerKind::Handshake, t0 + Duration::from_millis(50));
        wheel.arm(2, 0, TimerKind::Drain, t0 + Duration::from_millis(500));
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(40), &mut fired);
        assert!(fired.is_empty(), "nothing may fire before its deadline");
        wheel.advance(t0 + Duration::from_millis(70), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0], (1, 0, TimerKind::Handshake));
        let next = wheel.next_deadline().expect("drain timer pending");
        assert!(next >= t0 + Duration::from_millis(500));
        fired.clear();
        // A gap longer than one wheel revolution still fires everything.
        wheel.advance(t0 + Duration::from_secs(30), &mut fired);
        assert_eq!(fired, vec![(2, 0, TimerKind::Drain)]);
        assert!(wheel.next_deadline().is_none());
    }

    #[test]
    fn far_deadlines_survive_wheel_wraparound() {
        let mut wheel = TimerWheel::new();
        let t0 = wheel.start;
        // 10 s is ~1000 ticks: several revolutions of a 256-slot wheel.
        wheel.arm(7, 3, TimerKind::WriteStall, t0 + Duration::from_secs(10));
        let mut fired = Vec::new();
        for ms in [500u64, 2_000, 9_000] {
            wheel.advance(t0 + Duration::from_millis(ms), &mut fired);
            assert!(fired.is_empty(), "not due yet at {ms}ms");
        }
        wheel.advance(t0 + Duration::from_millis(10_050), &mut fired);
        assert_eq!(fired, vec![(7, 3, TimerKind::WriteStall)]);
    }

    #[test]
    fn fire_lag_stays_within_one_tick_of_collection() {
        let mut wheel = TimerWheel::new();
        let lag = nvc_telemetry::Histogram::detached("test_fire_lag_us");
        wheel.set_fire_lag(lag.clone());
        let t0 = wheel.start;
        let mut fired = Vec::new();
        for (token, ms) in [(1u64, 35u64), (2, 80), (3, 410)] {
            wheel.arm(
                token,
                0,
                TimerKind::Handshake,
                t0 + Duration::from_millis(ms),
            );
        }
        // Collect each entry 3 ms past the instant the wheel says it is
        // due — the poller parks until `next_deadline`, so this models
        // the worst case of one scheduling hiccup per fire.
        while let Some(due) = wheel.next_deadline() {
            wheel.advance(due + Duration::from_millis(3), &mut fired);
        }
        assert_eq!(fired.len(), 3);
        assert_eq!(lag.count(), 3);
        // Deadlines round up to a tick boundary, so collecting 3 ms past
        // the due instant bounds every recorded lag by one tick.
        assert!(
            lag.max() <= TIMER_TICK_MS * 1000,
            "fire lag {} µs exceeds one {} ms tick",
            lag.max(),
            TIMER_TICK_MS
        );
    }

    #[test]
    fn wake_tokens_dedupe_unparks_but_never_tokens() {
        let shared = PollShared::new();
        shared.register_thread();
        shared.wake(1);
        shared.wake(2);
        shared.wake(1);
        let mut wakes = Vec::new();
        shared.drain(&mut wakes);
        assert_eq!(wakes, vec![1, 2, 1], "every token is delivered");
        wakes.clear();
        shared.drain(&mut wakes);
        assert!(wakes.is_empty());
    }

    /// Regression for the `wake_since` race: the batch stamp lives under
    /// the same mutex as the token queue, so a drain either takes tokens
    /// *and* their stamp or neither. (The old two-atomics scheme could
    /// return a stamp for an empty batch, or tokens with a zeroed stamp;
    /// `nvc-explore`'s `waker/legacy-stamp` model enumerates that race.)
    #[test]
    fn batch_stamp_travels_with_its_tokens() {
        let shared = PollShared::new();
        shared.register_thread();
        let mut wakes = Vec::new();
        assert_eq!(
            shared.drain(&mut wakes),
            None,
            "an empty batch has no stamp"
        );
        shared.wake(7);
        shared.wake(8);
        let stamp = shared.drain(&mut wakes);
        assert_eq!(wakes, vec![7, 8]);
        assert!(stamp.is_some(), "a non-empty batch carries its stamp");
        wakes.clear();
        assert_eq!(
            shared.drain(&mut wakes),
            None,
            "the stamp left with its batch"
        );
        // A fresh wake opens a fresh batch with a fresh stamp.
        shared.wake(9);
        let restamp = shared.drain(&mut wakes);
        assert_eq!(wakes, vec![9]);
        assert!(restamp.is_some());
        assert!(restamp >= stamp, "stamps never run backwards");
    }
}
