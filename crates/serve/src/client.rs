//! The blocking client side of the protocol.

use crate::proto::{
    read_ack_body, read_error_body, read_frame_body, read_stats_body, read_u8, write_frame_msg,
    write_packet_msg, write_retarget_msg, Ack, Hello, Retarget, Role, MSG_ACK, MSG_END, MSG_ERROR,
    MSG_FRAME, MSG_PACKET, MSG_STATS,
};
use crate::ServeError;
use nvc_entropy::container::Packet;
use nvc_video::{Frame, StreamStats};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a finished stream produced, in order.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Reconstructed frames (decode streams; empty for encode streams).
    pub frames: Vec<Frame>,
    /// Coded packets (encode streams; empty for decode streams).
    pub packets: Vec<Packet>,
    /// The server's stream-statistics trailer.
    pub stats: StreamStats,
    /// Per-response round-trip latency, send to receipt, in message
    /// order. With a pipelining window > 1 this includes queueing time —
    /// the latency a serving client actually observes.
    pub latencies: Vec<Duration>,
}

/// A blocking streaming connection to a [`Server`](crate::Server).
///
/// Messages pipeline: up to [`window`](StreamClient::set_window)
/// requests stay in flight before a send blocks on reading a response,
/// overlapping client I/O with server compute. Responses arrive in
/// stream order and accumulate internally; [`StreamClient::finish`]
/// returns them all plus the stats trailer.
pub struct StreamClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    hello: Hello,
    ack: Ack,
    window: usize,
    outstanding: usize,
    sent_at: VecDeque<Instant>,
    frames: Vec<Frame>,
    packets: Vec<Packet>,
    latencies: Vec<Duration>,
    next_frame_index: u32,
}

impl std::fmt::Debug for StreamClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StreamClient({:?}, window {}, {} in flight)",
            self.hello, self.window, self.outstanding
        )
    }
}

enum Response {
    Frame(Frame),
    Packet(Packet),
    Stats(StreamStats),
}

impl StreamClient {
    /// Connects and performs the handshake. A server-side rejection
    /// (bogus rate, bad geometry, capacity) surfaces as
    /// [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on connection, handshake or rejection.
    pub fn connect(addr: impl ToSocketAddrs, hello: Hello) -> Result<Self, ServeError> {
        if hello.role == Role::Subscribe {
            return Err(ServeError::Protocol(
                "subscribe streams use SubscribeClient".into(),
            ));
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        hello.write_to(&mut writer)?;
        writer.flush()?;
        let mut client = StreamClient {
            reader,
            writer,
            hello,
            ack: Ack {
                rate: 0,
                degraded: false,
            },
            window: 4,
            outstanding: 0,
            sent_at: VecDeque::new(),
            frames: Vec::new(),
            packets: Vec::new(),
            latencies: Vec::new(),
            next_frame_index: 0,
        };
        match read_u8(&mut client.reader)? {
            MSG_ACK => {
                client.ack = read_ack_body(&mut client.reader, client.hello.version)?;
                Ok(client)
            }
            MSG_ERROR => Err(ServeError::Remote(read_error_body(&mut client.reader)?)),
            tag => Err(ServeError::Protocol(format!(
                "expected handshake ack, got tag 0x{tag:02X}"
            ))),
        }
    }

    /// The negotiated handshake.
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// The rate the server actually granted in its handshake ack. Equal
    /// to the requested [`Hello::rate`] unless the session was admitted
    /// degraded, in which case a fixed-rate stream starts at this wire
    /// rate instead (target-bpp streams echo the request; the shrunk
    /// target is applied server-side).
    pub fn granted_rate(&self) -> u8 {
        self.ack.rate
    }

    /// Whether the server admitted this session *degraded* — below its
    /// requested rate because the governor's aggregate budget is under
    /// pressure (protocol version 4; always `false` on older versions).
    pub fn admitted_degraded(&self) -> bool {
        self.ack.degraded
    }

    /// Sets the pipelining window (clamped to ≥ 1): how many requests
    /// may be in flight before a send blocks on a response. Keep it
    /// small relative to OS socket buffering; the default is 4.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Sets a read timeout on the underlying socket (tests use this to
    /// turn a would-be hang into an error).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Streams one coded packet to a decode-direction server. Responses
    /// drained while honoring the window accumulate for
    /// [`StreamClient::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on the wrong direction, socket failure, or
    /// a server-reported error.
    pub fn send_packet(&mut self, packet: &Packet) -> Result<(), ServeError> {
        if self.hello.role != Role::Decode {
            return Err(ServeError::Protocol(
                "send_packet on an encode-direction stream".into(),
            ));
        }
        if let Err(e) =
            write_packet_msg(&mut self.writer, packet).and_then(|()| self.writer.flush())
        {
            return Err(self.surface_send_error(e.into()));
        }
        self.on_sent()
    }

    /// Streams one raw frame to an encode-direction server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on the wrong direction, socket failure, or
    /// a server-reported error.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), ServeError> {
        if !matches!(self.hello.role, Role::Encode | Role::Publish) {
            return Err(ServeError::Protocol(
                "send_frame on a decode-direction stream".into(),
            ));
        }
        if let Err(e) = write_frame_msg(&mut self.writer, self.next_frame_index, frame)
            .and_then(|()| self.writer.flush())
        {
            return Err(self.surface_send_error(e.into()));
        }
        self.next_frame_index += 1;
        self.on_sent()
    }

    /// Retargets the rate control of an encode-direction stream
    /// mid-flight (the `'R'` message): frames already sent keep the old
    /// mode, frames sent after this use the new one. The message gets no
    /// response of its own, so it does not consume pipelining window.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on the wrong direction, a version-1
    /// handshake, socket failure, or a server-reported error.
    pub fn retarget(&mut self, retarget: Retarget) -> Result<(), ServeError> {
        if !matches!(self.hello.role, Role::Encode | Role::Publish) {
            return Err(ServeError::Protocol(
                "retarget on a decode-direction stream".into(),
            ));
        }
        if self.hello.version < 2 {
            return Err(ServeError::Protocol(
                "retarget needs protocol version 2".into(),
            ));
        }
        if let Err(e) =
            write_retarget_msg(&mut self.writer, &retarget).and_then(|()| self.writer.flush())
        {
            return Err(self.surface_send_error(e.into()));
        }
        Ok(())
    }

    /// A failed send usually means the server already aborted the stream
    /// and the real reason is queued on the read side — prefer reporting
    /// that over a bare broken-pipe error.
    fn surface_send_error(&mut self, original: ServeError) -> ServeError {
        let prior = self.reader.get_ref().read_timeout().ok().flatten();
        let _ = self
            .reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(2)));
        let mut verdict = original;
        for _ in 0..64 {
            match self.recv() {
                Ok(_) => continue, // drain in-flight responses
                Err(remote @ ServeError::Remote(_)) => {
                    verdict = remote;
                    break;
                }
                Err(_) => break,
            }
        }
        let _ = self.reader.get_ref().set_read_timeout(prior);
        verdict
    }

    fn on_sent(&mut self) -> Result<(), ServeError> {
        self.outstanding += 1;
        self.sent_at.push_back(Instant::now());
        while self.outstanding > self.window {
            match self.recv()? {
                Response::Frame(f) => self.frames.push(f),
                Response::Packet(p) => self.packets.push(p),
                Response::Stats(_) => {
                    return Err(ServeError::Protocol(
                        "stats trailer before end of stream".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ServeError> {
        let tag = read_u8(&mut self.reader)?;
        let response = match tag {
            MSG_FRAME => {
                let expect = (self.hello.width, self.hello.height);
                let (_, frame) = read_frame_body(&mut self.reader, Some(expect))?;
                Response::Frame(frame)
            }
            MSG_PACKET => Response::Packet(Packet::read_from(&mut self.reader)?),
            MSG_STATS => {
                let version = self.hello.version;
                return Ok(Response::Stats(read_stats_body(&mut self.reader, version)?));
            }
            MSG_ERROR => return Err(ServeError::Remote(read_error_body(&mut self.reader)?)),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "unexpected response tag 0x{tag:02X}"
                )))
            }
        };
        if let Some(sent) = self.sent_at.pop_front() {
            self.latencies.push(sent.elapsed());
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        Ok(response)
    }

    /// Blocks until every in-flight request has been answered (the
    /// pipelining window is empty). For publish streams this is a
    /// sequencing point: once `drain` returns, every frame sent so far
    /// has been encoded *and published*, so a subscriber attaching now
    /// is a well-defined "late joiner" relative to those frames.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on socket failure or a server-reported
    /// error.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        while self.outstanding > 0 {
            match self.recv()? {
                Response::Frame(f) => self.frames.push(f),
                Response::Packet(p) => self.packets.push(p),
                Response::Stats(_) => {
                    return Err(ServeError::Protocol(
                        "stats trailer before end of stream".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Ends the stream: sends the end-of-stream marker, drains every
    /// remaining response and returns the collected results plus the
    /// server's stats trailer.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on socket failure or a server-reported
    /// error.
    pub fn finish(mut self) -> Result<StreamSummary, ServeError> {
        if let Err(e) = self
            .writer
            .write_all(&[MSG_END])
            .and_then(|()| self.writer.flush())
        {
            return Err(self.surface_send_error(e.into()));
        }
        loop {
            match self.recv()? {
                Response::Frame(f) => self.frames.push(f),
                Response::Packet(p) => self.packets.push(p),
                Response::Stats(stats) => {
                    return Ok(StreamSummary {
                        frames: self.frames,
                        packets: self.packets,
                        stats,
                        latencies: self.latencies,
                    })
                }
            }
        }
    }
}
