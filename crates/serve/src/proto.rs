//! The `nvc-serve` wire protocol.
//!
//! Everything on the socket is a tagged message; all integers are
//! little-endian. A connection is:
//!
//! ```text
//! client                                server
//!   |-- Hello ("NVCS", ver, family,       |
//!   |          direction, w, h, rate) --> |
//!   |<------------- 'A' ack (rate) ------ |   (or 'X' error + close)
//!   |-- 'P' packet / 'F' frame ---------> |   one per coded/raw frame
//!   |<-- 'F' frame / 'P' packet --------- |   same order, same count
//!   |-- 'E' end ------------------------> |
//!   |<-- 'S' stats trailer -------------- |   then both sides close
//! ```
//!
//! * `'P'` carries one serialized [`Packet`] (self-delimiting: length
//!   prefix, frame index, frame kind, payload CRC32).
//! * `'F'` carries one raw frame:
//!   `[index: u32][w: u16][h: u16][crc32: u32][rgb: 3·w·h f32 LE]`.
//!   The CRC covers the pixel bytes, so a decode client detects
//!   corruption exactly as the server detects it on coded packets.
//! * `'S'` carries the stream's [`StreamStats`]: per-frame payload bytes
//!   and per-frame serialized bits.
//! * `'X'` carries a UTF-8 failure description; the sender closes the
//!   connection right after. It is valid at any point, including instead
//!   of the handshake ack.
//!
//! The module is public so alternative transports (or tests) can speak
//! the protocol directly; [`StreamClient`](crate::StreamClient) and
//! [`Server`](crate::Server) are the intended entry points.

use crate::ServeError;
use nvc_entropy::container::{crc32, Packet};
use nvc_tensor::{Shape, Tensor};
use nvc_video::{Frame, FrameType, StreamStats};
use std::io::{Read, Write};

/// Handshake magic: every connection starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"NVCS";

/// Wire-protocol version. Version 2 added the handshake's rate-mode
/// field (closed-loop target-bpp streams), the `'R'` retarget message
/// and the extended stats trailer (per-frame frame types and rate
/// indices).
pub const VERSION: u8 = 2;

/// Oldest protocol version still accepted: version-1 (fixed-rate only)
/// clients keep working against a version-2 server, and get the
/// version-1 trailer they expect.
pub const MIN_VERSION: u8 = 1;

/// Hard cap on frame dimensions accepted from the wire, keeping a
/// hostile `Hello` or frame header from forcing a giant allocation.
pub const MAX_DIM: usize = 8192;

/// Cap on an error-message body.
pub const MAX_ERROR_BYTES: usize = 1 << 16;

/// Cap on the frame count a stats trailer may claim.
pub const MAX_STATS_FRAMES: usize = 1 << 20;

/// Message tag: handshake acknowledgement (server → client).
pub const MSG_ACK: u8 = b'A';
/// Message tag: one serialized coded packet.
pub const MSG_PACKET: u8 = b'P';
/// Message tag: one raw frame.
pub const MSG_FRAME: u8 = b'F';
/// Message tag: end of stream (client → server).
pub const MSG_END: u8 = b'E';
/// Message tag: mid-stream rate retarget (client → server, encode
/// streams, protocol version ≥ 2). Applies in stream order: frames sent
/// before the retarget are coded under the old mode, frames after it
/// under the new one.
pub const MSG_RETARGET: u8 = b'R';
/// Message tag: stream statistics trailer (server → client).
pub const MSG_STATS: u8 = b'S';
/// Message tag: failure description, connection closes after.
pub const MSG_ERROR: u8 = b'X';

/// Which codec family serves the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The learned CTVC-Net codec (rate = `RatePoint` index, validated
    /// via `RatePoint::try_new`).
    Ctvc,
    /// The classical hybrid baseline (rate = QP).
    Hybrid,
}

impl Family {
    fn tag(self) -> u8 {
        match self {
            Family::Ctvc => 0,
            Family::Hybrid => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ServeError> {
        match tag {
            0 => Ok(Family::Ctvc),
            1 => Ok(Family::Hybrid),
            other => Err(ServeError::Protocol(format!(
                "unknown codec family 0x{other:02X}"
            ))),
        }
    }
}

/// Which side of the codec the *server* runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Server encodes: the client streams raw frames and receives coded
    /// packets.
    Encode,
    /// Server decodes: the client streams coded packets and receives
    /// reconstructed frames.
    Decode,
}

impl Direction {
    fn tag(self) -> u8 {
        match self {
            Direction::Encode => 0,
            Direction::Decode => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ServeError> {
        match tag {
            0 => Ok(Direction::Encode),
            1 => Ok(Direction::Decode),
            other => Err(ServeError::Protocol(format!(
                "unknown direction 0x{other:02X}"
            ))),
        }
    }
}

/// Closed-loop rate target as carried on the wire (protocol ≥ 2):
/// bits-per-pixel in 1/1000 units plus a smoothing window in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetBppWire {
    /// Target rate in milli-bits-per-pixel (`1000 × bpp`).
    pub milli_bpp: u32,
    /// Smoothing window in frames (0 = server default).
    pub window: u16,
}

impl TargetBppWire {
    /// Builds the wire form from a bits-per-pixel target. Positive
    /// targets below the wire's 1/1000 resolution round *up* to one
    /// milli-bpp, so they stay positive on the wire instead of being
    /// quantized to zero and rejected server-side.
    pub fn from_bpp(bpp: f64, window: u16) -> Self {
        let milli_bpp = if bpp > 0.0 {
            ((bpp * 1000.0).round() as u32).max(1)
        } else {
            0
        };
        TargetBppWire { milli_bpp, window }
    }

    /// The target in bits per pixel.
    pub fn bpp(&self) -> f64 {
        f64::from(self.milli_bpp) / 1000.0
    }
}

/// The handshake opening every connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version this handshake is serialized as. Constructors
    /// set the current [`VERSION`]; set `1` to speak to (or emulate) a
    /// fixed-rate-only peer — then `target` must be `None`.
    pub version: u8,
    /// Codec family serving the stream.
    pub family: Family,
    /// Which side of the codec the server runs.
    pub direction: Direction,
    /// Stream width in pixels.
    pub width: usize,
    /// Stream height in pixels.
    pub height: usize,
    /// Rate parameter: a `RatePoint` index for [`Family::Ctvc`]
    /// (validated server-side via `try_new`), a QP for
    /// [`Family::Hybrid`]. For decode streams the authoritative rate
    /// rides in the bitstream header; the handshake value is still
    /// validated so a bogus request fails fast.
    pub rate: u8,
    /// Closed-loop rate mode for encode streams: when set, `rate` is
    /// not used at all — the server's controller picks every frame's
    /// rate, including the first (the ack still echoes `rate` for wire
    /// compatibility). Must be `None` for decode streams and version-1
    /// handshakes.
    pub target: Option<TargetBppWire>,
}

impl Hello {
    fn new(family: Family, direction: Direction, rate: u8, width: usize, height: usize) -> Self {
        Hello {
            version: VERSION,
            family,
            direction,
            width,
            height,
            rate,
            target: None,
        }
    }

    /// Handshake for a CTVC decode stream (client sends packets).
    pub fn ctvc_decode(rate: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Ctvc, Direction::Decode, rate, width, height)
    }

    /// Handshake for a CTVC encode stream (client sends raw frames).
    pub fn ctvc_encode(rate: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Ctvc, Direction::Encode, rate, width, height)
    }

    /// Handshake for a hybrid-baseline decode stream.
    pub fn hybrid_decode(qp: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Hybrid, Direction::Decode, qp, width, height)
    }

    /// Handshake for a hybrid-baseline encode stream.
    pub fn hybrid_encode(qp: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Hybrid, Direction::Encode, qp, width, height)
    }

    /// Switches an encode handshake to closed-loop target-bpp mode
    /// (`window` frames of smoothing, 0 = server default).
    pub fn with_target_bpp(mut self, bpp: f64, window: u16) -> Self {
        self.target = Some(TargetBppWire::from_bpp(bpp, window));
        self
    }

    /// Serializes the handshake in its `version`'s layout.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for geometry outside `1..=`[`MAX_DIM`]
    /// (which would otherwise truncate silently in the `u16` wire
    /// fields), for an unserializable version, or for a rate target on
    /// a version-1 handshake; propagates writer failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        check_wire_dims(self.width, self.height)?;
        if self.version < MIN_VERSION || self.version > VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("cannot serialize protocol version {}", self.version),
            ));
        }
        if self.version < 2 && self.target.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "target-bpp mode needs protocol version 2",
            ));
        }
        w.write_all(&MAGIC)?;
        w.write_all(&[
            self.version,
            self.family.tag(),
            self.direction.tag(),
            self.rate,
        ])?;
        w.write_all(&(self.width as u16).to_le_bytes())?;
        w.write_all(&(self.height as u16).to_le_bytes())?;
        if self.version >= 2 {
            match self.target {
                None => {
                    w.write_all(&[0])?;
                    w.write_all(&0u32.to_le_bytes())?;
                    w.write_all(&0u16.to_le_bytes())?;
                }
                Some(t) => {
                    w.write_all(&[1])?;
                    w.write_all(&t.milli_bpp.to_le_bytes())?;
                    w.write_all(&t.window.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Reads and structurally validates a handshake (magic, supported
    /// version, known tags, plausible geometry) — both the version-1 and
    /// version-2 layouts. Semantic validation — rate range, target
    /// plausibility, codec-specific geometry constraints — happens
    /// server-side after this.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] on anything that is not a
    /// well-formed handshake of a supported version.
    pub fn read_from(r: &mut impl Read) -> Result<Hello, ServeError> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)
            .map_err(|e| ServeError::Protocol(format!("truncated handshake: {e}")))?;
        if head[0..4] != MAGIC {
            return Err(ServeError::Protocol(format!(
                "bad magic {:02X?} (expected \"NVCS\")",
                &head[0..4]
            )));
        }
        let version = head[4];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ServeError::Protocol(format!(
                "unsupported protocol version {version} (accepted {MIN_VERSION}..={VERSION})"
            )));
        }
        let family = Family::from_tag(head[5])?;
        let direction = Direction::from_tag(head[6])?;
        let rate = head[7];
        let width = read_u16(r)? as usize;
        let height = read_u16(r)? as usize;
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(ServeError::Protocol(format!(
                "implausible stream geometry {width}x{height}"
            )));
        }
        let target = if version >= 2 {
            let mode = read_u8(r)?;
            let milli_bpp = read_u32(r)?;
            let window = read_u16(r)?;
            match mode {
                0 => None,
                1 => Some(TargetBppWire { milli_bpp, window }),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown rate-mode tag 0x{other:02X}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Hello {
            version,
            family,
            direction,
            width,
            height,
            rate,
            target,
        })
    }
}

/// A mid-stream rate retarget (the `'R'` message): replaces the encode
/// session's rate mode in stream order, optionally forcing an intra
/// refresh at the switch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retarget {
    /// New fixed rate (`RatePoint` index / QP) when `target` is `None`.
    pub rate: u8,
    /// New closed-loop target; takes precedence over `rate`.
    pub target: Option<TargetBppWire>,
    /// Whether the next frame must restart the GOP with an intra frame.
    pub restart_gop: bool,
}

impl Retarget {
    /// Retarget to a fixed rate.
    pub fn fixed(rate: u8) -> Self {
        Retarget {
            rate,
            target: None,
            restart_gop: false,
        }
    }

    /// Retarget to a closed-loop bpp target.
    pub fn target_bpp(bpp: f64, window: u16) -> Self {
        Retarget {
            rate: 0,
            target: Some(TargetBppWire::from_bpp(bpp, window)),
            restart_gop: false,
        }
    }

    /// Also force an intra refresh at the switch.
    pub fn with_restart(mut self) -> Self {
        self.restart_gop = true;
        self
    }
}

/// Writes one retarget message (`'R'` tag + body).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_retarget_msg(w: &mut impl Write, retarget: &Retarget) -> std::io::Result<()> {
    w.write_all(&[MSG_RETARGET])?;
    let (mode, milli_bpp, window) = match retarget.target {
        None => (0u8, 0u32, 0u16),
        Some(t) => (1, t.milli_bpp, t.window),
    };
    w.write_all(&[mode, retarget.rate])?;
    w.write_all(&milli_bpp.to_le_bytes())?;
    w.write_all(&window.to_le_bytes())?;
    w.write_all(&[u8::from(retarget.restart_gop)])
}

/// Reads a retarget body (after its `'R'` tag).
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation or an unknown
/// rate-mode tag.
pub fn read_retarget_body(r: &mut impl Read) -> Result<Retarget, ServeError> {
    let mode = read_u8(r)?;
    let rate = read_u8(r)?;
    let milli_bpp = read_u32(r)?;
    let window = read_u16(r)?;
    let restart = read_u8(r)?;
    let target = match mode {
        0 => None,
        1 => Some(TargetBppWire { milli_bpp, window }),
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown rate-mode tag 0x{other:02X}"
            )))
        }
    };
    Ok(Retarget {
        rate,
        target,
        restart_gop: restart != 0,
    })
}

fn check_wire_dims(width: usize, height: usize) -> std::io::Result<()> {
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("geometry {width}x{height} outside the wire range 1..={MAX_DIM}"),
        ));
    }
    Ok(())
}

pub(crate) fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u16(r: &mut impl Read) -> std::io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

pub(crate) fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes one raw-frame message (`'F'` tag + body).
///
/// # Errors
///
/// Returns `InvalidInput` for frames outside the wire's geometry range
/// (see [`MAX_DIM`]); propagates writer failures.
pub fn write_frame_msg(w: &mut impl Write, index: u32, frame: &Frame) -> std::io::Result<()> {
    check_wire_dims(frame.width(), frame.height())?;
    let data = frame.tensor().as_slice();
    let mut payload = Vec::with_capacity(data.len() * 4);
    for v in data {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&[MSG_FRAME])?;
    w.write_all(&index.to_le_bytes())?;
    w.write_all(&(frame.width() as u16).to_le_bytes())?;
    w.write_all(&(frame.height() as u16).to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads a raw-frame body (after its `'F'` tag), validating geometry
/// plausibility and the pixel CRC. Returns the sender's frame index and
/// the frame; f32 bit patterns round-trip exactly.
///
/// When `expect` gives the stream's negotiated geometry, the header is
/// checked against it *before* any payload is read — a hostile size
/// field can then never drive an allocation or a blocking bulk read.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation, implausible or
/// mismatched geometry, or CRC mismatch.
pub fn read_frame_body(
    r: &mut impl Read,
    expect: Option<(usize, usize)>,
) -> Result<(u32, Frame), ServeError> {
    let index = read_u32(r)?;
    let width = read_u16(r)? as usize;
    let height = read_u16(r)? as usize;
    let crc = read_u32(r)?;
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(ServeError::Protocol(format!(
            "implausible frame geometry {width}x{height}"
        )));
    }
    if let Some((ew, eh)) = expect {
        if (width, height) != (ew, eh) {
            return Err(ServeError::Protocol(format!(
                "frame {width}x{height} does not match negotiated {ew}x{eh}"
            )));
        }
    }
    let mut payload = vec![0u8; 12 * width * height];
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Protocol(format!("truncated frame payload: {e}")))?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(ServeError::Protocol(format!(
            "frame CRC mismatch: stored {crc:08X}, computed {actual:08X}"
        )));
    }
    let mut tensor = Tensor::zeros(Shape::new(1, 3, height, width));
    for (v, chunk) in tensor
        .as_mut_slice()
        .iter_mut()
        .zip(payload.chunks_exact(4))
    {
        *v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    let frame = Frame::from_tensor(tensor).map_err(|e| ServeError::Protocol(e.to_string()))?;
    Ok((index, frame))
}

/// Writes one coded-packet message (`'P'` tag + serialized packet).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_packet_msg(w: &mut impl Write, packet: &Packet) -> std::io::Result<()> {
    w.write_all(&[MSG_PACKET])?;
    w.write_all(&packet.to_bytes())
}

/// Writes the stream-statistics trailer (`'S'` tag + body) in the given
/// protocol version's layout: version ≥ 2 appends one frame-type byte
/// (`'I'`/`'P'`) and one rate byte per frame, so clients can see which
/// frames absorbed rate changes.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_stats_msg(
    w: &mut impl Write,
    stats: &StreamStats,
    version: u8,
) -> std::io::Result<()> {
    w.write_all(&[MSG_STATS])?;
    w.write_all(&(stats.frames as u32).to_le_bytes())?;
    w.write_all(&(stats.total_bytes as u64).to_le_bytes())?;
    for &b in &stats.bytes_per_frame {
        w.write_all(&(b as u32).to_le_bytes())?;
    }
    for &b in &stats.bits_per_frame {
        w.write_all(&b.to_le_bytes())?;
    }
    if version >= 2 {
        for kind in &stats.frame_types {
            w.write_all(&[match kind {
                FrameType::Intra => b'I',
                FrameType::Predicted => b'P',
            }])?;
        }
        for &rate in &stats.rate_per_frame {
            w.write_all(&[rate])?;
        }
    }
    Ok(())
}

/// Reads a stream-statistics body (after its `'S'` tag) in the given
/// protocol version's layout. Version-1 trailers leave
/// `frame_types`/`rate_per_frame` empty.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation, an implausible frame
/// count, or an unknown frame-type byte.
pub fn read_stats_body(r: &mut impl Read, version: u8) -> Result<StreamStats, ServeError> {
    let frames = read_u32(r)? as usize;
    if frames > MAX_STATS_FRAMES {
        return Err(ServeError::Protocol(format!(
            "stats trailer claims {frames} frames"
        )));
    }
    let total_bytes = read_u64(r)? as usize;
    let mut bytes_per_frame = Vec::with_capacity(frames);
    for _ in 0..frames {
        bytes_per_frame.push(read_u32(r)? as usize);
    }
    let mut bits_per_frame = Vec::with_capacity(frames);
    for _ in 0..frames {
        bits_per_frame.push(read_u64(r)?);
    }
    let mut frame_types = Vec::new();
    let mut rate_per_frame = Vec::new();
    if version >= 2 {
        frame_types.reserve(frames);
        for _ in 0..frames {
            frame_types.push(match read_u8(r)? {
                b'I' => FrameType::Intra,
                b'P' => FrameType::Predicted,
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown frame-type byte 0x{other:02X} in stats trailer"
                    )))
                }
            });
        }
        rate_per_frame.reserve(frames);
        for _ in 0..frames {
            rate_per_frame.push(read_u8(r)?);
        }
    }
    Ok(StreamStats {
        frames,
        bytes_per_frame,
        bits_per_frame,
        frame_types,
        rate_per_frame,
        total_bytes,
    })
}

/// Writes a failure-description message (`'X'` tag + body). The sender
/// closes the connection after this.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_error_msg(w: &mut impl Write, message: &str) -> std::io::Result<()> {
    let bytes = message.as_bytes();
    let len = bytes.len().min(MAX_ERROR_BYTES);
    w.write_all(&[MSG_ERROR])?;
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&bytes[..len])
}

/// Reads a failure-description body (after its `'X'` tag).
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation or an oversized body.
pub fn read_error_body(r: &mut impl Read) -> Result<String, ServeError> {
    let len = read_u32(r)? as usize;
    if len > MAX_ERROR_BYTES {
        return Err(ServeError::Protocol(format!(
            "error message claims {len} bytes"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)
        .map_err(|e| ServeError::Protocol(format!("truncated error message: {e}")))?;
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips() {
        let h = Hello::ctvc_decode(2, 96, 64);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h);
        for h in [
            Hello::ctvc_encode(0, 16, 16),
            Hello::hybrid_decode(40, 640, 368),
            Hello::hybrid_encode(28, 1920, 1088),
        ] {
            let mut buf = Vec::new();
            h.write_to(&mut buf).unwrap();
            assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h);
        }
    }

    #[test]
    fn hello_rejects_garbage() {
        // Bad magic.
        assert!(Hello::read_from(&mut &b"XXXX\x01\x00\x00\x00\x10\x00\x10\x00"[..]).is_err());
        // Bad version.
        assert!(Hello::read_from(&mut &b"NVCS\x09\x00\x00\x00\x10\x00\x10\x00"[..]).is_err());
        // Unknown family / direction tags.
        assert!(Hello::read_from(&mut &b"NVCS\x01\x07\x00\x00\x10\x00\x10\x00"[..]).is_err());
        assert!(Hello::read_from(&mut &b"NVCS\x01\x00\x07\x00\x10\x00\x10\x00"[..]).is_err());
        // Zero geometry.
        assert!(Hello::read_from(&mut &b"NVCS\x01\x00\x00\x00\x00\x00\x10\x00"[..]).is_err());
        // Truncation at every prefix.
        let mut buf = Vec::new();
        Hello::ctvc_decode(1, 32, 32).write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(Hello::read_from(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn frame_message_roundtrips_bit_exactly() {
        let frame = Frame::from_tensor(Tensor::from_fn(Shape::new(1, 3, 6, 4), |_, c, y, x| {
            (c * 100 + y * 10 + x) as f32 * 0.01 - 0.3
        }))
        .unwrap();
        let mut buf = Vec::new();
        write_frame_msg(&mut buf, 7, &frame).unwrap();
        assert_eq!(buf[0], MSG_FRAME);
        let (index, back) = read_frame_body(&mut &buf[1..], None).unwrap();
        assert_eq!(index, 7);
        assert_eq!(back.tensor().as_slice(), frame.tensor().as_slice());
        // A negotiated-geometry mismatch is caught on the header alone.
        assert!(read_frame_body(&mut &buf[1..], Some((4, 6))).is_ok());
        assert!(read_frame_body(&mut &buf[1..13], Some((16, 16))).is_err());
        // Pixel corruption is caught by the CRC.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(read_frame_body(&mut &buf[1..], None).is_err());
        // Truncation fails cleanly.
        assert!(read_frame_body(&mut &buf[1..buf.len() - 4], None).is_err());
    }

    #[test]
    fn write_side_rejects_untransmittable_geometry() {
        let mut buf = Vec::new();
        let hello = Hello::ctvc_encode(1, MAX_DIM + 16, 32);
        let err = hello.write_to(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing may hit the wire on rejection");
    }

    #[test]
    fn stats_message_roundtrips() {
        let stats = StreamStats {
            frames: 3,
            bytes_per_frame: vec![120, 40, 41],
            bits_per_frame: vec![1064, 424, 432],
            frame_types: vec![FrameType::Intra, FrameType::Predicted, FrameType::Predicted],
            rate_per_frame: vec![1, 1, 2],
            total_bytes: 240,
        };
        let mut buf = Vec::new();
        write_stats_msg(&mut buf, &stats, VERSION).unwrap();
        assert_eq!(buf[0], MSG_STATS);
        assert_eq!(read_stats_body(&mut &buf[1..], VERSION).unwrap(), stats);
        assert!(read_stats_body(&mut &buf[1..buf.len() - 1], VERSION).is_err());

        // The version-1 layout drops the frame-type and rate columns.
        let mut v1 = Vec::new();
        write_stats_msg(&mut v1, &stats, 1).unwrap();
        assert!(v1.len() < buf.len());
        let back = read_stats_body(&mut &v1[1..], 1).unwrap();
        assert_eq!(back.bits_per_frame, stats.bits_per_frame);
        assert!(back.frame_types.is_empty() && back.rate_per_frame.is_empty());
    }

    #[test]
    fn retarget_message_roundtrips() {
        let mut buf = Vec::new();
        for r in [
            Retarget::fixed(2),
            Retarget::fixed(3).with_restart(),
            Retarget::target_bpp(0.25, 8),
            Retarget::target_bpp(1.5, 0).with_restart(),
        ] {
            buf.clear();
            write_retarget_msg(&mut buf, &r).unwrap();
            assert_eq!(buf[0], MSG_RETARGET);
            assert_eq!(read_retarget_body(&mut &buf[1..]).unwrap(), r);
        }
        // Truncation and unknown mode tags fail cleanly.
        assert!(read_retarget_body(&mut &buf[1..buf.len() - 1]).is_err());
        buf[1] = 0x07;
        assert!(read_retarget_body(&mut &buf[1..]).is_err());
    }

    #[test]
    fn version1_hello_still_parses() {
        // The exact 12-byte layout version-1 clients send.
        let mut v1 = Hello::ctvc_encode(1, 32, 32);
        v1.version = 1;
        let mut buf = Vec::new();
        v1.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 12, "version-1 layout is 12 bytes");
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), v1);
        // A version-1 handshake cannot carry a rate target.
        let bad = v1.with_target_bpp(0.3, 4);
        assert!(bad.write_to(&mut Vec::new()).is_err());
    }

    #[test]
    fn target_bpp_hello_roundtrips() {
        let h = Hello::hybrid_encode(30, 64, 48).with_target_bpp(0.42, 6);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = Hello::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back, h);
        let t = back.target.unwrap();
        assert_eq!(t.milli_bpp, 420);
        assert!((t.bpp() - 0.42).abs() < 1e-9);
        assert_eq!(t.window, 6);
    }

    #[test]
    fn error_message_roundtrips_and_caps() {
        let mut buf = Vec::new();
        write_error_msg(&mut buf, "decode: packet CRC mismatch").unwrap();
        assert_eq!(buf[0], MSG_ERROR);
        assert_eq!(
            read_error_body(&mut &buf[1..]).unwrap(),
            "decode: packet CRC mismatch"
        );
        // A hostile length field is rejected without allocating.
        let mut hostile = vec![0xFF, 0xFF, 0xFF, 0x7F];
        hostile.extend_from_slice(b"x");
        assert!(read_error_body(&mut &hostile[..]).is_err());
    }
}
