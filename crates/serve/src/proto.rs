//! The `nvc-serve` wire protocol.
//!
//! Everything on the socket is a tagged message; all integers are
//! little-endian. A connection is:
//!
//! ```text
//! client                                server
//!   |-- Hello ("NVCS", ver, family,       |
//!   |          direction, w, h, rate) --> |
//!   |<------------- 'A' ack (rate) ------ |   (or 'X' error + close)
//!   |-- 'P' packet / 'F' frame ---------> |   one per coded/raw frame
//!   |<-- 'F' frame / 'P' packet --------- |   same order, same count
//!   |-- 'E' end ------------------------> |
//!   |<-- 'S' stats trailer -------------- |   then both sides close
//! ```
//!
//! * `'P'` carries one serialized [`Packet`] (self-delimiting: length
//!   prefix, frame index, frame kind, payload CRC32).
//! * `'F'` carries one raw frame:
//!   `[index: u32][w: u16][h: u16][crc32: u32][rgb: 3·w·h f32 LE]`.
//!   The CRC covers the pixel bytes, so a decode client detects
//!   corruption exactly as the server detects it on coded packets.
//! * `'S'` carries the stream's [`StreamStats`]: per-frame payload bytes
//!   and per-frame serialized bits.
//! * `'X'` carries a UTF-8 failure description; the sender closes the
//!   connection right after. It is valid at any point, including instead
//!   of the handshake ack.
//!
//! Protocol version 3 adds *broadcast* roles. A [`Role::Publish`]
//! connection looks like an encode stream (frames up, the publisher's
//! own coded packets back), but the server also fans the packets out to
//! every subscriber of the broadcast named in the handshake. A
//! [`Role::Subscribe`] connection is read-mostly:
//!
//! ```text
//! subscriber                            server
//!   |-- Hello (Subscribe, name) ------->  |
//!   |<------------- 'A' ack (rate) ------ |   (or 'X' error + close)
//!   |<-- 'J' join info ------------------ |   family, geometry, start
//!   |<-- 'P' packet --------------------- |   starting at an intra
//!   |<-- ...                              |
//!   |<-- 'S' stats trailer -------------- |   when the publisher ends
//! ```
//!
//! Subscribers that stop draining are *evicted*: the server drops their
//! ring and sends `'X'` instead of ever stalling the publisher.
//!
//! Protocol version 4 adds the *governed* handshake: the `Hello` may
//! carry a client identity (the governor's per-client fairness key) and
//! the ack grows a flags byte ([`Ack`]) so the server can admit a
//! session *degraded* — granted a lower starting rung than requested —
//! instead of rejecting it outright when the aggregate budget is tight.
//!
//! The module is public so alternative transports (or tests) can speak
//! the protocol directly; [`StreamClient`](crate::StreamClient),
//! [`SubscribeClient`](crate::SubscribeClient) and
//! [`Server`](crate::Server) are the intended entry points.

use crate::ServeError;
use nvc_entropy::container::{crc32, Packet, MAX_PAYLOAD_BYTES, PACKET_HEADER_BYTES};
use nvc_tensor::{Shape, Tensor};
use nvc_video::{Frame, FrameType, StreamStats};
use std::io::{Read, Write};

/// Handshake magic: every connection starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"NVCS";

/// Wire-protocol version. Version 2 added the handshake's rate-mode
/// field (closed-loop target-bpp streams), the `'R'` retarget message
/// and the extended stats trailer (per-frame frame types and rate
/// indices). Version 3 added the broadcast roles ([`Role::Publish`] /
/// [`Role::Subscribe`]), the handshake's GOP-length and broadcast-name
/// fields, and the `'J'` join-info message. Version 4 added the
/// handshake's optional client-identity field (the governor's fairness
/// key) and the ack's flags byte (degraded admission, see
/// [`ACK_DEGRADED`]).
pub const VERSION: u8 = 4;

/// Oldest protocol version still accepted: version-1 (fixed-rate only)
/// through version-3 (two-byte-ack) clients keep working against a
/// version-4 server, and get the ack and trailer layouts they expect.
pub const MIN_VERSION: u8 = 1;

/// Cap on a broadcast name as carried in a version-3 handshake, and on
/// a client identity as carried in a version-4 handshake.
pub const MAX_NAME_BYTES: usize = 128;

/// Hard cap on frame dimensions accepted from the wire, keeping a
/// hostile `Hello` or frame header from forcing a giant allocation.
pub const MAX_DIM: usize = 8192;

/// Cap on an error-message body.
pub const MAX_ERROR_BYTES: usize = 1 << 16;

/// Cap on the frame count a stats trailer may claim.
pub const MAX_STATS_FRAMES: usize = 1 << 20;

/// Message tag: handshake acknowledgement (server → client).
pub const MSG_ACK: u8 = b'A';
/// Ack flags bit (protocol version ≥ 4): the session was admitted
/// *degraded* — the server's governor granted less than the requested
/// rate, and the ack's rate byte carries the granted starting rung
/// instead of echoing the request. The stream still runs; the rate is
/// restored in-band as load drains.
pub const ACK_DEGRADED: u8 = 0x01;
/// Message tag: one serialized coded packet.
pub const MSG_PACKET: u8 = b'P';
/// Message tag: one raw frame.
pub const MSG_FRAME: u8 = b'F';
/// Message tag: end of stream (client → server).
pub const MSG_END: u8 = b'E';
/// Message tag: mid-stream rate retarget (client → server, encode
/// streams, protocol version ≥ 2). Applies in stream order: frames sent
/// before the retarget are coded under the old mode, frames after it
/// under the new one.
pub const MSG_RETARGET: u8 = b'R';
/// Message tag: stream statistics trailer (server → client).
pub const MSG_STATS: u8 = b'S';
/// Message tag: failure description, connection closes after.
pub const MSG_ERROR: u8 = b'X';
/// Message tag: broadcast join info (server → subscriber, protocol
/// version ≥ 3), sent right after the ack so the subscriber knows the
/// stream's family, geometry, GOP length and starting frame index
/// before the first packet arrives.
pub const MSG_JOIN: u8 = b'J';

/// Which codec family serves the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The learned CTVC-Net codec (rate = `RatePoint` index, validated
    /// via `RatePoint::try_new`).
    Ctvc,
    /// The classical hybrid baseline (rate = QP).
    Hybrid,
}

impl Family {
    fn tag(self) -> u8 {
        match self {
            Family::Ctvc => 0,
            Family::Hybrid => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ServeError> {
        match tag {
            0 => Ok(Family::Ctvc),
            1 => Ok(Family::Hybrid),
            other => Err(ServeError::Protocol(format!(
                "unknown codec family 0x{other:02X}"
            ))),
        }
    }
}

/// What the *server* does with the stream.
///
/// The first two roles are the point-to-point streams every protocol
/// version supports; the broadcast roles need protocol version ≥ 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Server encodes: the client streams raw frames and receives coded
    /// packets.
    Encode,
    /// Server decodes: the client streams coded packets and receives
    /// reconstructed frames.
    Decode,
    /// Server encodes *and relays*: like [`Role::Encode`], but the coded
    /// packets are also published under the handshake's broadcast name
    /// for any number of subscribers (protocol version ≥ 3).
    Publish,
    /// Server relays: the client sends nothing after the handshake and
    /// receives the named broadcast's packets, starting at an intra
    /// boundary (protocol version ≥ 3).
    Subscribe,
}

/// The server-side role of a connection. Known as `Direction` before
/// the broadcast roles arrived in protocol version 3.
pub type Direction = Role;

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::Encode => 0,
            Role::Decode => 1,
            Role::Publish => 2,
            Role::Subscribe => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, ServeError> {
        match tag {
            0 => Ok(Role::Encode),
            1 => Ok(Role::Decode),
            2 => Ok(Role::Publish),
            3 => Ok(Role::Subscribe),
            other => Err(ServeError::Protocol(format!("unknown role 0x{other:02X}"))),
        }
    }

    /// Whether this role takes part in a broadcast (and therefore needs
    /// a broadcast name and protocol version ≥ 3).
    pub fn is_broadcast(self) -> bool {
        matches!(self, Role::Publish | Role::Subscribe)
    }
}

/// Closed-loop rate target as carried on the wire (protocol ≥ 2):
/// bits-per-pixel in 1/1000 units plus a smoothing window in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetBppWire {
    /// Target rate in milli-bits-per-pixel (`1000 × bpp`).
    pub milli_bpp: u32,
    /// Smoothing window in frames (0 = server default).
    pub window: u16,
}

impl TargetBppWire {
    /// Builds the wire form from a bits-per-pixel target. Positive
    /// targets below the wire's 1/1000 resolution round *up* to one
    /// milli-bpp, so they stay positive on the wire instead of being
    /// quantized to zero and rejected server-side.
    pub fn from_bpp(bpp: f64, window: u16) -> Self {
        let milli_bpp = if bpp > 0.0 {
            ((bpp * 1000.0).round() as u32).max(1)
        } else {
            0
        };
        TargetBppWire { milli_bpp, window }
    }

    /// The target in bits per pixel.
    pub fn bpp(&self) -> f64 {
        f64::from(self.milli_bpp) / 1000.0
    }
}

/// The handshake opening every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version this handshake is serialized as. Constructors
    /// set the current [`VERSION`]; set `1` to speak to (or emulate) a
    /// fixed-rate-only peer — then `target` must be `None`.
    pub version: u8,
    /// Codec family serving the stream.
    pub family: Family,
    /// What the server does with the stream.
    pub role: Role,
    /// Stream width in pixels.
    pub width: usize,
    /// Stream height in pixels.
    pub height: usize,
    /// Rate parameter: a `RatePoint` index for [`Family::Ctvc`]
    /// (validated server-side via `try_new`), a QP for
    /// [`Family::Hybrid`]. For decode streams the authoritative rate
    /// rides in the bitstream header; the handshake value is still
    /// validated so a bogus request fails fast. Subscribers send 0 and
    /// learn the broadcast's rate from the ack.
    pub rate: u8,
    /// Closed-loop rate mode for encode/publish streams: when set,
    /// `rate` is not used at all — the server's controller picks every
    /// frame's rate, including the first (the ack still echoes `rate`
    /// for wire compatibility). Must be `None` for decode/subscribe
    /// streams and version-1 handshakes.
    pub target: Option<TargetBppWire>,
    /// Publish streams: requested GOP length in frames (0 = server
    /// default). Ignored for other roles; must be 0 below version 3.
    pub gop: u16,
    /// Broadcast name — required (non-empty, ≤ [`MAX_NAME_BYTES`]) for
    /// the broadcast roles, forbidden otherwise.
    pub broadcast: Option<String>,
    /// Client identity (protocol version ≥ 4, optional): the governor's
    /// per-client fairness key, so one client opening many sessions
    /// shares one budget slice instead of multiplying its share. `None`
    /// (or empty on the wire) makes the server fall back to the peer
    /// address. Must be `None` below version 4.
    pub client: Option<String>,
}

impl Hello {
    fn new(family: Family, role: Role, rate: u8, width: usize, height: usize) -> Self {
        Hello {
            version: VERSION,
            family,
            role,
            width,
            height,
            rate,
            target: None,
            gop: 0,
            broadcast: None,
            client: None,
        }
    }

    /// Handshake for a CTVC decode stream (client sends packets).
    pub fn ctvc_decode(rate: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Ctvc, Role::Decode, rate, width, height)
    }

    /// Handshake for a CTVC encode stream (client sends raw frames).
    pub fn ctvc_encode(rate: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Ctvc, Role::Encode, rate, width, height)
    }

    /// Handshake for a hybrid-baseline decode stream.
    pub fn hybrid_decode(qp: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Hybrid, Role::Decode, qp, width, height)
    }

    /// Handshake for a hybrid-baseline encode stream.
    pub fn hybrid_encode(qp: u8, width: usize, height: usize) -> Self {
        Self::new(Family::Hybrid, Role::Encode, qp, width, height)
    }

    /// Handshake publishing a CTVC broadcast under `name` (client sends
    /// raw frames; the server encodes once and fans out).
    pub fn ctvc_publish(rate: u8, width: usize, height: usize, name: &str) -> Self {
        let mut h = Self::new(Family::Ctvc, Role::Publish, rate, width, height);
        h.broadcast = Some(name.to_string());
        h
    }

    /// Handshake publishing a hybrid-baseline broadcast under `name`.
    pub fn hybrid_publish(qp: u8, width: usize, height: usize, name: &str) -> Self {
        let mut h = Self::new(Family::Hybrid, Role::Publish, qp, width, height);
        h.broadcast = Some(name.to_string());
        h
    }

    /// Handshake subscribing to the broadcast named `name`. Geometry
    /// must match the publisher's (the mismatch fails fast at the
    /// handshake instead of at the first undecodable packet).
    pub fn subscribe(name: &str, width: usize, height: usize) -> Self {
        let mut h = Self::new(Family::Ctvc, Role::Subscribe, 0, width, height);
        h.broadcast = Some(name.to_string());
        h
    }

    /// Switches an encode handshake to closed-loop target-bpp mode
    /// (`window` frames of smoothing, 0 = server default).
    pub fn with_target_bpp(mut self, bpp: f64, window: u16) -> Self {
        self.target = Some(TargetBppWire::from_bpp(bpp, window));
        self
    }

    /// Sets a publish stream's GOP length in frames (0 = server
    /// default): the relay forces an intra refresh every `gop` frames so
    /// late subscribers never wait longer than one GOP to join.
    pub fn with_gop(mut self, gop: u16) -> Self {
        self.gop = gop;
        self
    }

    /// Switches a subscribe handshake's family expectation (the
    /// constructor defaults to CTVC).
    pub fn with_family(mut self, family: Family) -> Self {
        self.family = family;
        self
    }

    /// Sets the client identity carried in a version-4 handshake — the
    /// governor's per-client fairness key. Sessions sharing an identity
    /// share one slice of the budget.
    pub fn with_client(mut self, client: &str) -> Self {
        self.client = Some(client.to_string());
        self
    }

    /// Serializes the handshake in its `version`'s layout.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for geometry outside `1..=`[`MAX_DIM`]
    /// (which would otherwise truncate silently in the `u16` wire
    /// fields), for an unserializable version, for a rate target on a
    /// version-1 handshake, for broadcast fields on a pre-version-3
    /// handshake, or for a missing/oversized broadcast name; propagates
    /// writer failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        check_wire_dims(self.width, self.height)?;
        if self.version < MIN_VERSION || self.version > VERSION {
            return Err(invalid(format!(
                "cannot serialize protocol version {}",
                self.version
            )));
        }
        if self.version < 2 && self.target.is_some() {
            return Err(invalid("target-bpp mode needs protocol version 2".into()));
        }
        if self.version < 3
            && (self.role.is_broadcast() || self.gop != 0 || self.broadcast.is_some())
        {
            return Err(invalid("broadcast fields need protocol version 3".into()));
        }
        if self.version < 4 && self.client.is_some() {
            return Err(invalid("client identity needs protocol version 4".into()));
        }
        if let Some(client) = &self.client {
            if client.is_empty() || client.len() > MAX_NAME_BYTES {
                return Err(invalid(format!(
                    "client identity must be 1..={MAX_NAME_BYTES} bytes, got {}",
                    client.len()
                )));
            }
        }
        match &self.broadcast {
            Some(name)
                if self.role.is_broadcast() && (name.is_empty() || name.len() > MAX_NAME_BYTES) =>
            {
                return Err(invalid(format!(
                    "broadcast name must be 1..={MAX_NAME_BYTES} bytes, got {}",
                    name.len()
                )));
            }
            Some(_) if self.role.is_broadcast() => {}
            Some(_) => {
                return Err(invalid(format!(
                    "{:?} handshake cannot carry a broadcast name",
                    self.role
                )))
            }
            None if self.role.is_broadcast() => {
                return Err(invalid(format!(
                    "{:?} handshake needs a broadcast name",
                    self.role
                )))
            }
            None => {}
        }
        w.write_all(&MAGIC)?;
        w.write_all(&[self.version, self.family.tag(), self.role.tag(), self.rate])?;
        w.write_all(&(self.width as u16).to_le_bytes())?;
        w.write_all(&(self.height as u16).to_le_bytes())?;
        if self.version >= 2 {
            match self.target {
                None => {
                    w.write_all(&[0])?;
                    w.write_all(&0u32.to_le_bytes())?;
                    w.write_all(&0u16.to_le_bytes())?;
                }
                Some(t) => {
                    w.write_all(&[1])?;
                    w.write_all(&t.milli_bpp.to_le_bytes())?;
                    w.write_all(&t.window.to_le_bytes())?;
                }
            }
        }
        if self.version >= 3 {
            w.write_all(&self.gop.to_le_bytes())?;
            let name = self.broadcast.as_deref().unwrap_or("");
            w.write_all(&[name.len() as u8])?;
            w.write_all(name.as_bytes())?;
        }
        if self.version >= 4 {
            let client = self.client.as_deref().unwrap_or("");
            w.write_all(&[client.len() as u8])?;
            w.write_all(client.as_bytes())?;
        }
        Ok(())
    }

    /// Reads and structurally validates a handshake (magic, supported
    /// version, known tags, plausible geometry, broadcast-name rules) —
    /// the version-1 through version-4 layouts. Semantic validation —
    /// rate range, target plausibility, codec-specific geometry
    /// constraints, whether the named broadcast exists — happens
    /// server-side after this.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] on anything that is not a
    /// well-formed handshake of a supported version.
    pub fn read_from(r: &mut impl Read) -> Result<Hello, ServeError> {
        let mut head = [0u8; 8];
        r.read_exact(&mut head)
            .map_err(|e| ServeError::Protocol(format!("truncated handshake: {e}")))?;
        if head[0..4] != MAGIC {
            return Err(ServeError::Protocol(format!(
                "bad magic {:02X?} (expected \"NVCS\")",
                &head[0..4]
            )));
        }
        let version = head[4];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ServeError::Protocol(format!(
                "unsupported protocol version {version} (accepted {MIN_VERSION}..={VERSION})"
            )));
        }
        let family = Family::from_tag(head[5])?;
        let role = Role::from_tag(head[6])?;
        if role.is_broadcast() && version < 3 {
            return Err(ServeError::Protocol(format!(
                "{role:?} role needs protocol version 3, handshake is version {version}"
            )));
        }
        let rate = head[7];
        let width = read_u16(r)? as usize;
        let height = read_u16(r)? as usize;
        if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
            return Err(ServeError::Protocol(format!(
                "implausible stream geometry {width}x{height}"
            )));
        }
        let target = if version >= 2 {
            let mode = read_u8(r)?;
            let milli_bpp = read_u32(r)?;
            let window = read_u16(r)?;
            match mode {
                0 => None,
                1 => Some(TargetBppWire { milli_bpp, window }),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown rate-mode tag 0x{other:02X}"
                    )))
                }
            }
        } else {
            None
        };
        let (gop, broadcast) = if version >= 3 {
            let gop = read_u16(r)?;
            let len = read_u8(r)? as usize;
            if len > MAX_NAME_BYTES {
                return Err(ServeError::Protocol(format!(
                    "broadcast name claims {len} bytes (cap {MAX_NAME_BYTES})"
                )));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)
                .map_err(|e| ServeError::Protocol(format!("truncated broadcast name: {e}")))?;
            let name = String::from_utf8(bytes)
                .map_err(|_| ServeError::Protocol("broadcast name is not UTF-8".into()))?;
            (gop, if name.is_empty() { None } else { Some(name) })
        } else {
            (0, None)
        };
        if role.is_broadcast() && broadcast.is_none() {
            return Err(ServeError::Protocol(format!(
                "{role:?} handshake needs a broadcast name"
            )));
        }
        if !role.is_broadcast() && broadcast.is_some() {
            return Err(ServeError::Protocol(format!(
                "{role:?} handshake cannot carry a broadcast name"
            )));
        }
        let client = if version >= 4 {
            let len = read_u8(r)? as usize;
            if len > MAX_NAME_BYTES {
                return Err(ServeError::Protocol(format!(
                    "client identity claims {len} bytes (cap {MAX_NAME_BYTES})"
                )));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)
                .map_err(|e| ServeError::Protocol(format!("truncated client identity: {e}")))?;
            let name = String::from_utf8(bytes)
                .map_err(|_| ServeError::Protocol("client identity is not UTF-8".into()))?;
            (!name.is_empty()).then_some(name)
        } else {
            None
        };
        Ok(Hello {
            version,
            family,
            role,
            width,
            height,
            rate,
            target,
            gop,
            broadcast,
            client,
        })
    }
}

/// The handshake acknowledgement (the `'A'` message, server → client).
///
/// Through protocol version 3 the ack is two bytes — the tag plus a
/// rate byte echoing the request. Version 4 appends a flags byte and
/// gives the rate byte teeth: under a governor the server may admit a
/// session *degraded* ([`ACK_DEGRADED`] set), in which case the rate
/// byte carries the granted starting rung rather than the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Rate parameter the stream starts at. Equal to the handshake's
    /// `rate` unless the session was admitted degraded (fixed-rate
    /// streams only; closed-loop streams keep their bpp target and the
    /// echo).
    pub rate: u8,
    /// Whether the session was admitted below its requested rate
    /// (always `false` on pre-version-4 connections, which cannot carry
    /// the flag).
    pub degraded: bool,
}

/// Writes one handshake acknowledgement (`'A'` tag + body) in the given
/// protocol version's layout: two bytes through version 3, three bytes
/// (with the flags byte) from version 4.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_ack_msg(w: &mut impl Write, version: u8, ack: &Ack) -> std::io::Result<()> {
    if version >= 4 {
        w.write_all(&[MSG_ACK, ack.rate, u8::from(ack.degraded) * ACK_DEGRADED])
    } else {
        w.write_all(&[MSG_ACK, ack.rate])
    }
}

/// [`write_ack_msg`] into owned bytes (see [`stats_msg_bytes`] for why
/// this is infallible).
pub fn ack_msg_bytes(version: u8, ack: &Ack) -> Vec<u8> {
    let mut bytes = Vec::new();
    let _ = write_ack_msg(&mut bytes, version, ack);
    bytes
}

/// Reads a handshake-acknowledgement body (after its `'A'` tag) in the
/// given protocol version's layout. Unknown flag bits are ignored so a
/// newer server can extend the byte.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation.
pub fn read_ack_body(r: &mut impl Read, version: u8) -> Result<Ack, ServeError> {
    let rate = read_u8(r).map_err(|e| ServeError::Protocol(format!("truncated ack: {e}")))?;
    let degraded = if version >= 4 {
        let flags = read_u8(r).map_err(|e| ServeError::Protocol(format!("truncated ack: {e}")))?;
        flags & ACK_DEGRADED != 0
    } else {
        false
    };
    Ok(Ack { rate, degraded })
}

/// A mid-stream rate retarget (the `'R'` message): replaces the encode
/// session's rate mode in stream order, optionally forcing an intra
/// refresh at the switch point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retarget {
    /// New fixed rate (`RatePoint` index / QP) when `target` is `None`.
    pub rate: u8,
    /// New closed-loop target; takes precedence over `rate`.
    pub target: Option<TargetBppWire>,
    /// Whether the next frame must restart the GOP with an intra frame.
    pub restart_gop: bool,
}

impl Retarget {
    /// Retarget to a fixed rate.
    pub fn fixed(rate: u8) -> Self {
        Retarget {
            rate,
            target: None,
            restart_gop: false,
        }
    }

    /// Retarget to a closed-loop bpp target.
    pub fn target_bpp(bpp: f64, window: u16) -> Self {
        Retarget {
            rate: 0,
            target: Some(TargetBppWire::from_bpp(bpp, window)),
            restart_gop: false,
        }
    }

    /// Also force an intra refresh at the switch.
    pub fn with_restart(mut self) -> Self {
        self.restart_gop = true;
        self
    }
}

/// Writes one retarget message (`'R'` tag + body).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_retarget_msg(w: &mut impl Write, retarget: &Retarget) -> std::io::Result<()> {
    w.write_all(&[MSG_RETARGET])?;
    let (mode, milli_bpp, window) = match retarget.target {
        None => (0u8, 0u32, 0u16),
        Some(t) => (1, t.milli_bpp, t.window),
    };
    w.write_all(&[mode, retarget.rate])?;
    w.write_all(&milli_bpp.to_le_bytes())?;
    w.write_all(&window.to_le_bytes())?;
    w.write_all(&[u8::from(retarget.restart_gop)])
}

/// Reads a retarget body (after its `'R'` tag).
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation or an unknown
/// rate-mode tag.
pub fn read_retarget_body(r: &mut impl Read) -> Result<Retarget, ServeError> {
    let mode = read_u8(r)?;
    let rate = read_u8(r)?;
    let milli_bpp = read_u32(r)?;
    let window = read_u16(r)?;
    let restart = read_u8(r)?;
    let target = match mode {
        0 => None,
        1 => Some(TargetBppWire { milli_bpp, window }),
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown rate-mode tag 0x{other:02X}"
            )))
        }
    };
    Ok(Retarget {
        rate,
        target,
        restart_gop: restart != 0,
    })
}

/// What a subscriber learns about the broadcast it just joined (the
/// `'J'` message, server → subscriber, right after the ack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinInfo {
    /// Codec family the broadcast is coded with.
    pub family: Family,
    /// Stream width in pixels.
    pub width: usize,
    /// Stream height in pixels.
    pub height: usize,
    /// Frame index of the first packet this subscriber will receive —
    /// always an intra boundary; nonzero for late joiners.
    pub start_index: u32,
    /// Rate parameter the broadcast is currently coded at.
    pub rate: u8,
    /// The relay's GOP length in frames (how far apart join points are).
    pub gop: u16,
}

/// Writes one join-info message (`'J'` tag + body).
///
/// # Errors
///
/// Returns `InvalidInput` for geometry outside the wire range;
/// propagates writer failures.
pub fn write_join_msg(w: &mut impl Write, join: &JoinInfo) -> std::io::Result<()> {
    check_wire_dims(join.width, join.height)?;
    w.write_all(&[MSG_JOIN])?;
    w.write_all(&[join.family.tag(), join.rate])?;
    w.write_all(&(join.width as u16).to_le_bytes())?;
    w.write_all(&(join.height as u16).to_le_bytes())?;
    w.write_all(&join.start_index.to_le_bytes())?;
    w.write_all(&join.gop.to_le_bytes())
}

/// Reads a join-info body (after its `'J'` tag).
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation, an unknown family
/// tag or implausible geometry.
pub fn read_join_body(r: &mut impl Read) -> Result<JoinInfo, ServeError> {
    let family = Family::from_tag(read_u8(r)?)?;
    let rate = read_u8(r)?;
    let width = read_u16(r)? as usize;
    let height = read_u16(r)? as usize;
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(ServeError::Protocol(format!(
            "implausible broadcast geometry {width}x{height}"
        )));
    }
    let start_index = read_u32(r)?;
    let gop = read_u16(r)?;
    Ok(JoinInfo {
        family,
        width,
        height,
        start_index,
        rate,
        gop,
    })
}

fn check_wire_dims(width: usize, height: usize) -> std::io::Result<()> {
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("geometry {width}x{height} outside the wire range 1..={MAX_DIM}"),
        ));
    }
    Ok(())
}

pub(crate) fn read_u8(r: &mut impl Read) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u16(r: &mut impl Read) -> std::io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

pub(crate) fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes one raw-frame message (`'F'` tag + body).
///
/// # Errors
///
/// Returns `InvalidInput` for frames outside the wire's geometry range
/// (see [`MAX_DIM`]); propagates writer failures.
pub fn write_frame_msg(w: &mut impl Write, index: u32, frame: &Frame) -> std::io::Result<()> {
    check_wire_dims(frame.width(), frame.height())?;
    let data = frame.tensor().as_slice();
    let mut payload = Vec::with_capacity(data.len() * 4);
    for v in data {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&[MSG_FRAME])?;
    w.write_all(&index.to_le_bytes())?;
    w.write_all(&(frame.width() as u16).to_le_bytes())?;
    w.write_all(&(frame.height() as u16).to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads a raw-frame body (after its `'F'` tag), validating geometry
/// plausibility and the pixel CRC. Returns the sender's frame index and
/// the frame; f32 bit patterns round-trip exactly.
///
/// When `expect` gives the stream's negotiated geometry, the header is
/// checked against it *before* any payload is read — a hostile size
/// field can then never drive an allocation or a blocking bulk read.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation, implausible or
/// mismatched geometry, or CRC mismatch.
pub fn read_frame_body(
    r: &mut impl Read,
    expect: Option<(usize, usize)>,
) -> Result<(u32, Frame), ServeError> {
    let index = read_u32(r)?;
    let width = read_u16(r)? as usize;
    let height = read_u16(r)? as usize;
    let crc = read_u32(r)?;
    if width == 0 || height == 0 || width > MAX_DIM || height > MAX_DIM {
        return Err(ServeError::Protocol(format!(
            "implausible frame geometry {width}x{height}"
        )));
    }
    if let Some((ew, eh)) = expect {
        if (width, height) != (ew, eh) {
            return Err(ServeError::Protocol(format!(
                "frame {width}x{height} does not match negotiated {ew}x{eh}"
            )));
        }
    }
    let mut payload = vec![0u8; 12 * width * height];
    r.read_exact(&mut payload)
        .map_err(|e| ServeError::Protocol(format!("truncated frame payload: {e}")))?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(ServeError::Protocol(format!(
            "frame CRC mismatch: stored {crc:08X}, computed {actual:08X}"
        )));
    }
    let mut tensor = Tensor::zeros(Shape::new(1, 3, height, width));
    for (v, chunk) in tensor
        .as_mut_slice()
        .iter_mut()
        .zip(payload.chunks_exact(4))
    {
        // `chunks_exact(4)` guarantees the width without a fallible cast.
        *v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    let frame = Frame::from_tensor(tensor).map_err(|e| ServeError::Protocol(e.to_string()))?;
    Ok((index, frame))
}

/// Writes one coded-packet message (`'P'` tag + serialized packet).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_packet_msg(w: &mut impl Write, packet: &Packet) -> std::io::Result<()> {
    w.write_all(&[MSG_PACKET])?;
    w.write_all(&packet.to_bytes())
}

/// Writes the stream-statistics trailer (`'S'` tag + body) in the given
/// protocol version's layout: version ≥ 2 appends one frame-type byte
/// (`'I'`/`'P'`) and one rate byte per frame, so clients can see which
/// frames absorbed rate changes.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_stats_msg(
    w: &mut impl Write,
    stats: &StreamStats,
    version: u8,
) -> std::io::Result<()> {
    w.write_all(&[MSG_STATS])?;
    w.write_all(&(stats.frames as u32).to_le_bytes())?;
    w.write_all(&(stats.total_bytes as u64).to_le_bytes())?;
    for &b in &stats.bytes_per_frame {
        w.write_all(&(b as u32).to_le_bytes())?;
    }
    for &b in &stats.bits_per_frame {
        w.write_all(&b.to_le_bytes())?;
    }
    if version >= 2 {
        for kind in &stats.frame_types {
            w.write_all(&[match kind {
                FrameType::Intra => b'I',
                FrameType::Predicted => b'P',
            }])?;
        }
        for &rate in &stats.rate_per_frame {
            w.write_all(&[rate])?;
        }
    }
    Ok(())
}

/// [`write_stats_msg`] into owned bytes. A `Vec` writer cannot fail, so
/// the `io::Result` is vacuous and dropped rather than unwrapped.
pub fn stats_msg_bytes(stats: &StreamStats, version: u8) -> Vec<u8> {
    let mut bytes = Vec::new();
    let _ = write_stats_msg(&mut bytes, stats, version);
    bytes
}

/// Reads a stream-statistics body (after its `'S'` tag) in the given
/// protocol version's layout. Version-1 trailers leave
/// `frame_types`/`rate_per_frame` empty.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation, an implausible frame
/// count, or an unknown frame-type byte.
pub fn read_stats_body(r: &mut impl Read, version: u8) -> Result<StreamStats, ServeError> {
    let frames = read_u32(r)? as usize;
    if frames > MAX_STATS_FRAMES {
        return Err(ServeError::Protocol(format!(
            "stats trailer claims {frames} frames"
        )));
    }
    let total_bytes = read_u64(r)? as usize;
    let mut bytes_per_frame = Vec::with_capacity(frames);
    for _ in 0..frames {
        bytes_per_frame.push(read_u32(r)? as usize);
    }
    let mut bits_per_frame = Vec::with_capacity(frames);
    for _ in 0..frames {
        bits_per_frame.push(read_u64(r)?);
    }
    let mut frame_types = Vec::new();
    let mut rate_per_frame = Vec::new();
    if version >= 2 {
        frame_types.reserve(frames);
        for _ in 0..frames {
            frame_types.push(match read_u8(r)? {
                b'I' => FrameType::Intra,
                b'P' => FrameType::Predicted,
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown frame-type byte 0x{other:02X} in stats trailer"
                    )))
                }
            });
        }
        rate_per_frame.reserve(frames);
        for _ in 0..frames {
            rate_per_frame.push(read_u8(r)?);
        }
    }
    Ok(StreamStats {
        frames,
        bytes_per_frame,
        bits_per_frame,
        frame_types,
        rate_per_frame,
        total_bytes,
    })
}

/// Writes a failure-description message (`'X'` tag + body). The sender
/// closes the connection after this.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_error_msg(w: &mut impl Write, message: &str) -> std::io::Result<()> {
    let bytes = message.as_bytes();
    let len = bytes.len().min(MAX_ERROR_BYTES);
    w.write_all(&[MSG_ERROR])?;
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&bytes[..len])
}

/// [`write_error_msg`] into owned bytes (see [`stats_msg_bytes`] for
/// why this is infallible).
pub fn error_msg_bytes(message: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    let _ = write_error_msg(&mut bytes, message);
    bytes
}

/// Reads a failure-description body (after its `'X'` tag).
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] on truncation or an oversized body.
pub fn read_error_body(r: &mut impl Read) -> Result<String, ServeError> {
    let len = read_u32(r)? as usize;
    if len > MAX_ERROR_BYTES {
        return Err(ServeError::Protocol(format!(
            "error message claims {len} bytes"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)
        .map_err(|e| ServeError::Protocol(format!("truncated error message: {e}")))?;
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

// ---------------------------------------------------------------------------
// Incremental decoders
// ---------------------------------------------------------------------------
//
// The event-driven server reads whatever the socket has — a byte, half a
// message, three messages — and feeds it here. Both decoders are exact
// re-expressions of the blocking readers above: they buffer until one
// whole parse can succeed, then run the *same* parsing code over the
// buffer, so every outcome (values and error strings alike) is
// byte-identical to what a blocking `read_exact` loop would produce.

/// A reader that serves a byte slice, then an optional injected error,
/// then EOF. Re-running a blocking parser over a connection's partial
/// buffer through this reproduces the exact error a blocking reader
/// would have surfaced when the connection died (or timed out) at that
/// point in the stream.
struct TailRead<'a> {
    buf: &'a [u8],
    err: Option<std::io::Error>,
}

impl Read for TailRead<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if !self.buf.is_empty() {
            let n = self.buf.len().min(out.len());
            out[..n].copy_from_slice(&self.buf[..n]);
            self.buf = &self.buf[n..];
            return Ok(n);
        }
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(0),
        }
    }
}

/// The error `read_exact` reports at a clean EOF ("failed to fill whole
/// buffer") — what a blocking reader sees when the peer closes between
/// messages.
fn eof_error() -> std::io::Error {
    let mut byte = [0u8; 1];
    (&[][..])
        .read_exact(&mut byte)
        .expect_err("empty reader cannot fill")
}

fn is_truncation(e: &ServeError) -> bool {
    match e {
        ServeError::Io(e) => e.kind() == std::io::ErrorKind::UnexpectedEof,
        ServeError::Protocol(s) => s.contains("truncated"),
        _ => false,
    }
}

/// Resumable [`Hello`] decoder: accepts handshake bytes in arbitrary
/// chunks and yields the parsed `Hello` once enough have arrived.
///
/// [`feed`](HelloDecoder::feed) speculatively re-parses the buffered
/// prefix after every chunk; a truncation-shaped failure means "need
/// more bytes", anything else is the same terminal error
/// [`Hello::read_from`] would have produced. The handshake is at most a
/// few hundred bytes, so the re-parse is free.
#[derive(Debug, Default)]
pub struct HelloDecoder {
    buf: Vec<u8>,
}

impl HelloDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers `chunk` and returns the handshake if it is now complete.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Hello::read_from`], surfaced as soon as
    /// the buffered prefix is provably invalid.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Option<Hello>, ServeError> {
        self.buf.extend_from_slice(chunk);
        let mut cursor = &self.buf[..];
        match Hello::read_from(&mut cursor) {
            Ok(hello) => {
                let consumed = self.buf.len() - cursor.len();
                self.buf.drain(..consumed);
                Ok(Some(hello))
            }
            Err(e) if is_truncation(&e) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Takes any bytes buffered *beyond* the handshake — the client may
    /// pipeline its first messages behind the `Hello`, and they belong
    /// to the stream decoder.
    pub fn take_rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// The error a blocking [`Hello::read_from`] would have reported had
    /// the connection hit `err` (or clean EOF, when `None`) at the
    /// current point mid-handshake. Used when the peer hangs up or the
    /// handshake deadline fires with the handshake still incomplete.
    pub fn interrupt(&self, err: Option<std::io::Error>) -> ServeError {
        let mut tail = TailRead {
            buf: &self.buf,
            err,
        };
        match Hello::read_from(&mut tail) {
            Err(e) => e,
            // Unreachable when the handshake is genuinely incomplete;
            // cover it anyway rather than panic on a caller misuse.
            Ok(_) => ServeError::Protocol("connection closed during handshake".into()),
        }
    }
}

/// One parsed post-handshake client message.
#[derive(Debug)]
pub enum WireMsg {
    /// A coded packet on a decode stream (`'P'`).
    Packet(Packet),
    /// A raw frame and its sender-side index on an encode or publish
    /// stream (`'F'`).
    Frame(u32, Frame),
    /// A mid-stream rate retarget (`'R'`, protocol ≥ 2).
    Retarget(Retarget),
    /// End of stream (`'E'`).
    End,
}

/// Resumable decoder for the post-handshake client→server message
/// stream: `'P'`/`'F'`/`'R'`/`'E'` tags, filtered by the stream's role
/// and negotiated protocol version exactly like the blocking reader
/// loop was.
///
/// Message sizes are computed from the self-delimiting framing (packet
/// length prefix, frame geometry header), so between messages the
/// decoder buffers nothing and inside a message it buffers only that
/// message. Errors are terminal: the server hangs up on the first bad
/// message, so the decoder never needs to resynchronize.
#[derive(Debug)]
pub struct MsgDecoder {
    role: Role,
    version: u8,
    /// Negotiated geometry, checked against every frame header.
    expect: (usize, usize),
    buf: Vec<u8>,
}

impl MsgDecoder {
    /// A decoder for a stream with the given negotiated handshake.
    pub fn new(role: Role, version: u8, width: usize, height: usize) -> Self {
        MsgDecoder {
            role,
            version,
            expect: (width, height),
            buf: Vec::new(),
        }
    }

    /// Buffers a chunk of stream bytes. Drain with
    /// [`next`](MsgDecoder::next) until it returns `Ok(None)`.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Parses the next complete message out of the buffer, or `None` if
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// The exact strings the blocking reader loop surfaced as abort
    /// reasons: `bad packet: …`, `bad frame: …`, `bad retarget: …`, or
    /// `unexpected message tag 0x…` (which also covers tags that are
    /// valid in general but not for this role or version).
    pub fn next_msg(&mut self) -> Result<Option<WireMsg>, String> {
        /// Tag byte plus the packet container header — enough to know a
        /// packet's full length (or reject its length claim).
        const PACKET_NEED: usize = 1 + PACKET_HEADER_BYTES;
        /// Tag byte plus the frame header (`index`, `w`, `h`, `crc`) —
        /// enough to know a frame's full length (or reject its
        /// geometry).
        const FRAME_NEED: usize = 1 + 12;
        /// Tag byte plus the fixed-size retarget body.
        const RETARGET_NEED: usize = 1 + 9;
        let Some(&tag) = self.buf.first() else {
            return Ok(None);
        };
        match (tag, self.role) {
            (MSG_PACKET, Role::Decode) => {
                if self.buf.len() < PACKET_NEED {
                    return Ok(None);
                }
                // Length-guarded by the `PACKET_NEED` check above.
                let len = u32::from_le_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]])
                    as usize;
                // An over-cap length claim parses (and fails) from the
                // header alone — never wait for a payload that no
                // legitimate sender produces.
                if len <= MAX_PAYLOAD_BYTES && self.buf.len() < PACKET_NEED + len {
                    return Ok(None);
                }
                let mut cursor = &self.buf[1..];
                match Packet::read_from(&mut cursor) {
                    Ok(packet) => {
                        let consumed = self.buf.len() - cursor.len();
                        self.buf.drain(..consumed);
                        Ok(Some(WireMsg::Packet(packet)))
                    }
                    Err(e) => Err(format!("bad packet: {e}")),
                }
            }
            (MSG_FRAME, Role::Encode | Role::Publish) => {
                if self.buf.len() < FRAME_NEED {
                    return Ok(None);
                }
                // Length-guarded by the `FRAME_NEED` check above.
                let width = u16::from_le_bytes([self.buf[5], self.buf[6]]) as usize;
                let height = u16::from_le_bytes([self.buf[7], self.buf[8]]) as usize;
                // A header that `read_frame_body` rejects before its
                // payload read (implausible or mismatched geometry)
                // parses from the header alone, like the blocking
                // reader did.
                let header_ok = width != 0
                    && height != 0
                    && width <= MAX_DIM
                    && height <= MAX_DIM
                    && (width, height) == self.expect;
                if header_ok && self.buf.len() < FRAME_NEED + 12 * width * height {
                    return Ok(None);
                }
                let mut cursor = &self.buf[1..];
                match read_frame_body(&mut cursor, Some(self.expect)) {
                    Ok((index, frame)) => {
                        let consumed = self.buf.len() - cursor.len();
                        self.buf.drain(..consumed);
                        Ok(Some(WireMsg::Frame(index, frame)))
                    }
                    Err(e) => Err(format!("bad frame: {e}")),
                }
            }
            (MSG_RETARGET, _) if self.version >= 2 => {
                if self.buf.len() < RETARGET_NEED {
                    return Ok(None);
                }
                let mut cursor = &self.buf[1..];
                match read_retarget_body(&mut cursor) {
                    Ok(retarget) => {
                        let consumed = self.buf.len() - cursor.len();
                        self.buf.drain(..consumed);
                        Ok(Some(WireMsg::Retarget(retarget)))
                    }
                    Err(e) => Err(format!("bad retarget: {e}")),
                }
            }
            (MSG_END, _) => {
                self.buf.drain(..1);
                Ok(Some(WireMsg::End))
            }
            (tag, _) => Err(format!("unexpected message tag 0x{tag:02X}")),
        }
    }

    /// The abort reason a blocking reader loop would have reported had
    /// the connection hit `err` (or clean EOF, when `None`) at the
    /// current point in the stream: between messages that is
    /// `connection lost mid-stream: …`; inside a message it is the
    /// matching `bad packet/frame/retarget: …` truncation error.
    pub fn interrupt(&self, err: Option<std::io::Error>) -> String {
        let Some(&tag) = self.buf.first() else {
            let e = err.unwrap_or_else(eof_error);
            return format!("connection lost mid-stream: {e}");
        };
        let mut tail = TailRead {
            buf: &self.buf[1..],
            err,
        };
        match (tag, self.role) {
            (MSG_PACKET, Role::Decode) => match Packet::read_from(&mut tail) {
                Err(e) => format!("bad packet: {e}"),
                Ok(_) => format!("connection lost mid-stream: {}", eof_error()),
            },
            (MSG_FRAME, Role::Encode | Role::Publish) => {
                match read_frame_body(&mut tail, Some(self.expect)) {
                    Err(e) => format!("bad frame: {e}"),
                    Ok(_) => format!("connection lost mid-stream: {}", eof_error()),
                }
            }
            (MSG_RETARGET, _) if self.version >= 2 => match read_retarget_body(&mut tail) {
                Err(e) => format!("bad retarget: {e}"),
                Ok(_) => format!("connection lost mid-stream: {}", eof_error()),
            },
            (tag, _) => format!("unexpected message tag 0x{tag:02X}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips() {
        let h = Hello::ctvc_decode(2, 96, 64);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h);
        for h in [
            Hello::ctvc_encode(0, 16, 16),
            Hello::hybrid_decode(40, 640, 368),
            Hello::hybrid_encode(28, 1920, 1088),
        ] {
            let mut buf = Vec::new();
            h.write_to(&mut buf).unwrap();
            assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h);
        }
    }

    #[test]
    fn hello_rejects_garbage() {
        // Bad magic.
        assert!(Hello::read_from(&mut &b"XXXX\x01\x00\x00\x00\x10\x00\x10\x00"[..]).is_err());
        // Bad version.
        assert!(Hello::read_from(&mut &b"NVCS\x09\x00\x00\x00\x10\x00\x10\x00"[..]).is_err());
        // Unknown family / direction tags.
        assert!(Hello::read_from(&mut &b"NVCS\x01\x07\x00\x00\x10\x00\x10\x00"[..]).is_err());
        assert!(Hello::read_from(&mut &b"NVCS\x01\x00\x07\x00\x10\x00\x10\x00"[..]).is_err());
        // Zero geometry.
        assert!(Hello::read_from(&mut &b"NVCS\x01\x00\x00\x00\x00\x00\x10\x00"[..]).is_err());
        // Truncation at every prefix.
        let mut buf = Vec::new();
        Hello::ctvc_decode(1, 32, 32).write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(Hello::read_from(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn frame_message_roundtrips_bit_exactly() {
        let frame = Frame::from_tensor(Tensor::from_fn(Shape::new(1, 3, 6, 4), |_, c, y, x| {
            (c * 100 + y * 10 + x) as f32 * 0.01 - 0.3
        }))
        .unwrap();
        let mut buf = Vec::new();
        write_frame_msg(&mut buf, 7, &frame).unwrap();
        assert_eq!(buf[0], MSG_FRAME);
        let (index, back) = read_frame_body(&mut &buf[1..], None).unwrap();
        assert_eq!(index, 7);
        assert_eq!(back.tensor().as_slice(), frame.tensor().as_slice());
        // A negotiated-geometry mismatch is caught on the header alone.
        assert!(read_frame_body(&mut &buf[1..], Some((4, 6))).is_ok());
        assert!(read_frame_body(&mut &buf[1..13], Some((16, 16))).is_err());
        // Pixel corruption is caught by the CRC.
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(read_frame_body(&mut &buf[1..], None).is_err());
        // Truncation fails cleanly.
        assert!(read_frame_body(&mut &buf[1..buf.len() - 4], None).is_err());
    }

    #[test]
    fn write_side_rejects_untransmittable_geometry() {
        let mut buf = Vec::new();
        let hello = Hello::ctvc_encode(1, MAX_DIM + 16, 32);
        let err = hello.write_to(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing may hit the wire on rejection");
    }

    #[test]
    fn stats_message_roundtrips() {
        let stats = StreamStats {
            frames: 3,
            bytes_per_frame: vec![120, 40, 41],
            bits_per_frame: vec![1064, 424, 432],
            frame_types: vec![FrameType::Intra, FrameType::Predicted, FrameType::Predicted],
            rate_per_frame: vec![1, 1, 2],
            total_bytes: 240,
        };
        let mut buf = Vec::new();
        write_stats_msg(&mut buf, &stats, VERSION).unwrap();
        assert_eq!(buf[0], MSG_STATS);
        assert_eq!(read_stats_body(&mut &buf[1..], VERSION).unwrap(), stats);
        assert!(read_stats_body(&mut &buf[1..buf.len() - 1], VERSION).is_err());

        // The version-1 layout drops the frame-type and rate columns.
        let mut v1 = Vec::new();
        write_stats_msg(&mut v1, &stats, 1).unwrap();
        assert!(v1.len() < buf.len());
        let back = read_stats_body(&mut &v1[1..], 1).unwrap();
        assert_eq!(back.bits_per_frame, stats.bits_per_frame);
        assert!(back.frame_types.is_empty() && back.rate_per_frame.is_empty());
    }

    #[test]
    fn retarget_message_roundtrips() {
        let mut buf = Vec::new();
        for r in [
            Retarget::fixed(2),
            Retarget::fixed(3).with_restart(),
            Retarget::target_bpp(0.25, 8),
            Retarget::target_bpp(1.5, 0).with_restart(),
        ] {
            buf.clear();
            write_retarget_msg(&mut buf, &r).unwrap();
            assert_eq!(buf[0], MSG_RETARGET);
            assert_eq!(read_retarget_body(&mut &buf[1..]).unwrap(), r);
        }
        // Truncation and unknown mode tags fail cleanly.
        assert!(read_retarget_body(&mut &buf[1..buf.len() - 1]).is_err());
        buf[1] = 0x07;
        assert!(read_retarget_body(&mut &buf[1..]).is_err());
    }

    #[test]
    fn version1_hello_still_parses() {
        // The exact 12-byte layout version-1 clients send.
        let mut v1 = Hello::ctvc_encode(1, 32, 32);
        v1.version = 1;
        let mut buf = Vec::new();
        v1.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 12, "version-1 layout is 12 bytes");
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), v1);
        // A version-1 handshake cannot carry a rate target.
        let bad = v1.with_target_bpp(0.3, 4);
        assert!(bad.write_to(&mut Vec::new()).is_err());
    }

    #[test]
    fn version2_hello_still_parses() {
        // The exact 19-byte layout version-2 clients send.
        let mut v2 = Hello::ctvc_encode(1, 32, 32).with_target_bpp(0.5, 6);
        v2.version = 2;
        let mut buf = Vec::new();
        v2.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 19, "version-2 layout is 19 bytes");
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), v2);
        // A version-2 handshake cannot carry broadcast fields…
        let mut bad = v2.clone();
        bad.broadcast = Some("game".into());
        assert!(bad.write_to(&mut Vec::new()).is_err());
        let mut bad = v2.clone();
        bad.gop = 8;
        assert!(bad.write_to(&mut Vec::new()).is_err());
        // …and a broadcast role tag is rejected in a version-2 header.
        let mut wire = buf.clone();
        wire[6] = 2; // Publish
        assert!(Hello::read_from(&mut &wire[..]).is_err());
    }

    #[test]
    fn version3_hello_still_parses() {
        // The exact layout version-3 clients send: version-2's 19 bytes
        // plus [gop: u16][name_len: u8][name] and no client field.
        let mut v3 = Hello::ctvc_publish(1, 32, 32, "game").with_gop(8);
        v3.version = 3;
        let mut buf = Vec::new();
        v3.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 19 + 2 + 1 + 4, "version-3 layout");
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), v3);
        // A version-3 handshake cannot carry a client identity.
        let bad = v3.with_client("alice");
        assert!(bad.write_to(&mut Vec::new()).is_err());
    }

    #[test]
    fn version4_client_identity_roundtrips() {
        let h = Hello::hybrid_encode(30, 64, 48).with_client("alice");
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h);
        // Anonymous version-4 handshakes write a zero-length identity
        // and read back as `None`.
        let anon = Hello::hybrid_encode(30, 64, 48);
        let mut buf = Vec::new();
        anon.write_to(&mut buf).unwrap();
        assert_eq!(*buf.last().unwrap(), 0);
        assert_eq!(Hello::read_from(&mut &buf[..]).unwrap().client, None);
        // Empty and oversized identities are rejected on the write side.
        let mut empty = anon.clone();
        empty.client = Some(String::new());
        assert!(empty.write_to(&mut Vec::new()).is_err());
        let long = "c".repeat(MAX_NAME_BYTES + 1);
        assert!(Hello::hybrid_encode(30, 64, 48)
            .with_client(&long)
            .write_to(&mut Vec::new())
            .is_err());
        // Truncation inside the identity fails cleanly.
        let mut buf = Vec::new();
        Hello::hybrid_encode(30, 64, 48)
            .with_client("alice")
            .write_to(&mut buf)
            .unwrap();
        for cut in 0..buf.len() {
            assert!(Hello::read_from(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn ack_layout_is_version_gated() {
        // Pre-version-4 acks stay two bytes and can never say degraded.
        let ack = Ack {
            rate: 2,
            degraded: true,
        };
        let mut v3 = Vec::new();
        write_ack_msg(&mut v3, 3, &ack).unwrap();
        assert_eq!(v3, [MSG_ACK, 2]);
        let back = read_ack_body(&mut &v3[1..], 3).unwrap();
        assert_eq!((back.rate, back.degraded), (2, false));
        // Version-4 acks carry the flags byte.
        let mut v4 = Vec::new();
        write_ack_msg(&mut v4, VERSION, &ack).unwrap();
        assert_eq!(v4, [MSG_ACK, 2, ACK_DEGRADED]);
        assert_eq!(read_ack_body(&mut &v4[1..], VERSION).unwrap(), ack);
        let mut plain = Vec::new();
        write_ack_msg(
            &mut plain,
            VERSION,
            &Ack {
                rate: 30,
                degraded: false,
            },
        )
        .unwrap();
        assert_eq!(plain, [MSG_ACK, 30, 0]);
        // Unknown flag bits are ignored, truncation is not.
        let future = [7u8, 0xFE];
        assert!(!read_ack_body(&mut &future[..], VERSION).unwrap().degraded);
        assert!(read_ack_body(&mut &v4[1..2], VERSION).is_err());
    }

    #[test]
    fn broadcast_hellos_roundtrip() {
        for h in [
            Hello::ctvc_publish(2, 96, 64, "game").with_gop(12),
            Hello::hybrid_publish(28, 640, 368, "screen-share"),
            Hello::subscribe("game", 96, 64),
            Hello::subscribe("screen-share", 640, 368).with_family(Family::Hybrid),
            Hello::ctvc_publish(1, 32, 32, "g").with_target_bpp(0.4, 4),
        ] {
            let mut buf = Vec::new();
            h.write_to(&mut buf).unwrap();
            assert_eq!(Hello::read_from(&mut &buf[..]).unwrap(), h, "{h:?}");
        }
        // Truncation at every prefix still fails cleanly.
        let mut buf = Vec::new();
        Hello::ctvc_publish(1, 32, 32, "game")
            .write_to(&mut buf)
            .unwrap();
        for cut in 0..buf.len() {
            assert!(Hello::read_from(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn broadcast_name_rules_are_enforced() {
        // Broadcast roles need a name.
        let mut nameless = Hello::ctvc_publish(1, 32, 32, "x");
        nameless.broadcast = None;
        assert!(nameless.write_to(&mut Vec::new()).is_err());
        // Empty and oversized names are rejected.
        assert!(Hello::ctvc_publish(1, 32, 32, "")
            .write_to(&mut Vec::new())
            .is_err());
        let long = "n".repeat(MAX_NAME_BYTES + 1);
        assert!(Hello::subscribe(&long, 32, 32)
            .write_to(&mut Vec::new())
            .is_err());
        // Point-to-point roles cannot carry one.
        let mut stray = Hello::ctvc_encode(1, 32, 32);
        stray.broadcast = Some("game".into());
        assert!(stray.write_to(&mut Vec::new()).is_err());
        // The same rules hold on the read side (hand-built wire bytes).
        let mut buf = Vec::new();
        Hello::ctvc_publish(1, 32, 32, "game")
            .write_to(&mut buf)
            .unwrap();
        let name_len_at = buf.len() - 5; // [len:u8]["game"]
        let mut wire = buf.clone();
        wire[name_len_at] = 0;
        wire.truncate(name_len_at + 1);
        assert!(
            Hello::read_from(&mut &wire[..]).is_err(),
            "publish without a name"
        );
        let mut wire = buf.clone();
        wire[6] = 0; // Encode role, name still present
        assert!(
            Hello::read_from(&mut &wire[..]).is_err(),
            "encode with a stray name"
        );
        let mut wire = buf;
        wire[name_len_at + 1] = 0xFF; // not UTF-8
        assert!(Hello::read_from(&mut &wire[..]).is_err(), "non-UTF-8 name");
    }

    #[test]
    fn join_message_roundtrips() {
        let join = JoinInfo {
            family: Family::Ctvc,
            width: 96,
            height: 64,
            start_index: 24,
            rate: 2,
            gop: 8,
        };
        let mut buf = Vec::new();
        write_join_msg(&mut buf, &join).unwrap();
        assert_eq!(buf[0], MSG_JOIN);
        assert_eq!(read_join_body(&mut &buf[1..]).unwrap(), join);
        // Truncation and a bad family tag fail cleanly.
        assert!(read_join_body(&mut &buf[1..buf.len() - 1]).is_err());
        buf[1] = 0x07;
        assert!(read_join_body(&mut &buf[1..]).is_err());
    }

    #[test]
    fn target_bpp_hello_roundtrips() {
        let h = Hello::hybrid_encode(30, 64, 48).with_target_bpp(0.42, 6);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = Hello::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back, h);
        let t = back.target.unwrap();
        assert_eq!(t.milli_bpp, 420);
        assert!((t.bpp() - 0.42).abs() < 1e-9);
        assert_eq!(t.window, 6);
    }

    #[test]
    fn error_message_roundtrips_and_caps() {
        let mut buf = Vec::new();
        write_error_msg(&mut buf, "decode: packet CRC mismatch").unwrap();
        assert_eq!(buf[0], MSG_ERROR);
        assert_eq!(
            read_error_body(&mut &buf[1..]).unwrap(),
            "decode: packet CRC mismatch"
        );
        // A hostile length field is rejected without allocating.
        let mut hostile = vec![0xFF, 0xFF, 0xFF, 0x7F];
        hostile.extend_from_slice(b"x");
        assert!(read_error_body(&mut &hostile[..]).is_err());
    }
}
