//! Broadcast relay over a real loopback socket: one publisher encodes,
//! many subscribers receive byte-identical packets; late joiners start
//! at the most recent intra and decode bit-exactly; a dying publisher
//! fails its subscribers instead of hanging them. All clients run with
//! read timeouts so a hang fails the test instead of wedging CI.
//! (Lag eviction over real sockets is covered by the `subscribe` module
//! unit tests — deterministic ring overflow — and end-to-end by the
//! `fanout` bench, where a release-built encoder can outrun a stalled
//! TCP reader in reasonable time.)

use nvc_baseline::Profile;
use nvc_model::{CtvcCodec, CtvcConfig};
use nvc_serve::{
    Hello, ServeConfig, ServeError, Server, ServerHandle, StreamClient, SubscribeClient,
    SubscribeEvent,
};
use nvc_video::codec::DecoderSession;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use std::time::Duration;

const W: usize = 48;
const H: usize = 32;
const TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServeConfig {
    ServeConfig {
        ctvc: CtvcConfig::ctvc_fp(8),
        hybrid: Profile::hevc_like(),
        workers: 2,
        max_sessions: 8,
        ..ServeConfig::default()
    }
}

fn spawn_server(cfg: ServeConfig) -> ServerHandle {
    Server::spawn("127.0.0.1:0", cfg).expect("bind loopback")
}

fn seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(W, H, frames)).generate()
}

fn publish(server: &ServerHandle, hello: Hello) -> StreamClient {
    let client = StreamClient::connect(server.addr(), hello).expect("connect publisher");
    client.set_read_timeout(Some(TIMEOUT)).unwrap();
    client
}

fn subscribe(server: &ServerHandle, hello: Hello) -> Result<SubscribeClient, ServeError> {
    let client = SubscribeClient::connect(server.addr(), hello)?;
    client.set_read_timeout(Some(TIMEOUT)).unwrap();
    Ok(client)
}

#[test]
fn all_subscribers_receive_byte_identical_packets() {
    let server = spawn_server(test_config());
    let source = seq(5);

    let mut publisher = publish(&server, Hello::ctvc_publish(1, W, H, "game").with_gop(4));
    let subs: Vec<_> = (0..2)
        .map(|_| subscribe(&server, Hello::subscribe("game", W, H)).unwrap())
        .collect();
    for sub in &subs {
        let join = sub.join();
        assert_eq!(join.start_index, 0, "from-start subscriber");
        assert_eq!(join.gop, 4);
        assert_eq!((join.width, join.height), (W, H));
    }

    for frame in source.frames() {
        publisher.send_frame(frame).unwrap();
    }
    let published = publisher.finish().unwrap();
    assert_eq!(published.packets.len(), 5);

    for sub in subs {
        let summary = sub.collect().unwrap();
        assert_eq!(summary.packets.len(), 5);
        for (received, sent) in summary.packets.iter().zip(&published.packets) {
            assert_eq!(
                received.to_bytes(),
                sent.to_bytes(),
                "subscriber bytes diverged from the publisher's"
            );
        }
        // The trailer describes exactly what this subscriber received.
        assert_eq!(summary.stats.frames, 5);
        assert_eq!(
            summary.stats.total_bytes,
            published.packets.iter().map(|p| p.encoded_len()).sum()
        );
    }

    let report = server.shutdown();
    assert_eq!(report.sessions, 1);
    assert_eq!(report.subscribers, 2);
    assert_eq!(report.evicted, 0);
    assert_eq!(report.errors, 0);
}

#[test]
fn late_joiner_starts_at_last_intra_and_decodes_bit_exact() {
    let server = spawn_server(test_config());
    let source = seq(6);

    let mut publisher = publish(&server, Hello::ctvc_publish(1, W, H, "live").with_gop(4));
    let from_start = subscribe(&server, Hello::subscribe("live", W, H)).unwrap();

    // Frames 0..=4; the relay GOP of 4 forces an intra refresh at frame
    // 4. drain() sequences: every frame sent is encoded *and published*
    // before the late subscriber attaches.
    for frame in &source.frames()[..5] {
        publisher.send_frame(frame).unwrap();
    }
    publisher.drain().unwrap();
    let late = subscribe(&server, Hello::subscribe("live", W, H)).unwrap();
    assert_eq!(
        late.join().start_index,
        4,
        "late joiner must start at the most recent intra, not the stream head"
    );

    publisher.send_frame(&source.frames()[5]).unwrap();
    let published = publisher.finish().unwrap();
    assert_eq!(published.packets.len(), 6);

    let full = from_start.collect().unwrap();
    assert_eq!(full.packets.len(), 6);
    let tail = late.collect().unwrap();
    assert_eq!(tail.packets.len(), 2, "late joiner sees frames 4 and 5");
    for (received, sent) in tail.packets.iter().zip(&published.packets[4..]) {
        assert_eq!(received.to_bytes(), sent.to_bytes());
    }

    // The late joiner's stream is decodable from its very first packet
    // (the intra carries a full stream header in joinable mode) and
    // reconstructs bit-exactly what a from-start decode produces.
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let mut from_start_dec = codec.start_decode();
    let full_frames: Vec<_> = full
        .packets
        .iter()
        .map(|p| from_start_dec.push_packet(&p.to_bytes()).unwrap())
        .collect();
    let mut late_dec = codec.start_decode();
    for (i, packet) in tail.packets.iter().enumerate() {
        let frame = late_dec.push_packet(&packet.to_bytes()).unwrap();
        assert_eq!(
            frame.tensor().as_slice(),
            full_frames[4 + i].tensor().as_slice(),
            "late-joined decode diverged at frame {}",
            4 + i
        );
    }

    let report = server.shutdown();
    assert_eq!(report.subscribers, 2);
    assert_eq!(report.errors, 0);
}

#[test]
fn broadcast_handshakes_reject_mismatches_cleanly() {
    let server = spawn_server(test_config());

    // Subscribing to a name nobody publishes.
    let err = subscribe(&server, Hello::subscribe("ghost", W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("no broadcast named")),
        "{err}"
    );

    let _publisher = publish(&server, Hello::ctvc_publish(1, W, H, "game"));

    // A second publisher under the same name.
    let err = StreamClient::connect(server.addr(), Hello::ctvc_publish(1, W, H, "game"))
        .expect_err("duplicate name must be rejected");
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("already in use")),
        "{err}"
    );

    // Geometry that does not match the broadcast.
    let err = subscribe(&server, Hello::subscribe("game", 2 * W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("requested")),
        "{err}"
    );

    // Family that does not match the broadcast.
    let err = subscribe(
        &server,
        Hello::subscribe("game", W, H).with_family(nvc_serve::Family::Hybrid),
    )
    .unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("streams")),
        "{err}"
    );

    // Client-side role guards: each client type refuses the other's
    // handshake before touching the network.
    let err = StreamClient::connect(server.addr(), Hello::subscribe("game", W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Protocol(m) if m.contains("SubscribeClient")),
        "{err}"
    );
    let err = SubscribeClient::connect(server.addr(), Hello::ctvc_encode(1, W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Protocol(m) if m.contains("subscribe handshake")),
        "{err}"
    );

    let report = server.shutdown();
    assert_eq!(report.rejected, 4);
    assert_eq!(report.subscribers, 0);
}

#[test]
fn publisher_death_fails_subscribers_instead_of_hanging_them() {
    let server = spawn_server(test_config());
    let source = seq(2);

    let mut publisher = publish(&server, Hello::ctvc_publish(1, W, H, "game"));
    let mut sub = subscribe(&server, Hello::subscribe("game", W, H)).unwrap();
    for frame in source.frames() {
        publisher.send_frame(frame).unwrap();
    }
    publisher.drain().unwrap();
    drop(publisher); // connection dies without an end-of-stream marker

    // Queued packets drain first, then the failure is reported.
    let mut received = 0;
    let err = loop {
        match sub.next_event() {
            Ok(SubscribeEvent::Packet(_)) => received += 1,
            Ok(SubscribeEvent::End(_)) => panic!("orphaned subscriber got a clean trailer"),
            Err(e) => break e,
        }
    };
    assert_eq!(received, 2);
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("connection lost")),
        "{err}"
    );

    // The name is free again for the next publisher.
    let _next = publish(&server, Hello::ctvc_publish(1, W, H, "game"));
    server.shutdown();
}
