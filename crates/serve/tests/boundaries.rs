//! Byte-boundary fuzz for the resumable protocol decoders.
//!
//! The event-driven server reads whatever the socket has — one byte,
//! half a message, three messages — so the incremental decoders must
//! produce *identical* outcomes (parsed values and error strings alike)
//! no matter where the chunk boundaries fall. Every transcript here is
//! replayed three ways: whole, one byte at a time, and split at random
//! points by the in-tree SplitMix64; the event streams must match
//! exactly. Truncated transcripts additionally pin the `interrupt`
//! diagnostics — the error reported when the connection dies
//! mid-message — to be boundary-invariant too.

use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_serve::proto::{
    write_frame_msg, write_packet_msg, write_retarget_msg, Hello, HelloDecoder, MsgDecoder,
    Retarget, WireMsg,
};
use nvc_tensor::init::SplitMix64;
use nvc_video::codec::encode_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};

const W: usize = 16;
const H: usize = 16;

/// How many SplitMix64-driven random chunkings each transcript gets.
const RANDOM_REPLAYS: u64 = 8;
/// How many random cut points each truncatable transcript gets.
const RANDOM_CUTS: u64 = 12;

// ---------------------------------------------------------------------
// Transcript construction
// ---------------------------------------------------------------------

/// One client→server byte stream plus a label for failure messages.
struct Transcript {
    name: &'static str,
    bytes: Vec<u8>,
}

fn frames(n: usize) -> Vec<nvc_video::Frame> {
    Synthesizer::new(SceneConfig::uvg_like(W, H, n))
        .generate()
        .frames()
        .to_vec()
}

fn hello_bytes(hello: &Hello) -> Vec<u8> {
    let mut bytes = Vec::new();
    hello.write_to(&mut bytes).expect("vec write");
    bytes
}

/// Every shape the protocol test suite exercises, as raw transcripts:
/// clean streams of each role and version, pipelined hellos, and the
/// hostile cases (bad magic, corrupted CRC, wrong-direction and unknown
/// tags, oversized length claims).
fn transcripts() -> Vec<Transcript> {
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).expect("ctvc config");
    let source = Synthesizer::new(SceneConfig::uvg_like(W, H, 3)).generate();
    let coded = encode_sequence(&codec, &source, RatePoint::new(1)).expect("encode");
    let mut out = Vec::new();

    // v1 encode: hello, two frames, end.
    let mut bytes = hello_bytes(&Hello::ctvc_encode(1, W, H));
    for (i, frame) in frames(2).iter().enumerate() {
        write_frame_msg(&mut bytes, i as u32, frame).unwrap();
    }
    bytes.push(b'E');
    out.push(Transcript {
        name: "v1 encode stream",
        bytes,
    });

    // v1 decode: hello, three packets, end.
    let mut bytes = hello_bytes(&Hello::ctvc_decode(1, W, H));
    for packet in &coded.packets {
        write_packet_msg(&mut bytes, packet).unwrap();
    }
    bytes.push(b'E');
    out.push(Transcript {
        name: "v1 decode stream",
        bytes,
    });

    // v2 encode with a mid-stream retarget between the frames.
    let mut bytes = hello_bytes(&Hello::ctvc_encode(1, W, H).with_gop(4));
    let fs = frames(2);
    write_frame_msg(&mut bytes, 0, &fs[0]).unwrap();
    write_retarget_msg(&mut bytes, &Retarget::fixed(2).with_restart()).unwrap();
    write_retarget_msg(&mut bytes, &Retarget::target_bpp(0.3, 4)).unwrap();
    write_frame_msg(&mut bytes, 1, &fs[1]).unwrap();
    bytes.push(b'E');
    out.push(Transcript {
        name: "v2 encode with retargets",
        bytes,
    });

    // v4 governed hello (client identity + target bpp), one frame.
    let mut bytes = hello_bytes(
        &Hello::ctvc_encode(1, W, H)
            .with_target_bpp(0.25, 8)
            .with_client("alice"),
    );
    write_frame_msg(&mut bytes, 0, &frames(1)[0]).unwrap();
    bytes.push(b'E');
    out.push(Transcript {
        name: "v4 governed encode",
        bytes,
    });

    // v3 publish: a broadcast-role encode stream.
    let mut bytes = hello_bytes(&Hello::ctvc_publish(1, W, H, "fuzzcast"));
    write_frame_msg(&mut bytes, 0, &frames(1)[0]).unwrap();
    bytes.push(b'E');
    out.push(Transcript {
        name: "v3 publish stream",
        bytes,
    });

    // Bad magic: the handshake must fail identically at any boundary.
    let mut bytes = hello_bytes(&Hello::ctvc_decode(1, W, H));
    bytes[0] ^= 0xFF;
    bytes.extend_from_slice(&[0u8; 64]);
    out.push(Transcript {
        name: "corrupted handshake magic",
        bytes,
    });

    // Corrupted packet CRC mid-stream.
    let mut bytes = hello_bytes(&Hello::ctvc_decode(1, W, H));
    write_packet_msg(&mut bytes, &coded.packets[0]).unwrap();
    let corrupt_at = bytes.len() - 1;
    bytes[corrupt_at] ^= 0x01;
    write_packet_msg(&mut bytes, &coded.packets[1]).unwrap();
    out.push(Transcript {
        name: "corrupted packet crc",
        bytes,
    });

    // Wrong-direction tag: a frame on a decode stream.
    let mut bytes = hello_bytes(&Hello::ctvc_decode(1, W, H));
    write_frame_msg(&mut bytes, 0, &frames(1)[0]).unwrap();
    out.push(Transcript {
        name: "frame on decode stream",
        bytes,
    });

    // Unknown tag.
    let mut bytes = hello_bytes(&Hello::ctvc_encode(1, W, H));
    bytes.push(b'Z');
    bytes.extend_from_slice(&[0u8; 32]);
    out.push(Transcript {
        name: "unknown message tag",
        bytes,
    });

    // Oversized packet length claim: must fail from the header alone.
    let mut bytes = hello_bytes(&Hello::ctvc_decode(1, W, H));
    bytes.push(b'P');
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    out.push(Transcript {
        name: "oversized length claim",
        bytes,
    });

    // Geometry mismatch: frame header says 8x8 on a 16x16 stream.
    let small = Synthesizer::new(SceneConfig::uvg_like(8, 8, 1)).generate();
    let mut bytes = hello_bytes(&Hello::ctvc_encode(1, W, H));
    write_frame_msg(&mut bytes, 0, &small.frames()[0]).unwrap();
    out.push(Transcript {
        name: "mismatched frame geometry",
        bytes,
    });

    out
}

// ---------------------------------------------------------------------
// Replay harness
// ---------------------------------------------------------------------

fn digest(bytes: &[u8]) -> u64 {
    // FNV-1a: cheap, in-tree, collision-safe enough for equality checks
    // between two replays of the same transcript.
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// Replays `bytes` through the decoders exactly as the poller would —
/// hello first, then the message stream, stopping at the first terminal
/// event — and returns the full event log, ending with the `interrupt`
/// diagnostic for a connection that dies right after the last byte.
fn replay(bytes: &[u8], chunks: &[usize]) -> Vec<String> {
    assert_eq!(chunks.iter().sum::<usize>(), bytes.len());
    let mut events = Vec::new();
    let mut hello_dec = HelloDecoder::new();
    let mut msg_dec: Option<MsgDecoder> = None;
    let mut offset = 0;
    'stream: for &size in chunks {
        let chunk = &bytes[offset..offset + size];
        offset += size;
        let chunk = match &mut msg_dec {
            Some(_) => chunk.to_vec(),
            None => match hello_dec.feed(chunk) {
                Ok(Some(hello)) => {
                    events.push(format!("hello: {hello:?}"));
                    msg_dec = Some(MsgDecoder::new(
                        hello.role,
                        hello.version,
                        hello.width,
                        hello.height,
                    ));
                    hello_dec.take_rest()
                }
                Ok(None) => continue,
                Err(e) => {
                    events.push(format!("hello error: {e}"));
                    return events;
                }
            },
        };
        let dec = msg_dec.as_mut().expect("decoder exists past the hello");
        dec.feed(&chunk);
        loop {
            match dec.next_msg() {
                Ok(Some(WireMsg::Packet(p))) => {
                    let mut re = Vec::new();
                    write_packet_msg(&mut re, &p).unwrap();
                    events.push(format!("packet: {:016x}", digest(&re)));
                }
                Ok(Some(WireMsg::Frame(index, f))) => {
                    let mut re = Vec::new();
                    write_frame_msg(&mut re, index, &f).unwrap();
                    events.push(format!("frame: {:016x}", digest(&re)));
                }
                Ok(Some(WireMsg::Retarget(r))) => events.push(format!("retarget: {r:?}")),
                Ok(Some(WireMsg::End)) => {
                    events.push("end".into());
                    break 'stream;
                }
                Ok(None) => break,
                Err(e) => {
                    events.push(format!("abort: {e}"));
                    return events;
                }
            }
        }
    }
    // The connection dies here; the interrupt diagnostic must not
    // depend on how the bytes arrived either.
    match msg_dec {
        Some(dec) => events.push(format!("lost: {}", dec.interrupt(None))),
        None => events.push(format!("lost in handshake: {}", hello_dec.interrupt(None))),
    }
    events
}

fn one_chunk(len: usize) -> Vec<usize> {
    if len == 0 {
        vec![]
    } else {
        vec![len]
    }
}

fn random_chunks(len: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = len;
    while left > 0 {
        // Mix tiny splits with big gulps so both re-parse paths run.
        let cap = if rng.next_u64().is_multiple_of(2) {
            7
        } else {
            4096
        };
        let take = (1 + rng.next_below(cap)).min(left);
        chunks.push(take);
        left -= take;
    }
    chunks
}

fn assert_boundary_invariant(name: &str, bytes: &[u8], seed: u64) {
    let reference = replay(bytes, &one_chunk(bytes.len()));
    assert!(
        !reference.is_empty(),
        "{name}: a transcript must produce at least one event"
    );
    let byte_at_a_time = replay(bytes, &vec![1; bytes.len()]);
    assert_eq!(
        reference, byte_at_a_time,
        "{name}: one-byte replay diverged from whole-transcript replay"
    );
    let mut rng = SplitMix64::new(seed);
    for round in 0..RANDOM_REPLAYS {
        let chunks = random_chunks(bytes.len(), &mut rng);
        let random = replay(bytes, &chunks);
        assert_eq!(
            reference, random,
            "{name}: random-split replay {round} diverged (chunks {chunks:?})"
        );
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn every_transcript_is_chunk_boundary_invariant() {
    for (i, t) in transcripts().iter().enumerate() {
        assert_boundary_invariant(t.name, &t.bytes, 0x5EED_0000 + i as u64);
    }
}

#[test]
fn truncated_transcripts_report_identical_interrupts() {
    for (i, t) in transcripts().iter().enumerate() {
        let mut rng = SplitMix64::new(0xC0FFEE ^ i as u64);
        // Every boundary near the front (hello region plus the first
        // message header) and random cuts across the rest.
        let mut cuts: Vec<usize> = (0..t.bytes.len().min(96)).collect();
        for _ in 0..RANDOM_CUTS {
            cuts.push(rng.next_below(t.bytes.len()));
        }
        for cut in cuts {
            let truncated = &t.bytes[..cut];
            let reference = replay(truncated, &one_chunk(cut));
            let byte_at_a_time = replay(truncated, &vec![1; cut]);
            assert_eq!(
                reference, byte_at_a_time,
                "{} cut at {cut}: truncated replay diverged",
                t.name
            );
            let random = replay(truncated, &random_chunks(cut, &mut rng));
            assert_eq!(
                reference, random,
                "{} cut at {cut}: random-split truncated replay diverged",
                t.name
            );
        }
    }
}
