//! Protocol robustness and bit-exactness over a real loopback socket:
//! clean handshakes, hostile handshakes, mid-stream truncation, CRC
//! corruption, concurrent sessions. Every failure mode must yield a
//! clean `Err` and a closed connection — never a panic or a hang (all
//! clients run with read timeouts so a hang fails the test instead of
//! wedging CI).

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_serve::proto::{self, Hello};
use nvc_serve::{
    GovernorConfig, Retarget, ServeConfig, ServeError, Server, ServerHandle, StreamClient,
};
use nvc_video::codec::{encode_sequence, encode_sequence_with};
use nvc_video::rate::RateMode;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::{FrameType, Sequence};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const W: usize = 48;
const H: usize = 32;
const TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServeConfig {
    ServeConfig {
        ctvc: CtvcConfig::ctvc_fp(8),
        hybrid: Profile::hevc_like(),
        workers: 2,
        queue_depth: 2,
        max_sessions: 8,
        ..ServeConfig::default()
    }
}

fn spawn_server() -> ServerHandle {
    Server::spawn("127.0.0.1:0", test_config()).expect("bind loopback")
}

fn seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(W, H, frames)).generate()
}

fn connect(server: &ServerHandle, hello: Hello) -> Result<StreamClient, ServeError> {
    let client = StreamClient::connect(server.addr(), hello)?;
    client.set_read_timeout(Some(TIMEOUT)).unwrap();
    Ok(client)
}

#[test]
fn ctvc_decode_stream_is_bit_exact_with_in_process_sessions() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let source = seq(4);
    let coded = encode_sequence(&codec, &source, RatePoint::new(1)).unwrap();

    let mut client = connect(&server, Hello::ctvc_decode(1, W, H)).unwrap();
    for packet in &coded.packets {
        client.send_packet(packet).unwrap();
    }
    let summary = client.finish().unwrap();

    assert_eq!(summary.frames.len(), 4);
    for (remote, local) in summary.frames.iter().zip(coded.decoded.frames()) {
        assert_eq!(
            remote.tensor().as_slice(),
            local.tensor().as_slice(),
            "served decode must be byte-identical to the in-process loop"
        );
    }
    // The trailer reflects what actually crossed the wire.
    assert_eq!(summary.stats.frames, 4);
    assert_eq!(
        summary.stats.total_bytes,
        coded.packets.iter().map(|p| p.encoded_len()).sum::<usize>()
    );
    assert_eq!(
        summary.stats.bits_per_frame.iter().sum::<u64>(),
        8 * summary.stats.total_bytes as u64
    );
    assert_eq!(summary.latencies.len(), 4);

    let report = server.shutdown();
    assert_eq!(report.sessions, 1);
    assert_eq!(report.frames, 4);
    assert_eq!(report.errors, 0);
    // Poller accounting: every pass counts, and the one connection was
    // registered while it streamed.
    assert!(report.poll_wakeups > 0, "poller must have run passes");
    assert_eq!(report.max_registered, 1);
}

#[test]
fn ctvc_encode_stream_matches_in_process_packets_and_stats() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let source = seq(3);
    let local = encode_sequence(&codec, &source, RatePoint::new(2)).unwrap();

    let mut client = connect(&server, Hello::ctvc_encode(2, W, H)).unwrap();
    for frame in source.frames() {
        client.send_frame(frame).unwrap();
    }
    let summary = client.finish().unwrap();

    assert_eq!(summary.packets.len(), 3);
    for (remote, in_process) in summary.packets.iter().zip(&local.packets) {
        assert_eq!(
            remote.to_bytes(),
            in_process.to_bytes(),
            "served encode must produce byte-identical packets"
        );
    }
    assert_eq!(summary.stats, local.stats);
    server.shutdown();
}

#[test]
fn hybrid_family_roundtrips_both_directions() {
    let server = spawn_server();
    let source = seq(3);
    let qp = 34;

    // Remote encode...
    let mut enc = connect(&server, Hello::hybrid_encode(qp, W, H)).unwrap();
    for frame in source.frames() {
        enc.send_frame(frame).unwrap();
    }
    let encoded = enc.finish().unwrap();
    assert_eq!(encoded.packets.len(), 3);

    // ...then remote decode of those packets must match local decode.
    let mut dec = connect(&server, Hello::hybrid_decode(qp, W, H)).unwrap();
    for packet in &encoded.packets {
        dec.send_packet(packet).unwrap();
    }
    let decoded = dec.finish().unwrap();

    let local = HybridCodec::new(Profile::hevc_like());
    let mut bitstream = Vec::new();
    for packet in &encoded.packets {
        bitstream.extend_from_slice(&packet.to_bytes());
    }
    let reference = local.decode(&bitstream).unwrap();
    for (remote, local_frame) in decoded.frames.iter().zip(reference.frames()) {
        assert_eq!(remote.tensor().as_slice(), local_frame.tensor().as_slice());
    }
    server.shutdown();
}

#[test]
fn bogus_hellos_are_rejected_cleanly() {
    let server = spawn_server();

    // Invalid RatePoint (outside the calibrated sweep).
    let err = connect(&server, Hello::ctvc_decode(9, W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("rate index 9")),
        "{err}"
    );
    // CTVC geometry must be divisible by 16.
    let err = connect(&server, Hello::ctvc_encode(1, 50, 34)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("divisible by 16")),
        "{err}"
    );

    // Raw garbage instead of a handshake.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut tag = [0u8; 1];
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR, "server must answer with 'X'");
    let msg = proto::read_error_body(&mut raw).unwrap();
    assert!(msg.contains("handshake"), "{msg}");
    // ...and then close the connection.
    assert_eq!(raw.read(&mut tag).unwrap(), 0, "connection must be closed");

    // Unknown codec family tag.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    raw.write_all(b"NVCS\x01\x05\x01\x01\x30\x00\x20\x00")
        .unwrap();
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR);

    let report = server.shutdown();
    assert_eq!(report.sessions, 0);
    assert_eq!(report.rejected, 4);
}

#[test]
fn corrupted_packet_crc_yields_clean_error_and_close() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let coded = encode_sequence(&codec, &seq(2), RatePoint::new(1)).unwrap();

    // Speak the protocol raw so the CRC corruption actually reaches the
    // wire (the typed client would recompute it).
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut buf = Vec::new();
    Hello::ctvc_decode(1, W, H).write_to(&mut buf).unwrap();
    let mut packet = coded.packets[0].to_bytes();
    *packet.last_mut().unwrap() ^= 0xFF;
    buf.push(proto::MSG_PACKET);
    buf.extend_from_slice(&packet);
    raw.write_all(&buf).unwrap();

    let mut head = [0u8; 3];
    raw.read_exact(&mut head).unwrap(); // ack + echoed rate + flags
    assert_eq!(head[0], proto::MSG_ACK);
    let mut tag = [0u8; 1];
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR, "CRC corruption must be reported");
    let msg = proto::read_error_body(&mut raw).unwrap();
    assert!(msg.contains("CRC"), "{msg}");
    assert_eq!(raw.read(&mut tag).unwrap(), 0, "connection must be closed");

    let report = server.shutdown();
    assert_eq!(report.errors, 1);
}

#[test]
fn midstream_truncation_kills_the_session_not_the_server() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let coded = encode_sequence(&codec, &seq(2), RatePoint::new(1)).unwrap();

    // A client that dies halfway through a packet.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let mut buf = Vec::new();
        Hello::ctvc_decode(1, W, H).write_to(&mut buf).unwrap();
        let packet = coded.packets[0].to_bytes();
        buf.push(proto::MSG_PACKET);
        buf.extend_from_slice(&packet[..packet.len() / 2]);
        raw.write_all(&buf).unwrap();
        // Drop the stream mid-packet.
    }

    // The server keeps serving: a well-behaved session still round-trips
    // bit-exactly afterwards.
    let mut client = connect(&server, Hello::ctvc_decode(1, W, H)).unwrap();
    for packet in &coded.packets {
        client.send_packet(packet).unwrap();
    }
    let summary = client.finish().unwrap();
    for (remote, local) in summary.frames.iter().zip(coded.decoded.frames()) {
        assert_eq!(remote.tensor().as_slice(), local.tensor().as_slice());
    }
    server.shutdown();
}

#[test]
fn wrong_message_kind_for_direction_is_rejected() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let coded = encode_sequence(&codec, &seq(2), RatePoint::new(1)).unwrap();

    // A coded packet on an encode-direction stream.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut buf = Vec::new();
    Hello::ctvc_encode(1, W, H).write_to(&mut buf).unwrap();
    buf.push(proto::MSG_PACKET);
    buf.extend_from_slice(&coded.packets[0].to_bytes());
    raw.write_all(&buf).unwrap();
    let mut head = [0u8; 3];
    raw.read_exact(&mut head).unwrap();
    assert_eq!(head[0], proto::MSG_ACK);
    let mut tag = [0u8; 1];
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR);
    server.shutdown();
}

#[test]
fn mismatched_frame_geometry_is_rejected() {
    let server = spawn_server();
    let mut client = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    // Negotiated 48x32, then push 32x32 frames: 16-divisible, so only the
    // geometry check can catch it.
    let wrong = Synthesizer::new(SceneConfig::uvg_like(32, 32, 1)).generate();
    client.send_frame(&wrong.frames()[0]).unwrap();
    let err = client.finish().unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("does not match negotiated")),
        "{err}"
    );
    server.shutdown();
}

#[test]
fn midstream_retarget_forces_intra_and_replays_bit_exact() {
    let server = spawn_server();
    let source = seq(4);

    let run = || {
        let mut client = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
        for (i, frame) in source.frames().iter().enumerate() {
            if i == 2 {
                // Switch to r2 and force an intra refresh at the switch.
                client.retarget(Retarget::fixed(2).with_restart()).unwrap();
            }
            client.send_frame(frame).unwrap();
        }
        client.finish().unwrap()
    };
    let summary = run();

    assert_eq!(summary.packets.len(), 4);
    assert_eq!(
        summary.stats.frame_types,
        vec![
            FrameType::Intra,
            FrameType::Predicted,
            FrameType::Intra,
            FrameType::Predicted
        ],
        "the retarget must land on an intra anchor"
    );
    assert_eq!(summary.stats.rate_per_frame, vec![1, 1, 2, 2]);

    // The retargeted stream decodes cleanly in-process.
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let mut bitstream = Vec::new();
    for packet in &summary.packets {
        bitstream.extend_from_slice(&packet.to_bytes());
    }
    let decoded = codec.decode(&bitstream).unwrap();
    assert_eq!(decoded.frames().len(), 4);

    // Replaying the identical frames + retarget produces a byte-exact
    // stream.
    let replay = run();
    for (a, b) in summary.packets.iter().zip(&replay.packets) {
        assert_eq!(a.to_bytes(), b.to_bytes(), "retargeted replay diverged");
    }

    let report = server.shutdown();
    assert_eq!(report.errors, 0);
}

#[test]
fn target_bpp_session_over_the_wire_matches_in_process() {
    let server = spawn_server();
    let source = seq(5);
    let (bpp, window) = (0.8, 4);

    let mut client = connect(
        &server,
        Hello::ctvc_encode(1, W, H).with_target_bpp(bpp, window),
    )
    .unwrap();
    for frame in source.frames() {
        client.send_frame(frame).unwrap();
    }
    let summary = client.finish().unwrap();
    assert_eq!(summary.stats.rate_per_frame.len(), 5);
    assert!(summary
        .stats
        .rate_per_frame
        .iter()
        .all(|&r| r <= RatePoint::MAX_INDEX));

    // The wire session runs the same deterministic controller as the
    // in-process API — packets must be byte-identical.
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let local = encode_sequence_with(
        &codec,
        &source,
        RateMode::TargetBpp {
            bpp,
            window: usize::from(window),
        },
    )
    .unwrap();
    for (remote, in_process) in summary.packets.iter().zip(&local.packets) {
        assert_eq!(remote.to_bytes(), in_process.to_bytes());
    }
    assert_eq!(summary.stats, local.stats);
    server.shutdown();
}

#[test]
fn version1_client_still_speaks_fixed_rate() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let coded = encode_sequence(&codec, &seq(2), RatePoint::new(1)).unwrap();

    // A raw version-1 session: 12-byte hello, packets, end — and the
    // version-1 (short) stats trailer back.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut hello = Hello::ctvc_decode(1, W, H);
    hello.version = 1;
    let mut buf = Vec::new();
    hello.write_to(&mut buf).unwrap();
    assert_eq!(buf.len(), 12);
    for packet in &coded.packets {
        buf.push(proto::MSG_PACKET);
        buf.extend_from_slice(&packet.to_bytes());
    }
    buf.push(proto::MSG_END);
    raw.write_all(&buf).unwrap();

    let mut head = [0u8; 2];
    raw.read_exact(&mut head).unwrap();
    assert_eq!(head[0], proto::MSG_ACK, "v1 handshake must be accepted");
    let mut reader = std::io::BufReader::new(raw);
    for local in coded.decoded.frames() {
        let mut tag = [0u8; 1];
        reader.read_exact(&mut tag).unwrap();
        assert_eq!(tag[0], proto::MSG_FRAME);
        let (_, frame) = proto::read_frame_body(&mut reader, Some((W, H))).unwrap();
        assert_eq!(frame.tensor().as_slice(), local.tensor().as_slice());
    }
    let mut tag = [0u8; 1];
    reader.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_STATS);
    let stats = proto::read_stats_body(&mut reader, 1).unwrap();
    assert_eq!(stats.frames, 2);
    assert!(
        stats.frame_types.is_empty() && stats.rate_per_frame.is_empty(),
        "a v1 client must get the trailer layout it expects"
    );
    assert_eq!(reader.read(&mut tag).unwrap(), 0, "clean close after stats");

    let report = server.shutdown();
    assert_eq!(report.sessions, 1);
    assert_eq!(report.errors, 0);
}

#[test]
fn retarget_is_rejected_on_decode_streams_and_bogus_rates() {
    let server = spawn_server();

    // Client-side guard: wrong direction.
    let mut dec = connect(&server, Hello::ctvc_decode(1, W, H)).unwrap();
    let err = dec.retarget(Retarget::fixed(2)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Protocol(m) if m.contains("decode-direction")),
        "{err}"
    );

    // Server-side guard: a fixed retarget outside the CTVC sweep kills
    // the session with a clean remote error, not a panic.
    let mut enc = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    enc.retarget(Retarget::fixed(9)).unwrap();
    let source = seq(1);
    let _ = enc.send_frame(&source.frames()[0]);
    let err = enc.finish().unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("rate index 9")),
        "{err}"
    );

    // A zero-bpp retarget is rejected with the same bar as the
    // handshake's target validation.
    let mut enc = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    enc.retarget(Retarget::target_bpp(0.0, 4)).unwrap();
    let _ = enc.send_frame(&source.frames()[0]);
    let err = enc.finish().unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("must be positive")),
        "{err}"
    );

    // A retarget sent on a decode stream dies with the specific
    // diagnostic, not a generic unexpected-tag abort.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut buf = Vec::new();
    Hello::ctvc_decode(1, W, H).write_to(&mut buf).unwrap();
    proto::write_retarget_msg(&mut buf, &Retarget::fixed(2)).unwrap();
    raw.write_all(&buf).unwrap();
    let mut head = [0u8; 3];
    raw.read_exact(&mut head).unwrap();
    assert_eq!(head[0], proto::MSG_ACK);
    let mut tag = [0u8; 1];
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR);
    let msg = proto::read_error_body(&mut raw).unwrap();
    assert!(msg.contains("retarget on a decode stream"), "{msg}");
    drop(raw);

    // Legacy leniency: a hybrid encode handshake with QP > 51 (the RD
    // anchor sweeps use up to 58) still opens a session and round-trips
    // the requested quantizer.
    let mut enc = connect(&server, Hello::hybrid_encode(60, W, H)).unwrap();
    let source = seq(2);
    for frame in source.frames() {
        enc.send_frame(frame).unwrap();
    }
    let summary = enc.finish().unwrap();
    assert!(summary.stats.rate_per_frame.iter().all(|&q| q == 60));
    server.shutdown();
}

#[test]
fn handshake_deadline_rejects_a_silent_client() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            handshake_timeout: Duration::from_millis(200),
            ..test_config()
        },
    )
    .expect("bind loopback");

    // Connect and say nothing: the server must not hold the slot
    // hostage forever — it answers with a clean 'X' and closes.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut tag = [0u8; 1];
    raw.read_exact(&mut tag).unwrap();
    assert_eq!(tag[0], proto::MSG_ERROR, "silence must be answered by 'X'");
    let msg = proto::read_error_body(&mut raw).unwrap();
    assert!(msg.contains("deadline"), "{msg}");
    assert_eq!(raw.read(&mut tag).unwrap(), 0, "connection must be closed");

    // A prompt client on the same server is unaffected.
    let source = seq(2);
    let mut client = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    for frame in source.frames() {
        client.send_frame(frame).unwrap();
    }
    client.finish().unwrap();

    let report = server.shutdown();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.sessions, 1);
    // The deadline came off the poller's timer wheel, and the 200ms of
    // client silence means the poller parked through passes that found
    // no work.
    assert!(
        report.timer_fires >= 1,
        "timer_fires = {}",
        report.timer_fires
    );
    assert!(
        report.spurious_polls > 0,
        "a silent 200ms window must show up as spurious polls"
    );
}

#[test]
fn session_capacity_overflow_is_rejected_cleanly() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: 1,
            ..test_config()
        },
    )
    .expect("bind loopback");

    let first = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    let err = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("capacity")),
        "{err}"
    );
    // The surviving session still works; the slot frees on finish.
    let source = seq(1);
    let mut first = first;
    first.send_frame(&source.frames()[0]).unwrap();
    first.finish().unwrap();
    let mut third = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    third.send_frame(&source.frames()[0]).unwrap();
    third.finish().unwrap();

    let report = server.shutdown();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.sessions, 2);
}

#[test]
fn governor_rejects_a_session_the_budget_cannot_carry() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            governor: Some(GovernorConfig::new(1000.0)),
            ..test_config()
        },
    )
    .expect("bind loopback");

    // 48x32 at 6.0 bpp projects 9216 bits/frame against a 1000-bit
    // budget with the default 8x overload ceiling: reject, don't admit
    // a stream the reservoir can never serve.
    let err = connect(&server, Hello::ctvc_encode(1, W, H).with_target_bpp(6.0, 4)).unwrap_err();
    assert!(
        matches!(&err, ServeError::Remote(m) if m.contains("budget")),
        "{err}"
    );

    // A modest session on the same server is admitted at full rate.
    let client = connect(&server, Hello::ctvc_encode(1, W, H)).unwrap();
    assert!(!client.admitted_degraded());
    assert_eq!(client.granted_rate(), 1);
    drop(client);

    let report = server.shutdown();
    assert_eq!(report.rejected, 1);
}

/// The whole degradation curve over real sockets, twice: a second
/// session pushes the pool past its budget, so it is admitted
/// *degraded* (the ack says so and names the granted rung) and the
/// first session is walked down the ladder in-band; the second
/// session's exit restores the first to full rate. Lockstep `drain`
/// barriers pin which frames see which session set, so the governed
/// stream is a pure function of the scenario — replaying it must
/// reproduce every packet byte-for-byte (invariant 3).
#[test]
fn governed_streams_degrade_restore_and_replay_byte_identically() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            // assumed_bpp 0.5 x 48x32 = 768 bits/frame per fixed-rate
            // session: one fits the 1000-bit budget, two do not
            // (ratio 1000/1536 ~ 0.65, four QP rungs down).
            governor: Some(GovernorConfig::new(1000.0)),
            ..test_config()
        },
    )
    .expect("bind loopback");
    let source = seq(6);

    let run = || {
        let mut alice = connect(&server, Hello::hybrid_encode(32, W, H).with_client("alice"))
            .expect("admit alice");
        assert!(!alice.admitted_degraded(), "solo session must be full-rate");
        assert_eq!(alice.granted_rate(), 32);
        alice.send_frame(&source.frames()[0]).unwrap();
        alice.send_frame(&source.frames()[1]).unwrap();
        alice.drain().unwrap(); // frames 0-1 coded while alice is alone

        let mut bob = connect(&server, Hello::hybrid_encode(32, W, H).with_client("bob"))
            .expect("admit bob degraded");
        assert!(bob.admitted_degraded(), "second session must be degraded");
        assert_eq!(
            bob.granted_rate(),
            36,
            "the ack must name the granted rung: QP 32 walked 4 steps down"
        );
        alice.send_frame(&source.frames()[2]).unwrap();
        alice.send_frame(&source.frames()[3]).unwrap();
        alice.drain().unwrap(); // frames 2-3 coded with bob registered
        bob.send_frame(&source.frames()[0]).unwrap();
        bob.send_frame(&source.frames()[1]).unwrap();
        let bob_summary = bob.finish().unwrap(); // bob's share returns to the pool

        alice.send_frame(&source.frames()[4]).unwrap();
        alice.send_frame(&source.frames()[5]).unwrap();
        let alice_summary = alice.finish().unwrap();
        (alice_summary, bob_summary)
    };

    let (alice_a, bob_a) = run();
    assert_eq!(
        alice_a.stats.rate_per_frame,
        vec![32, 32, 36, 36, 32, 32],
        "degrade when bob joins, restore when he leaves"
    );
    assert_eq!(bob_a.stats.rate_per_frame, vec![36, 36]);

    // Identical scenario, identical bytes.
    let (alice_b, bob_b) = run();
    for (x, y) in alice_a.packets.iter().zip(&alice_b.packets) {
        assert_eq!(x.to_bytes(), y.to_bytes(), "governed replay diverged");
    }
    for (x, y) in bob_a.packets.iter().zip(&bob_b.packets) {
        assert_eq!(x.to_bytes(), y.to_bytes(), "governed replay diverged");
    }

    let report = server.shutdown();
    assert_eq!(report.errors, 0);
    assert_eq!(report.sessions, 4);
    // Per run: alice degrades + restores, bob runs degraded start to
    // end; four downward rungs each.
    assert_eq!(report.degraded, 4);
    assert_eq!(report.restored, 2);
    assert_eq!(report.throttle_steps, 16);
}

#[test]
fn concurrent_sessions_are_all_bit_exact() {
    let server = spawn_server();
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let source = seq(3);
    // Different rate per stream, so sessions cannot share results.
    let coded: Vec<_> = (0..3)
        .map(|r| encode_sequence(&codec, &source, RatePoint::new(r)).unwrap())
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = coded
            .iter()
            .enumerate()
            .map(|(r, coded)| {
                let server = &server;
                scope.spawn(move || {
                    let mut client = connect(server, Hello::ctvc_decode(r as u8, W, H)).unwrap();
                    // Window 1 vs 2 exercises different pipelining depths.
                    client.set_window(1 + r % 2);
                    for packet in &coded.packets {
                        client.send_packet(packet).unwrap();
                    }
                    let summary = client.finish().unwrap();
                    for (remote, local) in summary.frames.iter().zip(coded.decoded.frames()) {
                        assert_eq!(
                            remote.tensor().as_slice(),
                            local.tensor().as_slice(),
                            "stream at rate {r} diverged"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    let report = server.shutdown();
    assert_eq!(report.sessions, 3);
    assert_eq!(report.frames, 9);
    assert_eq!(report.errors, 0);
    // All three sessions multiplexed on the one poller.
    assert!(
        (1..=3).contains(&report.max_registered),
        "max_registered = {}",
        report.max_registered
    );
}
