//! The live metrics endpoint over a real loopback socket: a running
//! server must answer a scrape with poller, governor, per-kernel and
//! per-frame histograms, and the live view must agree with the
//! shutdown [`ServeReport`] — both read the same registry.

use nvc_baseline::Profile;
use nvc_model::CtvcConfig;
use nvc_serve::proto::Hello;
use nvc_serve::{scrape_metrics, GovernorConfig, ServeConfig, Server, StreamClient};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use std::time::Duration;

const W: usize = 48;
const H: usize = 32;

fn seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(W, H, frames)).generate()
}

fn metrics_config() -> ServeConfig {
    ServeConfig {
        // The sparse profile routes convolutions through the
        // Winograd/FTA fast path, so per-kernel-family histograms show
        // up in the scrape.
        ctvc: CtvcConfig::ctvc_sparse(8),
        hybrid: Profile::hevc_like(),
        workers: 2,
        queue_depth: 2,
        max_sessions: 8,
        metrics_addr: Some("127.0.0.1:0".into()),
        governor: Some(GovernorConfig::new(1e9)),
        ..ServeConfig::default()
    }
}

/// Reads the value of a plain `name value` sample line from a scrape.
fn sample(body: &str, name: &str) -> Option<u64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn live_scrape_reports_every_instrumented_subsystem() {
    let server = Server::spawn("127.0.0.1:0", metrics_config()).expect("bind loopback");
    let metrics = server.metrics_addr().expect("metrics endpoint configured");

    // Push real traffic through so every layer has something to report.
    let source = seq(4);
    let mut client =
        StreamClient::connect(server.addr(), Hello::ctvc_encode(1, W, H)).expect("admit session");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for frame in source.frames() {
        client.send_frame(frame).unwrap();
    }
    let summary = client.finish().unwrap();
    assert_eq!(summary.packets.len(), 4);

    // Scrape while the server is still running.
    let body = scrape_metrics(metrics).expect("scrape live endpoint");

    // Serving counters, on the server's own registry.
    assert_eq!(sample(&body, "nvc_serve_sessions_total"), Some(1));
    assert_eq!(sample(&body, "nvc_serve_frames_total"), Some(4));
    assert_eq!(sample(&body, "nvc_serve_errors_total"), Some(0));
    assert!(sample(&body, "nvc_poll_wakeups_total").unwrap() > 0);

    // Governor decisions: the session above was admitted.
    assert_eq!(sample(&body, "nvc_governor_admit_total"), Some(1));
    assert_eq!(sample(&body, "nvc_governor_reject_total"), Some(0));

    // Poller histograms render with count/sum/bucket series.
    assert!(sample(&body, "nvc_poll_park_us_count").unwrap() > 0);
    assert!(body.contains("nvc_poll_park_us_bucket{le="));
    assert!(body.contains("nvc_poll_wake_latency_us_count"));
    assert!(body.contains("nvc_poll_timer_fire_lag_us_count"));

    // Process-global registry rides along: per-frame codec latency,
    // per-kernel-family timings and the exec-pool lease metrics all
    // saw the four encoded frames.
    assert!(sample(&body, "nvc_ctvc_encode_frame_us_count").unwrap() >= 4);
    assert!(sample(&body, "nvc_ctvc_frame_bits_count").unwrap() >= 4);
    assert!(
        body.contains("nvc_kernel_winograd_sparse_us"),
        "sparse CTVC encode must surface Winograd kernel timings:\n{body}"
    );
    assert!(
        body.contains("nvc_kernel_fta_sparse_us"),
        "sparse CTVC encode must surface FTA kernel timings:\n{body}"
    );
    assert!(body.contains("nvc_pool_lease_wait_us"));

    server.shutdown();
}

#[test]
fn live_scrape_and_shutdown_report_read_the_same_registry() {
    let server = Server::spawn("127.0.0.1:0", metrics_config()).expect("bind loopback");
    let metrics = server.metrics_addr().expect("metrics endpoint configured");

    let source = seq(3);
    for _ in 0..2 {
        let mut client = StreamClient::connect(server.addr(), Hello::ctvc_encode(1, W, H))
            .expect("admit session");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        for frame in source.frames() {
            client.send_frame(frame).unwrap();
        }
        client.finish().unwrap();
    }

    // Every count the live endpoint reports after the sessions finished
    // must be exactly what the shutdown report hands back: one storage,
    // two views, no drift possible.
    let body = scrape_metrics(metrics).expect("scrape live endpoint");
    let live_sessions = sample(&body, "nvc_serve_sessions_total").unwrap();
    let live_frames = sample(&body, "nvc_serve_frames_total").unwrap();
    let live_errors = sample(&body, "nvc_serve_errors_total").unwrap();
    let live_admits = sample(&body, "nvc_governor_admit_total").unwrap();

    let report = server.shutdown();
    assert_eq!(report.sessions as u64, live_sessions);
    assert_eq!(report.frames, live_frames);
    assert_eq!(report.errors, live_errors);
    assert_eq!(live_admits, 2);
    assert_eq!(report.sessions, 2);
    assert_eq!(report.frames, 6);
}

#[test]
fn servers_without_a_metrics_addr_expose_nothing() {
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            metrics_addr: None,
            ..metrics_config()
        },
    )
    .expect("bind loopback");
    assert!(server.metrics_addr().is_none());
    server.shutdown();
}
