use crate::{Shape, TensorError};

/// Dense, row-major NCHW tensor of `f32` values.
///
/// This is the single data type flowing through every layer of CTVC-Net.
/// It intentionally stays small: a shape plus a flat `Vec<f32>`. Elementwise
/// arithmetic validates shapes and returns [`TensorError`] on mismatch;
/// single-element accessors panic on out-of-range indices (documented on
/// each method) because they sit in inner loops.
///
/// # Example
///
/// ```
/// use nvc_tensor::{Shape, Tensor};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let a = Tensor::filled(Shape::new(1, 2, 2, 2), 1.5);
/// let b = Tensor::filled(Shape::new(1, 2, 2, 2), 0.5);
/// let c = a.add(&b)?;
/// assert_eq!(c.at(0, 1, 1, 1), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a tensor where every element equals `value`.
    pub fn filled(shape: Shape, value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// `shape.volume()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f(n, c, h, w)` at every coordinate.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for n in 0..shape.n() {
            for c in 0..shape.c() {
                for h in 0..shape.h() {
                    for w in 0..shape.w() {
                        data.push(f(n, c, h, w));
                    }
                }
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Read-only view of the underlying buffer in NCHW row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer in NCHW row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coordinate is out of range.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Mutable element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coordinate is out of range.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let idx = self.shape.index(n, c, h, w);
        &mut self.data[idx]
    }

    /// Element at `(n, c, h, w)` treating coordinates outside the spatial
    /// extent as zero padding. `h` and `w` are signed for this reason.
    #[inline]
    pub fn at_padded(&self, n: usize, c: usize, h: isize, w: isize) -> f32 {
        if h < 0 || w < 0 || h as usize >= self.shape.h() || w as usize >= self.shape.w() {
            0.0
        } else {
            self.at(n, c, h as usize, w as usize)
        }
    }

    /// Bilinearly samples channel `c` at fractional coordinates `(y, x)`,
    /// with zero padding outside the frame. Used by deformable convolution.
    pub fn sample_bilinear(&self, n: usize, c: usize, y: f32, x: f32) -> f32 {
        let y0 = y.floor();
        let x0 = x.floor();
        let dy = y - y0;
        let dx = x - x0;
        let (y0, x0) = (y0 as isize, x0 as isize);
        let v00 = self.at_padded(n, c, y0, x0);
        let v01 = self.at_padded(n, c, y0, x0 + 1);
        let v10 = self.at_padded(n, c, y0 + 1, x0);
        let v11 = self.at_padded(n, c, y0 + 1, x0 + 1);
        v00 * (1.0 - dy) * (1.0 - dx)
            + v01 * (1.0 - dy) * dx
            + v10 * dy * (1.0 - dx)
            + v11 * dy * dx
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims(),
                right: other.shape.dims(),
            });
        }
        Ok(Tensor {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &v| m.max(v.abs()))
    }

    /// Mean squared error between two tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f64, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims(),
                right: other.shape.dims(),
            });
        }
        let mut acc = 0.0_f64;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            let d = (a - b) as f64;
            acc += d * d;
        }
        Ok(acc / self.data.len().max(1) as f64)
    }

    /// Concatenates tensors along the channel axis. All inputs must share
    /// batch and spatial dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if `tensors` is empty or the
    /// non-channel dimensions disagree.
    pub fn concat_channels(tensors: &[&Tensor]) -> Result<Tensor, TensorError> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::incompatible("concat of zero tensors"))?;
        let (n, _, h, w) = first.shape.dims();
        let mut c_total = 0;
        for t in tensors {
            let (tn, tc, th, tw) = t.shape.dims();
            if (tn, th, tw) != (n, h, w) {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims(),
                    right: t.shape.dims(),
                });
            }
            c_total += tc;
        }
        let out_shape = Shape::new(n, c_total, h, w);
        let mut out = Tensor::zeros(out_shape);
        let plane = h * w;
        for nn in 0..n {
            let mut c_off = 0;
            for t in tensors {
                let tc = t.shape.c();
                for c in 0..tc {
                    let src_base = t.shape.index(nn, c, 0, 0);
                    let dst_base = out_shape.index(nn, c_off + c, 0, 0);
                    out.data[dst_base..dst_base + plane]
                        .copy_from_slice(&t.data[src_base..src_base + plane]);
                }
                c_off += tc;
            }
        }
        Ok(out)
    }

    /// Extracts channels `[start, start + count)` into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the range exceeds the
    /// channel count.
    pub fn slice_channels(&self, start: usize, count: usize) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = self.shape.dims();
        if start + count > c {
            return Err(TensorError::incompatible(format!(
                "channel slice {start}..{} out of range for {c} channels",
                start + count
            )));
        }
        let out_shape = Shape::new(n, count, h, w);
        let mut out = Tensor::zeros(out_shape);
        let plane = h * w;
        for nn in 0..n {
            for cc in 0..count {
                let src = self.shape.index(nn, start + cc, 0, 0);
                let dst = out_shape.index(nn, cc, 0, 0);
                out.data[dst..dst + plane].copy_from_slice(&self.data[src..src + plane]);
            }
        }
        Ok(out)
    }

    /// Crops the spatial extent to `[0, h) × [0, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the requested size exceeds
    /// the current size.
    pub fn crop(&self, h: usize, w: usize) -> Result<Tensor, TensorError> {
        let (n, c, sh, sw) = self.shape.dims();
        if h > sh || w > sw {
            return Err(TensorError::incompatible(format!(
                "crop to {h}x{w} larger than {sh}x{sw}"
            )));
        }
        let out_shape = Shape::new(n, c, h, w);
        let mut out = Tensor::zeros(out_shape);
        for nn in 0..n {
            for cc in 0..c {
                for hh in 0..h {
                    let src = self.shape.index(nn, cc, hh, 0);
                    let dst = out_shape.index(nn, cc, hh, 0);
                    out.data[dst..dst + w].copy_from_slice(&self.data[src..src + w]);
                }
            }
        }
        Ok(out)
    }

    /// Crops the spatial region `[y0, y0 + h) × [x0, x0 + w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the region exceeds the
    /// tensor extent.
    pub fn crop_region(
        &self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
    ) -> Result<Tensor, TensorError> {
        let (n, c, sh, sw) = self.shape.dims();
        if y0 + h > sh || x0 + w > sw {
            return Err(TensorError::incompatible(format!(
                "crop [{y0}+{h}, {x0}+{w}] exceeds {sh}x{sw}"
            )));
        }
        let out_shape = Shape::new(n, c, h, w);
        let mut out = Tensor::zeros(out_shape);
        for nn in 0..n {
            for cc in 0..c {
                for hh in 0..h {
                    let src = self.shape.index(nn, cc, y0 + hh, x0);
                    let dst = out_shape.index(nn, cc, hh, 0);
                    out.data[dst..dst + w].copy_from_slice(&self.data[src..src + w]);
                }
            }
        }
        Ok(out)
    }

    /// Pads the spatial extent by `p` on every side, replicating edge
    /// samples (clamp-to-edge).
    pub fn replicate_pad(&self, p: usize) -> Tensor {
        let (n, c, h, w) = self.shape.dims();
        Tensor::from_fn(Shape::new(n, c, h + 2 * p, w + 2 * p), |nn, cc, y, x| {
            let sy = (y as isize - p as isize).clamp(0, h as isize - 1) as usize;
            let sx = (x as isize - p as isize).clamp(0, w as isize - 1) as usize;
            self.at(nn, cc, sy, sx)
        })
    }

    /// Zero-pads the spatial extent on the bottom/right to `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the requested size is
    /// smaller than the current size.
    pub fn pad_to(&self, h: usize, w: usize) -> Result<Tensor, TensorError> {
        let (n, c, sh, sw) = self.shape.dims();
        if h < sh || w < sw {
            return Err(TensorError::incompatible(format!(
                "pad to {h}x{w} smaller than {sh}x{sw}"
            )));
        }
        let out_shape = Shape::new(n, c, h, w);
        let mut out = Tensor::zeros(out_shape);
        for nn in 0..n {
            for cc in 0..c {
                for hh in 0..sh {
                    let src = self.shape.index(nn, cc, hh, 0);
                    let dst = out_shape.index(nn, cc, hh, 0);
                    out.data[dst..dst + sw].copy_from_slice(&self.data[src..src + sw]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Shape) -> Tensor {
        let mut i = 0.0;
        Tensor::from_fn(shape, |_, _, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
        assert!(Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![0.0; 4]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = seq(Shape::new(1, 1, 2, 2));
        let b = a.scale(2.0);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[3.0, 6.0, 9.0, 12.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.hadamard(&a).unwrap().as_slice(), &[1.0, 4.0, 9.0, 16.0]);
        let c = seq(Shape::new(1, 1, 1, 4));
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn padded_access_is_zero_outside() {
        let a = seq(Shape::new(1, 1, 2, 2));
        assert_eq!(a.at_padded(0, 0, -1, 0), 0.0);
        assert_eq!(a.at_padded(0, 0, 0, 2), 0.0);
        assert_eq!(a.at_padded(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let a = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((a.sample_bilinear(0, 0, 0.5, 0.5) - 1.5).abs() < 1e-6);
        assert_eq!(a.sample_bilinear(0, 0, 0.0, 1.0), 1.0);
        // Exactly on the last pixel.
        assert_eq!(a.sample_bilinear(0, 0, 1.0, 1.0), 3.0);
    }

    #[test]
    fn concat_and_slice_channels_roundtrip() {
        let a = seq(Shape::new(1, 2, 2, 2));
        let b = seq(Shape::new(1, 3, 2, 2));
        let cat = Tensor::concat_channels(&[&a, &b]).unwrap();
        assert_eq!(cat.shape().dims(), (1, 5, 2, 2));
        assert_eq!(cat.slice_channels(0, 2).unwrap(), a);
        assert_eq!(cat.slice_channels(2, 3).unwrap(), b);
        assert!(cat.slice_channels(4, 2).is_err());
    }

    #[test]
    fn crop_and_pad_roundtrip() {
        let a = seq(Shape::new(1, 2, 3, 5));
        let padded = a.pad_to(4, 8).unwrap();
        assert_eq!(padded.shape().dims(), (1, 2, 4, 8));
        assert_eq!(padded.at(0, 1, 2, 4), a.at(0, 1, 2, 4));
        assert_eq!(padded.at(0, 1, 3, 7), 0.0);
        assert_eq!(padded.crop(3, 5).unwrap(), a);
        assert!(a.crop(4, 4).is_err());
        assert!(a.pad_to(2, 8).is_err());
    }

    #[test]
    fn crop_region_and_replicate_pad() {
        let a = seq(Shape::new(1, 2, 4, 5));
        let r = a.crop_region(1, 2, 2, 3).unwrap();
        assert_eq!(r.shape().dims(), (1, 2, 2, 3));
        assert_eq!(r.at(0, 0, 0, 0), a.at(0, 0, 1, 2));
        assert_eq!(r.at(0, 1, 1, 2), a.at(0, 1, 2, 4));
        assert!(a.crop_region(3, 0, 2, 5).is_err());
        let p = a.replicate_pad(2);
        assert_eq!(p.shape().dims(), (1, 2, 8, 9));
        assert_eq!(p.at(0, 0, 0, 0), a.at(0, 0, 0, 0));
        assert_eq!(p.at(0, 1, 7, 8), a.at(0, 1, 3, 4));
        assert_eq!(p.crop_region(2, 2, 4, 5).unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = seq(Shape::new(1, 1, 2, 2)); // 1 2 3 4
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.mse(&a).unwrap(), 0.0);
        let b = a.map(|v| v + 2.0);
        assert_eq!(a.mse(&b).unwrap(), 4.0);
    }

    #[test]
    fn from_fn_matches_at() {
        let t = Tensor::from_fn(Shape::new(2, 3, 4, 5), |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        assert_eq!(t.at(1, 2, 3, 4), 1234.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }
}
