//! Deterministic weight-initialisation helpers.
//!
//! The reproduction has no training loop, so every "learned" parameter in
//! the repository is produced by one of these constructors with a fixed
//! seed. Gaussian draws use [`SplitMix64`] seeded explicitly, so the whole
//! experiment suite is bit-reproducible with zero external dependencies.

/// Minimal deterministic PRNG (SplitMix64, Steele et al.). Passes BigCrush
/// on its own and is more than adequate for weight initialisation; kept
/// in-tree so the workspace builds with no external crates.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `usize` in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Deterministic Gaussian sampler based on the Box–Muller transform.
///
/// # Example
///
/// ```
/// use nvc_tensor::init::Gaussian;
/// let mut g = Gaussian::new(42);
/// let x = g.sample(0.0, 1.0);
/// let y = g.sample(0.0, 1.0);
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone)]
pub struct Gaussian {
    rng: SplitMix64,
    cached: Option<f32>,
}

impl Gaussian {
    /// Creates a sampler from a seed.
    pub fn new(seed: u64) -> Self {
        Gaussian {
            rng: SplitMix64::new(seed),
            cached: None,
        }
    }

    /// Draws one sample from `N(mean, std²)`.
    pub fn sample(&mut self, mean: f32, std: f32) -> f32 {
        let z = if let Some(z) = self.cached.take() {
            z
        } else {
            // Box–Muller: two uniforms in (0, 1] -> two independent normals.
            let u1: f32 = 1.0 - self.rng.next_f32();
            let u2: f32 = self.rng.next_f32();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.cached = Some(r * theta.sin());
            r * theta.cos()
        };
        mean + std * z
    }

    /// Fills a buffer with `N(0, std²)` samples.
    pub fn fill(&mut self, buf: &mut [f32], std: f32) {
        for v in buf {
            *v = self.sample(0.0, std);
        }
    }
}

/// He/Kaiming-style standard deviation for a convolution with `fan_in`
/// input connections (`cin * k * k`).
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Generates a `len`-element Gaussian vector with the given seed and std.
pub fn randn_vec(len: usize, std: f32, seed: u64) -> Vec<f32> {
    let mut g = Gaussian::new(seed);
    let mut v = vec![0.0; len];
    g.fill(&mut v, std);
    v
}

/// Row `u` of the orthonormal `k`-point DCT-II basis, evaluated at column
/// `x`. Used to build analytic (perfect-reconstruction) filter banks for
/// the codec's analysis/synthesis transforms.
pub fn dct2_basis(k: usize, u: usize, x: usize) -> f32 {
    let kf = k as f32;
    let scale = if u == 0 {
        (1.0 / kf).sqrt()
    } else {
        (2.0 / kf).sqrt()
    };
    scale * ((std::f32::consts::PI * (x as f32 + 0.5) * u as f32) / kf).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let mut a = Gaussian::new(7);
        let mut b = Gaussian::new(7);
        for _ in 0..16 {
            assert_eq!(a.sample(0.0, 1.0), b.sample(0.0, 1.0));
        }
        let mut c = Gaussian::new(8);
        let same: Vec<f32> = (0..8).map(|_| c.sample(0.0, 1.0)).collect();
        let mut a2 = Gaussian::new(7);
        let diff: Vec<f32> = (0..8).map(|_| a2.sample(0.0, 1.0)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let v = randn_vec(20_000, 1.0, 123);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn dct_basis_is_orthonormal() {
        let k = 4;
        for u in 0..k {
            for v in 0..k {
                let dot: f32 = (0..k)
                    .map(|x| dct2_basis(k, u, x) * dct2_basis(k, v, x))
                    .sum();
                let expect = if u == v { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-5, "u={u} v={v} dot={dot}");
            }
        }
    }

    #[test]
    fn he_std_shrinks_with_fan_in() {
        assert!(he_std(9) > he_std(144));
        assert!(he_std(0).is_finite());
    }
}
