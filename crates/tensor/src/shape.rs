use std::fmt;

/// Shape of a 4-D NCHW tensor: `(batch, channels, height, width)`.
///
/// The NVC pipeline always runs with `n == 1`, but the batch dimension is
/// kept so operator code reads like its textbook definition.
///
/// # Example
///
/// ```
/// use nvc_tensor::Shape;
/// let s = Shape::new(1, 36, 540, 960);
/// assert_eq!(s.volume(), 36 * 540 * 960);
/// assert_eq!(s.dims(), (1, 36, 540, 960));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
}

impl Shape {
    /// Creates a new shape. All dimensions may be zero (producing an empty
    /// tensor), which is occasionally useful in tests.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height in rows.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width in columns.
    pub fn w(&self) -> usize {
        self.w
    }

    /// All four dimensions as a tuple `(n, c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Linear index of element `(n, c, h, w)` in row-major NCHW order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            n < self.n && c < self.c && h < self.h && w < self.w,
            "index ({n},{c},{h},{w}) out of bounds for shape {self}"
        );
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Returns a copy of this shape with a different channel count.
    pub fn with_c(&self, c: usize) -> Shape {
        Shape { c, ..*self }
    }

    /// Returns a copy of this shape with different spatial dimensions.
    pub fn with_hw(&self, h: usize, w: usize) -> Shape {
        Shape { h, w, ..*self }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}, {}]", self.n, self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Shape::new(n, c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 2 * 60 - 1);
    }

    #[test]
    fn volume_and_accessors() {
        let s = Shape::new(1, 36, 8, 16);
        assert_eq!(s.volume(), 36 * 128);
        assert_eq!(s.n(), 1);
        assert_eq!(s.c(), 36);
        assert_eq!(s.h(), 8);
        assert_eq!(s.w(), 16);
        assert_eq!(s.with_c(72).c(), 72);
        assert_eq!(s.with_hw(4, 8).dims(), (1, 36, 4, 8));
    }

    #[test]
    fn display_and_from_tuple() {
        let s: Shape = (1, 2, 3, 4).into();
        assert_eq!(s.to_string(), "[1, 2, 3, 4]");
    }
}
