//! NCHW tensor and neural-network operator substrate for the NVCA
//! reproduction.
//!
//! The CTVC-Net video codec of the paper is an inference-only network built
//! from a small operator zoo: 3×3/1×1 convolutions, 4×4 stride-2
//! deconvolutions, grouped deformable convolutions, max-pooling, ReLU /
//! sigmoid / softmax non-linearities and dense (linear) layers inside the
//! Swin attention blocks. This crate implements exactly that zoo from
//! scratch on a simple dense `f32` NCHW [`Tensor`].
//!
//! Design notes:
//!
//! * Tensors are dense, row-major `Vec<f32>` with an explicit [`Shape`]
//!   (batch, channels, height, width). Batch is carried for generality but
//!   the codec always runs with `n == 1`.
//! * Operators live in [`ops`] and are plain structs holding their weights
//!   ([`ops::Conv2d`], [`ops::DeConv2d`], [`ops::DeformConv2d`], …) with a
//!   `forward` method. Shape errors are reported through [`TensorError`].
//! * Weight initialisation helpers (seeded Gaussian, Dirac/identity, DCT
//!   bases) live in [`init`]; they are deterministic given a seed so every
//!   experiment in the repository is reproducible.
//!
//! # Example
//!
//! ```
//! use nvc_tensor::{Shape, Tensor, ops::Conv2d};
//!
//! # fn main() -> Result<(), nvc_tensor::TensorError> {
//! let input = Tensor::zeros(Shape::new(1, 3, 8, 8));
//! let conv = Conv2d::randn(16, 3, 3, 1, 1, 0x5eed)?; // 16 out, 3 in, k=3
//! let out = conv.forward(&input)?;
//! assert_eq!(out.shape().dims(), (1, 16, 8, 8));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod shape;
mod tensor;

pub mod init;
pub mod mat;
pub mod ops;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
