//! Neural-network operators used by CTVC-Net.
//!
//! Every operator validates its configuration at construction time and its
//! input shape at `forward` time, returning [`TensorError`](crate::TensorError)
//! on mismatch. All operators are deterministic: `forward` runs serially,
//! `forward_ctx` fans disjoint output regions (channel planes, rows)
//! across an [`nvc_core::ExecCtx`] worker pool while keeping every
//! accumulation's summation order fixed, so both paths are bit-identical
//! for every worker count. The hardware simulator reasons about operator
//! cost analytically and is unaffected by the software execution strategy.

mod conv;
mod deconv;
mod deform;
mod linear;
mod pool;

pub use conv::Conv2d;
pub use deconv::DeConv2d;
pub use deform::DeformConv2d;
pub use linear::Linear;
pub use pool::MaxPool2d;

use crate::Tensor;

/// Rectified linear unit, `max(0, x)`, applied elementwise.
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|v| v.max(0.0))
}

/// Leaky ReLU with negative slope `alpha`.
pub fn leaky_relu(t: &Tensor, alpha: f32) -> Tensor {
    t.map(move |v| if v >= 0.0 { v } else { alpha * v })
}

/// Logistic sigmoid, `1 / (1 + e^(-x))`, applied elementwise.
pub fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|v| 1.0 / (1.0 + (-v).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn activations_behave() {
        let t = Tensor::from_vec(Shape::new(1, 1, 1, 4), vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
        assert_eq!(leaky_relu(&t, 0.1).as_slice(), &[-0.2, -0.05, 0.0, 3.0]);
        let s = sigmoid(&t);
        assert!((s.at(0, 0, 0, 2) - 0.5).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
