use crate::{Shape, Tensor, TensorError};

/// Max pooling with square window and equal stride (`Maxpooling` in paper
/// Fig. 2(a), used once in feature extraction to halve resolution).
///
/// # Example
///
/// ```
/// use nvc_tensor::{Shape, Tensor, ops::MaxPool2d};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let pool = MaxPool2d::new(2)?;
/// let x = Tensor::zeros(Shape::new(1, 4, 8, 8));
/// assert_eq!(pool.forward(&x)?.shape().dims(), (1, 4, 4, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    k: usize,
}

impl MaxPool2d {
    /// Creates a pooling operator with window and stride `k`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0`.
    pub fn new(k: usize) -> Result<Self, TensorError> {
        if k == 0 {
            return Err(TensorError::invalid("pool window must be non-zero"));
        }
        Ok(MaxPool2d { k })
    }

    /// Window/stride size.
    pub fn window(&self) -> usize {
        self.k
    }

    /// Runs the pooling operator. Output size is `floor(h/k) × floor(w/k)`;
    /// trailing rows/columns that do not fill a window are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the input is smaller than
    /// one window.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = input.shape().dims();
        if h < self.k || w < self.k {
            return Err(TensorError::incompatible(format!(
                "input {h}x{w} smaller than pool window {}",
                self.k
            )));
        }
        let oh = h / self.k;
        let ow = w / self.k;
        let out_shape = Shape::new(n, c, oh, ow);
        let mut out = Tensor::zeros(out_shape);
        for nn in 0..n {
            for cc in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut m = f32::NEG_INFINITY;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                m = m.max(input.at(nn, cc, oy * self.k + dy, ox * self.k + dx));
                            }
                        }
                        *out.at_mut(nn, cc, oy, ox) = m;
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maximum() {
        let pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            Shape::new(1, 1, 2, 4),
            vec![1.0, 5.0, -1.0, 0.0, 2.0, 3.0, 7.0, -2.0],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn drops_partial_windows() {
        let pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::zeros(Shape::new(1, 1, 5, 7));
        assert_eq!(pool.forward(&x).unwrap().shape().dims(), (1, 1, 2, 3));
    }

    #[test]
    fn validation() {
        assert!(MaxPool2d::new(0).is_err());
        let pool = MaxPool2d::new(4).unwrap();
        assert!(pool
            .forward(&Tensor::zeros(Shape::new(1, 1, 2, 8)))
            .is_err());
    }
}
