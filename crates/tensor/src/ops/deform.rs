use crate::init::{he_std, Gaussian};
use crate::{Shape, Tensor, TensorError};
use nvc_core::ExecCtx;

/// Deformable convolution v1 (`DfConv(N, k, s, G)` in paper Fig. 2(d)).
///
/// A regular convolution samples input pixels on a fixed grid; a deformable
/// convolution adds a per-position, per-kernel-tap fractional offset
/// `(Δy, Δx)` and samples bilinearly. CTVC-Net uses it for motion
/// compensation in the feature domain: the reconstructed motion field
/// provides the offsets, so the same machinery performs warping.
///
/// The input channels are split into `groups` deformable groups; each group
/// has its own offset field. The offset tensor therefore carries
/// `2 · groups · k · k` channels, ordered `(group, tap, [dy, dx])`, with the
/// same spatial size as the output.
///
/// Only stride 1 is supported (the paper only instantiates stride-1
/// deformable convolutions).
#[derive(Debug, Clone, PartialEq)]
pub struct DeformConv2d {
    weight: Vec<f32>,
    bias: Vec<f32>,
    c_out: usize,
    c_in: usize,
    k: usize,
    padding: usize,
    groups: usize,
}

impl DeformConv2d {
    /// Creates a deformable convolution from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns an error if buffer lengths mismatch, `k == 0`, or
    /// `c_in` is not divisible by `groups`.
    pub fn new(
        weight: Vec<f32>,
        bias: Vec<f32>,
        c_out: usize,
        c_in: usize,
        k: usize,
        padding: usize,
        groups: usize,
    ) -> Result<Self, TensorError> {
        if k == 0 {
            return Err(TensorError::invalid("kernel size must be non-zero"));
        }
        if groups == 0 || !c_in.is_multiple_of(groups) {
            return Err(TensorError::invalid(format!(
                "groups {groups} must divide input channels {c_in}"
            )));
        }
        if weight.len() != c_out * c_in * k * k {
            return Err(TensorError::LengthMismatch {
                expected: c_out * c_in * k * k,
                actual: weight.len(),
            });
        }
        if bias.len() != c_out {
            return Err(TensorError::LengthMismatch {
                expected: c_out,
                actual: bias.len(),
            });
        }
        Ok(DeformConv2d {
            weight,
            bias,
            c_out,
            c_in,
            k,
            padding,
            groups,
        })
    }

    /// Creates a deformable convolution with He-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0` or `groups` does not divide `c_in`.
    pub fn randn(
        c_out: usize,
        c_in: usize,
        k: usize,
        padding: usize,
        groups: usize,
        seed: u64,
    ) -> Result<Self, TensorError> {
        let mut g = Gaussian::new(seed);
        let mut weight = vec![0.0; c_out * c_in * k * k];
        g.fill(&mut weight, he_std(c_in * k * k));
        DeformConv2d::new(weight, vec![0.0; c_out], c_out, c_in, k, padding, groups)
    }

    /// Number of deformable groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Channel count the offset tensor must have: `2 · groups · k · k`.
    pub fn offset_channels(&self) -> usize {
        2 * self.groups * self.k * self.k
    }

    /// Runs the deformable convolution single-threaded.
    ///
    /// `offsets` must have [`offset_channels`](Self::offset_channels)
    /// channels and the same spatial size as `input` (stride is 1, padding
    /// preserves resolution when `padding == k / 2`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] on channel or spatial-size
    /// mismatch.
    pub fn forward(&self, input: &Tensor, offsets: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(input, offsets, &ExecCtx::serial())
    }

    /// Runs the deformable convolution, fanning output rows across
    /// `exec`'s worker pool. Each row stages `[co][ox]` results in its own
    /// chunk (bilinear samples computed once per pixel, shared across
    /// output channels); the reduction skips the structurally zero taps
    /// of the warping kernels, which for the codec's Dirac-style
    /// compensation kernels removes almost the entire dot product.
    /// Results are bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeformConv2d::forward`].
    pub fn forward_ctx(
        &self,
        input: &Tensor,
        offsets: &Tensor,
        exec: &ExecCtx,
    ) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = input.shape().dims();
        if c != self.c_in {
            return Err(TensorError::incompatible(format!(
                "dfconv expects {} input channels, got {c}",
                self.c_in
            )));
        }
        let (on, oc, ooh, oow) = offsets.shape().dims();
        let out_h = h + 2 * self.padding - self.k + 1;
        let out_w = w + 2 * self.padding - self.k + 1;
        if on != n || oc != self.offset_channels() || ooh != out_h || oow != out_w {
            return Err(TensorError::incompatible(format!(
                "offset tensor {:?} incompatible (want ({n}, {}, {out_h}, {out_w}))",
                offsets.shape().dims(),
                self.offset_channels()
            )));
        }
        let out_shape = Shape::new(n, self.c_out, out_h, out_w);
        let mut out = Tensor::zeros(out_shape);
        let ch_per_group = self.c_in / self.groups;
        let kk = self.k * self.k;
        let pad = self.padding as f32;

        // Non-zero taps per output channel, in ascending index order (so
        // the pruned dot product accumulates in the same order as the
        // dense one, minus exact-zero terms).
        let nz: Vec<Vec<(u32, f32)>> = (0..self.c_out)
            .map(|co| {
                let wbase = co * self.c_in * kk;
                self.weight[wbase..wbase + self.c_in * kk]
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(i, &v)| (i as u32, v))
                    .collect()
            })
            .collect();

        for nn in 0..n {
            // Staging layout: [oy][co][ox], one chunk per output row.
            let mut rows = exec.scratch().take(out_h * self.c_out * out_w);
            // Sampling (4-tap bilinear per position) dominates the dot
            // product here, so gate on it rather than the MAC count.
            let work = (out_h * out_w * self.c_in * kk) as u64 * 4;
            exec.par_chunks_mut_gated(&mut rows, self.c_out * out_w, work, |oy, row| {
                let mut sampled = vec![0.0_f32; self.c_in * kk];
                for ox in 0..out_w {
                    // Pre-sample the deformed patch once per (oy, ox):
                    // sampled[ci][tap].
                    for g in 0..self.groups {
                        for tap in 0..kk {
                            let kh = (tap / self.k) as f32;
                            let kw = (tap % self.k) as f32;
                            let dy = offsets.at(nn, (g * kk + tap) * 2, oy, ox);
                            let dx = offsets.at(nn, (g * kk + tap) * 2 + 1, oy, ox);
                            let sy = oy as f32 - pad + kh + dy;
                            let sx = ox as f32 - pad + kw + dx;
                            for cg in 0..ch_per_group {
                                let ci = g * ch_per_group + cg;
                                sampled[ci * kk + tap] = input.sample_bilinear(nn, ci, sy, sx);
                            }
                        }
                    }
                    for (co, taps) in nz.iter().enumerate() {
                        let mut acc = self.bias[co];
                        for &(i, wv) in taps {
                            acc += sampled[i as usize] * wv;
                        }
                        row[co * out_w + ox] = acc;
                    }
                }
            });
            // Scatter staged rows into NCHW.
            let out_data = out.as_mut_slice();
            for oy in 0..out_h {
                let row = &rows[oy * self.c_out * out_w..][..self.c_out * out_w];
                for co in 0..self.c_out {
                    let dst = ((nn * self.c_out + co) * out_h + oy) * out_w;
                    out_data[dst..dst + out_w].copy_from_slice(&row[co * out_w..][..out_w]);
                }
            }
            exec.scratch().put(rows);
        }
        Ok(out)
    }

    /// Number of multiply–accumulate operations for an `h × w` input
    /// (excluding the bilinear-sampling interpolation arithmetic).
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let oh = h + 2 * self.padding - self.k + 1;
        let ow = w + 2 * self.padding - self.k + 1;
        (self.c_out * self.c_in * self.k * self.k) as u64 * (oh * ow) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With all offsets zero, a deformable conv must equal a regular conv.
    #[test]
    fn zero_offsets_match_regular_conv() {
        use crate::ops::Conv2d;
        let c_out = 3;
        let c_in = 4;
        let k = 3;
        let dconv = DeformConv2d::randn(c_out, c_in, k, 1, 2, 99).unwrap();
        let conv = Conv2d::new(
            dconv.weight.clone(),
            dconv.bias.clone(),
            c_out,
            c_in,
            k,
            1,
            1,
        )
        .unwrap();
        let x = Tensor::from_fn(Shape::new(1, c_in, 6, 7), |_, c, h, w| {
            ((c + 1) * (h + 2) + w) as f32 * 0.1
        });
        let offsets = Tensor::zeros(Shape::new(1, dconv.offset_channels(), 6, 7));
        let yd = dconv.forward(&x, &offsets).unwrap();
        let yc = conv.forward(&x).unwrap();
        let diff = yd.sub(&yc).unwrap().max_abs();
        assert!(diff < 1e-4, "max diff {diff}");
    }

    /// Integer offsets shift the sampling grid exactly.
    #[test]
    fn integer_offset_translates_sampling() {
        // 1x1 kernel, no padding: output(o) = input(o + offset).
        let dconv = DeformConv2d::new(vec![1.0], vec![0.0], 1, 1, 1, 0, 1).unwrap();
        let x = Tensor::from_fn(Shape::new(1, 1, 4, 4), |_, _, h, w| (h * 4 + w) as f32);
        let mut off = Tensor::zeros(Shape::new(1, 2, 4, 4));
        // dy = 1 everywhere.
        for h in 0..4 {
            for w in 0..4 {
                *off.at_mut(0, 0, h, w) = 1.0;
            }
        }
        let y = dconv.forward(&x, &off).unwrap();
        assert_eq!(y.at(0, 0, 0, 0), x.at(0, 0, 1, 0));
        assert_eq!(y.at(0, 0, 2, 3), x.at(0, 0, 3, 3));
        // Row beyond the frame samples zero padding.
        assert_eq!(y.at(0, 0, 3, 0), 0.0);
    }

    /// Fractional offsets interpolate bilinearly.
    #[test]
    fn fractional_offset_interpolates() {
        let dconv = DeformConv2d::new(vec![1.0], vec![0.0], 1, 1, 1, 0, 1).unwrap();
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![0.0, 10.0]).unwrap();
        let mut off = Tensor::zeros(Shape::new(1, 2, 1, 2));
        *off.at_mut(0, 1, 0, 0) = 0.5; // dx = 0.5 at the first pixel
        let y = dconv.forward(&x, &off).unwrap();
        assert!((y.at(0, 0, 0, 0) - 5.0).abs() < 1e-6);
    }

    /// Groups get independent offset fields.
    #[test]
    fn groups_use_independent_offsets() {
        // 2 channels, 2 groups, 1x1 kernel, weights sum both channels.
        let dconv = DeformConv2d::new(vec![1.0, 1.0], vec![0.0], 1, 2, 1, 0, 2).unwrap();
        let x = Tensor::from_fn(Shape::new(1, 2, 1, 3), |_, c, _, w| {
            if c == 0 {
                w as f32
            } else {
                100.0 * w as f32
            }
        });
        let mut off = Tensor::zeros(Shape::new(1, 4, 1, 3));
        // Group 0: dx = +1; group 1: dx = 0.
        for w in 0..3 {
            *off.at_mut(0, 1, 0, w) = 1.0;
        }
        let y = dconv.forward(&x, &off).unwrap();
        // Pixel 0: group0 samples x0[1] = 1, group1 samples x1[0] = 0.
        assert!((y.at(0, 0, 0, 0) - 1.0).abs() < 1e-6);
        // Pixel 1: group0 samples x0[2] = 2, group1 samples x1[1] = 100.
        assert!((y.at(0, 0, 0, 1) - 102.0).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_bad_config() {
        assert!(DeformConv2d::randn(4, 3, 3, 1, 2, 0).is_err()); // 2 ∤ 3
        assert!(DeformConv2d::randn(4, 4, 0, 0, 2, 0).is_err());
        let d = DeformConv2d::randn(4, 4, 3, 1, 2, 0).unwrap();
        let x = Tensor::zeros(Shape::new(1, 4, 5, 5));
        let bad_off = Tensor::zeros(Shape::new(1, 7, 5, 5));
        assert!(d.forward(&x, &bad_off).is_err());
        let bad_spatial = Tensor::zeros(Shape::new(1, d.offset_channels(), 4, 5));
        assert!(d.forward(&x, &bad_spatial).is_err());
    }
}
