use crate::init::{he_std, Gaussian};
use crate::mat::Mat;
use crate::TensorError;

/// Dense (fully connected) layer `y = x Wᵀ + b`, operating on [`Mat`] whose
/// rows are tokens. Used for the Q/K/V/output projections inside the Swin
/// attention module.
///
/// # Example
///
/// ```
/// use nvc_tensor::{mat::Mat, ops::Linear};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let lin = Linear::randn(8, 4, 3)?;
/// let tokens = Mat::zeros(9, 4); // 9 tokens of width 4
/// assert_eq!(lin.forward(&tokens)?.cols(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Mat, // out x in
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer from an `out × in` weight matrix and a bias of
    /// length `out`.
    ///
    /// # Errors
    ///
    /// Returns an error if `bias.len() != weight.rows()`.
    pub fn new(weight: Mat, bias: Vec<f32>) -> Result<Self, TensorError> {
        if bias.len() != weight.rows() {
            return Err(TensorError::LengthMismatch {
                expected: weight.rows(),
                actual: bias.len(),
            });
        }
        Ok(Linear { weight, bias })
    }

    /// Creates a layer with He-initialised Gaussian weights and zero bias.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for uniformity with other
    /// constructors.
    pub fn randn(out_features: usize, in_features: usize, seed: u64) -> Result<Self, TensorError> {
        let mut g = Gaussian::new(seed);
        let mut w = vec![0.0; out_features * in_features];
        g.fill(&mut w, he_std(in_features));
        Linear::new(
            Mat::from_vec(out_features, in_features, w)?,
            vec![0.0; out_features],
        )
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Read-only weight matrix (`out × in`).
    pub fn weight(&self) -> &Mat {
        &self.weight
    }

    /// Applies the layer to a token matrix (`tokens × in`).
    ///
    /// The stored `out × in` weight layout is already the transposed
    /// right-hand side `matmul_transposed` wants, so no per-call
    /// transpose is materialized.
    ///
    /// # Errors
    ///
    /// Returns an error if `x.cols() != in_features`.
    pub fn forward(&self, x: &Mat) -> Result<Mat, TensorError> {
        let mut y = x.matmul_transposed(&self.weight)?;
        let cols = y.cols();
        for row in y.as_mut_slice().chunks_exact_mut(cols) {
            for (v, &b) in row.iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        Ok(y)
    }

    /// Multiply–accumulate count for a token matrix with `tokens` rows.
    pub fn macs(&self, tokens: usize) -> u64 {
        (tokens * self.weight.rows() * self.weight.cols()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let w = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let lin = Linear::new(w, vec![0.0, 0.0, 10.0]).unwrap();
        let x = Mat::from_rows(&[&[3.0, 4.0]]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 8.0, 17.0]);
        assert_eq!(lin.out_features(), 3);
        assert_eq!(lin.in_features(), 2);
        assert_eq!(lin.macs(5), 30);
    }

    #[test]
    fn validation() {
        let w = Mat::zeros(3, 2);
        assert!(Linear::new(w.clone(), vec![0.0; 2]).is_err());
        let lin = Linear::new(w, vec![0.0; 3]).unwrap();
        assert!(lin.forward(&Mat::zeros(4, 3)).is_err());
    }
}
