use crate::init::{he_std, Gaussian};
use crate::{Shape, Tensor, TensorError};
use nvc_core::ExecCtx;

/// 2-D convolution with square kernel, symmetric zero padding and uniform
/// stride — the workhorse of CTVC-Net (`Conv(N, k, s)` in paper Fig. 2).
///
/// Weight layout is `[c_out][c_in][k][k]` row-major; one bias per output
/// channel.
///
/// # Example
///
/// ```
/// use nvc_tensor::{Shape, Tensor, ops::Conv2d};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// // 3x3 box filter that preserves resolution.
/// let conv = Conv2d::from_fn(1, 1, 3, 1, 1, |_, _, _, _| 1.0 / 9.0)?;
/// let x = Tensor::filled(Shape::new(1, 1, 5, 5), 9.0);
/// let y = conv.forward(&x)?;
/// assert_eq!(y.at(0, 0, 2, 2), 9.0); // interior average of a constant
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    weight: Vec<f32>,
    bias: Vec<f32>,
    c_out: usize,
    c_in: usize,
    k: usize,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a convolution from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer lengths do not match
    /// `c_out * c_in * k * k` / `c_out`, or if `stride == 0` or `k == 0`.
    pub fn new(
        weight: Vec<f32>,
        bias: Vec<f32>,
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        if k == 0 || stride == 0 {
            return Err(TensorError::invalid(
                "kernel size and stride must be non-zero",
            ));
        }
        if weight.len() != c_out * c_in * k * k {
            return Err(TensorError::LengthMismatch {
                expected: c_out * c_in * k * k,
                actual: weight.len(),
            });
        }
        if bias.len() != c_out {
            return Err(TensorError::LengthMismatch {
                expected: c_out,
                actual: bias.len(),
            });
        }
        Ok(Conv2d {
            weight,
            bias,
            c_out,
            c_in,
            k,
            stride,
            padding,
        })
    }

    /// Creates a convolution with He-initialised Gaussian weights and zero
    /// biases, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `stride == 0` or `k == 0`.
    pub fn randn(
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self, TensorError> {
        let mut g = Gaussian::new(seed);
        let mut weight = vec![0.0; c_out * c_in * k * k];
        g.fill(&mut weight, he_std(c_in * k * k));
        Conv2d::new(weight, vec![0.0; c_out], c_out, c_in, k, stride, padding)
    }

    /// Creates a convolution whose weight at `(c_out, c_in, kh, kw)` is
    /// produced by `f`, with zero biases.
    ///
    /// # Errors
    ///
    /// Returns an error if `stride == 0` or `k == 0`.
    pub fn from_fn(
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut weight = Vec::with_capacity(c_out * c_in * k * k);
        for co in 0..c_out {
            for ci in 0..c_in {
                for kh in 0..k {
                    for kw in 0..k {
                        weight.push(f(co, ci, kh, kw));
                    }
                }
            }
        }
        Conv2d::new(weight, vec![0.0; c_out], c_out, c_in, k, stride, padding)
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding applied on each spatial border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Read-only weight buffer, `[c_out][c_in][k][k]` row-major.
    pub fn weight(&self) -> &[f32] {
        &self.weight
    }

    /// Mutable weight buffer (used by the pruning pass).
    pub fn weight_mut(&mut self) -> &mut [f32] {
        &mut self.weight
    }

    /// Read-only bias buffer.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable bias buffer.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// The `k × k` kernel for output channel `co`, input channel `ci`.
    ///
    /// # Panics
    ///
    /// Panics if `co` or `ci` is out of range.
    pub fn kernel_slice(&self, co: usize, ci: usize) -> &[f32] {
        assert!(
            co < self.c_out && ci < self.c_in,
            "kernel ({co},{ci}) out of range"
        );
        let kk = self.k * self.k;
        let base = (co * self.c_in + ci) * kk;
        &self.weight[base..base + kk]
    }

    /// Spatial output size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.padding - self.k) / self.stride + 1,
            (w + 2 * self.padding - self.k) / self.stride + 1,
        )
    }

    /// Runs the convolution single-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the input channel count is
    /// not `c_in` or the padded input is smaller than the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(input, &ExecCtx::serial())
    }

    /// Runs the convolution, fanning output channels across `ctx`'s worker
    /// pool. Each output plane is computed independently with a fixed
    /// accumulation order (`c_in` ascending, then kernel taps row-major),
    /// so the result is bit-identical for every worker count. The fan-out
    /// is work-size gated: small planes (decode-side latent shapes) run
    /// serially because worker spawn overhead would dominate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Conv2d::forward`].
    pub fn forward_ctx(&self, input: &Tensor, ctx: &ExecCtx) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = input.shape().dims();
        if c != self.c_in {
            return Err(TensorError::incompatible(format!(
                "conv expects {} input channels, got {c}",
                self.c_in
            )));
        }
        if h + 2 * self.padding < self.k || w + 2 * self.padding < self.k {
            return Err(TensorError::incompatible(format!(
                "input {h}x{w} (pad {}) smaller than kernel {}",
                self.padding, self.k
            )));
        }
        let (oh, ow) = self.output_hw(h, w);
        let out_shape = Shape::new(n, self.c_out, oh, ow);
        let mut out = Tensor::zeros(out_shape);
        let in_data = input.as_slice();
        let work = n as u64 * self.macs(h, w);
        ctx.par_chunks_mut_gated(out.as_mut_slice(), oh * ow, work, |plane_idx, out_plane| {
            let nn = plane_idx / self.c_out;
            let co = plane_idx % self.c_out;
            let in_planes = &in_data[nn * self.c_in * h * w..][..self.c_in * h * w];
            self.forward_plane(in_planes, h, w, co, oh, ow, out_plane);
        });
        Ok(out)
    }

    /// Computes one output-channel plane. Row interiors run over
    /// pre-clipped slice windows, so the inner loop carries no bounds or
    /// padding checks.
    #[allow(clippy::too_many_arguments)]
    fn forward_plane(
        &self,
        in_planes: &[f32],
        h: usize,
        w: usize,
        co: usize,
        oh: usize,
        ow: usize,
        out_plane: &mut [f32],
    ) {
        out_plane.fill(self.bias[co]);
        let s = self.stride;
        let pad = self.padding as isize;
        for ci in 0..self.c_in {
            let in_plane = &in_planes[ci * h * w..][..h * w];
            let kernel = self.kernel_slice(co, ci);
            for (ki, &kv) in kernel.iter().enumerate() {
                if kv == 0.0 {
                    continue;
                }
                let kh = (ki / self.k) as isize;
                let kw = (ki % self.k) as isize;
                let shift = kw - pad; // ix = ox·s + shift
                let ox_min = if shift >= 0 {
                    0
                } else {
                    ((-shift) as usize).div_ceil(s)
                };
                let lim = w as isize - shift; // need ox·s < lim
                if lim <= 0 {
                    continue;
                }
                let ox_end = ((lim as usize - 1) / s + 1).min(ow);
                if ox_min >= ox_end {
                    continue;
                }
                for oy in 0..oh {
                    let iy = (oy * s) as isize - pad + kh;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let in_row = &in_plane[iy as usize * w..][..w];
                    let out_row = &mut out_plane[oy * ow..][..ow];
                    if s == 1 {
                        let ix0 = (ox_min as isize + shift) as usize;
                        let count = ox_end - ox_min;
                        for (o, &v) in out_row[ox_min..ox_end]
                            .iter_mut()
                            .zip(&in_row[ix0..ix0 + count])
                        {
                            *o += kv * v;
                        }
                    } else {
                        let mut ix = ((ox_min * s) as isize + shift) as usize;
                        for o in out_row[ox_min..ox_end].iter_mut() {
                            *o += kv * in_row[ix];
                            ix += s;
                        }
                    }
                }
            }
        }
    }

    /// Number of multiply–accumulate operations for an `h × w` input, used
    /// by the performance model.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        (self.c_out * self.c_in * self.k * self.k) as u64 * (oh * ow) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        // 3x3 Dirac kernel.
        let conv = Conv2d::from_fn(
            1,
            1,
            3,
            1,
            1,
            |_, _, kh, kw| {
                if kh == 1 && kw == 1 {
                    1.0
                } else {
                    0.0
                }
            },
        )
        .unwrap();
        let x = Tensor::from_fn(Shape::new(1, 1, 4, 5), |_, _, h, w| (h * 5 + w) as f32);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn known_3x3_convolution_value() {
        // All-ones kernel on a ramp; interior output = sum of 3x3 patch.
        let conv = Conv2d::from_fn(1, 1, 3, 1, 1, |_, _, _, _| 1.0).unwrap();
        let x = Tensor::from_fn(Shape::new(1, 1, 3, 3), |_, _, h, w| (h * 3 + w) as f32);
        let y = conv.forward(&x).unwrap();
        // Centre: sum 0..=8 = 36.
        assert_eq!(y.at(0, 0, 1, 1), 36.0);
        // Corner (0,0): only pixels (0,0),(0,1),(1,0),(1,1) = 0+1+3+4 = 8.
        assert_eq!(y.at(0, 0, 0, 0), 8.0);
    }

    #[test]
    fn stride_two_downsamples() {
        let conv = Conv2d::from_fn(2, 3, 3, 2, 1, |_, _, _, _| 0.1).unwrap();
        let x = Tensor::zeros(Shape::new(1, 3, 8, 10));
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 2, 4, 5));
    }

    #[test]
    fn one_by_one_conv_mixes_channels() {
        let conv = Conv2d::new(
            vec![1.0, 2.0], // out0 = in0 + 2*in1
            vec![0.5],
            1,
            2,
            1,
            1,
            0,
        )
        .unwrap();
        let x =
            Tensor::from_vec(Shape::new(1, 2, 1, 2), vec![1.0, 2.0, /* ch1 */ 10.0, 20.0]).unwrap();
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[21.5, 42.5]);
    }

    #[test]
    fn bias_is_applied_per_channel() {
        let conv = Conv2d::new(vec![0.0; 2 * 9], vec![3.0, -1.0], 2, 1, 3, 1, 1).unwrap();
        let x = Tensor::zeros(Shape::new(1, 1, 2, 2));
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.at(0, 0, 0, 0), 3.0);
        assert_eq!(y.at(0, 1, 1, 1), -1.0);
    }

    #[test]
    fn validation_rejects_bad_config() {
        assert!(Conv2d::new(vec![0.0; 8], vec![0.0], 1, 1, 3, 1, 1).is_err());
        assert!(Conv2d::new(vec![0.0; 9], vec![0.0; 2], 1, 1, 3, 1, 1).is_err());
        assert!(Conv2d::randn(1, 1, 0, 1, 0, 0).is_err());
        assert!(Conv2d::randn(1, 1, 3, 0, 1, 0).is_err());
        let conv = Conv2d::randn(4, 3, 3, 1, 1, 0).unwrap();
        let bad = Tensor::zeros(Shape::new(1, 2, 8, 8));
        assert!(conv.forward(&bad).is_err());
        let tiny = Tensor::zeros(Shape::new(1, 3, 1, 1));
        let nopad = Conv2d::randn(4, 3, 3, 1, 0, 0).unwrap();
        assert!(nopad.forward(&tiny).is_err());
    }

    #[test]
    fn macs_counts_match_shape() {
        let conv = Conv2d::randn(8, 4, 3, 1, 1, 0).unwrap();
        assert_eq!(conv.macs(10, 10), 8 * 4 * 9 * 100);
        let s2 = Conv2d::randn(8, 4, 3, 2, 1, 0).unwrap();
        assert_eq!(s2.macs(10, 10), 8 * 4 * 9 * 25);
    }
}
