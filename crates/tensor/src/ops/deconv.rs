use crate::init::{he_std, Gaussian};
use crate::{Shape, Tensor, TensorError};
use nvc_core::ExecCtx;

/// 2-D transposed convolution ("deconvolution", `DeConv(N, k, s)` in paper
/// Fig. 2), implemented as input-driven scatter-accumulate.
///
/// For input size `h × w`, output size is `(h-1)·s − 2p + k` per dimension.
/// CTVC-Net uses `DeConv(·, 4, 2)` with padding 1, which exactly doubles
/// the resolution — the configuration the FTA fast algorithm `T3(6×6, 4×4)`
/// targets.
///
/// Weight layout is `[c_in][c_out][k][k]` row-major (PyTorch convention for
/// `ConvTranspose2d`), one bias per output channel.
///
/// # Example
///
/// ```
/// use nvc_tensor::{Shape, Tensor, ops::DeConv2d};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let up = DeConv2d::randn(8, 16, 4, 2, 1, 7)?;
/// let x = Tensor::zeros(Shape::new(1, 16, 6, 5));
/// assert_eq!(up.forward(&x)?.shape().dims(), (1, 8, 12, 10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeConv2d {
    weight: Vec<f32>,
    bias: Vec<f32>,
    c_out: usize,
    c_in: usize,
    k: usize,
    stride: usize,
    padding: usize,
}

impl DeConv2d {
    /// Creates a transposed convolution from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns an error on zero kernel/stride or mismatched buffer lengths.
    pub fn new(
        weight: Vec<f32>,
        bias: Vec<f32>,
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        if k == 0 || stride == 0 {
            return Err(TensorError::invalid(
                "kernel size and stride must be non-zero",
            ));
        }
        if k < 2 * padding + 1 {
            return Err(TensorError::invalid(format!(
                "padding {padding} too large for kernel {k}"
            )));
        }
        if weight.len() != c_out * c_in * k * k {
            return Err(TensorError::LengthMismatch {
                expected: c_out * c_in * k * k,
                actual: weight.len(),
            });
        }
        if bias.len() != c_out {
            return Err(TensorError::LengthMismatch {
                expected: c_out,
                actual: bias.len(),
            });
        }
        Ok(DeConv2d {
            weight,
            bias,
            c_out,
            c_in,
            k,
            stride,
            padding,
        })
    }

    /// Creates a transposed convolution with He-initialised Gaussian
    /// weights and zero biases, deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error on zero kernel/stride.
    pub fn randn(
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self, TensorError> {
        let mut g = Gaussian::new(seed);
        let mut weight = vec![0.0; c_out * c_in * k * k];
        g.fill(&mut weight, he_std(c_in * k * k));
        DeConv2d::new(weight, vec![0.0; c_out], c_out, c_in, k, stride, padding)
    }

    /// Creates a transposed convolution whose weight at
    /// `(c_in, c_out, kh, kw)` is produced by `f`, with zero biases.
    ///
    /// # Errors
    ///
    /// Returns an error on zero kernel/stride.
    pub fn from_fn(
        c_out: usize,
        c_in: usize,
        k: usize,
        stride: usize,
        padding: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Result<Self, TensorError> {
        let mut weight = Vec::with_capacity(c_out * c_in * k * k);
        for ci in 0..c_in {
            for co in 0..c_out {
                for kh in 0..k {
                    for kw in 0..k {
                        weight.push(f(ci, co, kh, kw));
                    }
                }
            }
        }
        DeConv2d::new(weight, vec![0.0; c_out], c_out, c_in, k, stride, padding)
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride (upsampling factor).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding (in transposed-convolution convention).
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Read-only weight buffer, `[c_in][c_out][k][k]` row-major.
    pub fn weight(&self) -> &[f32] {
        &self.weight
    }

    /// Mutable weight buffer (used by the pruning pass).
    pub fn weight_mut(&mut self) -> &mut [f32] {
        &mut self.weight
    }

    /// Read-only bias buffer.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The `k × k` kernel connecting input channel `ci` to output channel
    /// `co`.
    ///
    /// # Panics
    ///
    /// Panics if `ci` or `co` is out of range.
    pub fn kernel_slice(&self, ci: usize, co: usize) -> &[f32] {
        assert!(
            ci < self.c_in && co < self.c_out,
            "kernel ({ci},{co}) out of range"
        );
        let kk = self.k * self.k;
        let base = (ci * self.c_out + co) * kk;
        &self.weight[base..base + kk]
    }

    /// Spatial output size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - 1) * self.stride + self.k - 2 * self.padding,
            (w - 1) * self.stride + self.k - 2 * self.padding,
        )
    }

    /// Runs the transposed convolution single-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the input channel count
    /// differs from `c_in` or the input is empty.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(input, &ExecCtx::serial())
    }

    /// Runs the transposed convolution, fanning output channels across
    /// `ctx`'s worker pool. Each output plane accumulates its scattered
    /// contributions in a fixed order (`c_in` ascending, then input pixels
    /// row-major, then kernel taps), so the result is bit-identical for
    /// every worker count. The fan-out is work-size gated (small planes
    /// run serially).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeConv2d::forward`].
    pub fn forward_ctx(&self, input: &Tensor, ctx: &ExecCtx) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = input.shape().dims();
        if c != self.c_in {
            return Err(TensorError::incompatible(format!(
                "deconv expects {} input channels, got {c}",
                self.c_in
            )));
        }
        if h == 0 || w == 0 {
            return Err(TensorError::incompatible("empty input"));
        }
        let (oh, ow) = self.output_hw(h, w);
        let out_shape = Shape::new(n, self.c_out, oh, ow);
        let mut out = Tensor::zeros(out_shape);
        let in_data = input.as_slice();
        let pad = self.padding as isize;
        let s = self.stride;
        let k = self.k;
        let work = n as u64 * self.macs(h, w);
        ctx.par_chunks_mut_gated(out.as_mut_slice(), oh * ow, work, |plane_idx, out_plane| {
            let nn = plane_idx / self.c_out;
            let co = plane_idx % self.c_out;
            out_plane.fill(self.bias[co]);
            for ci in 0..self.c_in {
                let in_plane = &in_data[(nn * self.c_in + ci) * h * w..][..h * w];
                let kernel = self.kernel_slice(ci, co);
                for iy in 0..h {
                    let oy0 = (iy * s) as isize - pad;
                    let in_row = &in_plane[iy * w..][..w];
                    for (ix, &x) in in_row.iter().enumerate() {
                        if x == 0.0 {
                            continue;
                        }
                        let ox0 = (ix * s) as isize - pad;
                        let kw_min = if ox0 >= 0 { 0 } else { (-ox0) as usize };
                        let kw_max = ((ow as isize - ox0).max(0) as usize).min(k);
                        if kw_min >= kw_max {
                            continue;
                        }
                        let obase = (ox0 + kw_min as isize) as usize;
                        for kh in 0..k {
                            let oy = oy0 + kh as isize;
                            if oy < 0 || oy as usize >= oh {
                                continue;
                            }
                            let out_row =
                                &mut out_plane[oy as usize * ow + obase..][..kw_max - kw_min];
                            let k_row = &kernel[kh * k + kw_min..kh * k + kw_max];
                            for (o, &kv) in out_row.iter_mut().zip(k_row) {
                                *o += x * kv;
                            }
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Number of multiply–accumulate operations for an `h × w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        (self.c_out * self.c_in * self.k * self.k) as u64 * (h * w) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_doubles_for_k4_s2_p1() {
        let d = DeConv2d::randn(3, 5, 4, 2, 1, 0).unwrap();
        assert_eq!(d.output_hw(6, 7), (12, 14));
        let x = Tensor::zeros(Shape::new(1, 5, 6, 7));
        assert_eq!(d.forward(&x).unwrap().shape().dims(), (1, 3, 12, 14));
    }

    #[test]
    fn single_impulse_scatters_kernel() {
        // k=4, s=2, p=1, single input pixel at (1,1); kernel values are
        // (kh*4+kw) so the scatter pattern is directly visible.
        let d = DeConv2d::from_fn(1, 1, 4, 2, 1, |_, _, kh, kw| (kh * 4 + kw) as f32).unwrap();
        let mut x = Tensor::zeros(Shape::new(1, 1, 3, 3));
        *x.at_mut(0, 0, 1, 1) = 1.0;
        let y = d.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 1, 6, 6));
        // Output pixel (oy, ox) = (iy*2 - 1 + kh, ix*2 - 1 + kw) = (1 + kh, 1 + kw).
        for kh in 0..4 {
            for kw in 0..4 {
                assert_eq!(y.at(0, 0, 1 + kh, 1 + kw), (kh * 4 + kw) as f32);
            }
        }
        assert_eq!(y.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn matches_manual_overlap_sum() {
        // Two adjacent impulses: overlapping scatter regions must sum.
        let d = DeConv2d::from_fn(1, 1, 4, 2, 1, |_, _, _, _| 1.0).unwrap();
        let mut x = Tensor::zeros(Shape::new(1, 1, 1, 2));
        *x.at_mut(0, 0, 0, 0) = 1.0;
        *x.at_mut(0, 0, 0, 1) = 1.0;
        let y = d.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 1, 2, 4));
        // Columns where both kernels overlap get 2.0.
        // impulse0 covers ox in [-1..2] clipped, impulse1 covers ox in [1..4] clipped.
        assert_eq!(y.at(0, 0, 0, 1), 2.0);
        assert_eq!(y.at(0, 0, 0, 2), 2.0);
        assert_eq!(y.at(0, 0, 0, 0), 1.0);
        assert_eq!(y.at(0, 0, 0, 3), 1.0);
    }

    #[test]
    fn bias_fills_output() {
        let d = DeConv2d::new(vec![0.0; 16], vec![2.5], 1, 1, 4, 2, 1).unwrap();
        let x = Tensor::zeros(Shape::new(1, 1, 2, 2));
        let y = d.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn validation_rejects_bad_config() {
        assert!(DeConv2d::new(vec![0.0; 15], vec![0.0], 1, 1, 4, 2, 1).is_err());
        assert!(DeConv2d::randn(1, 1, 4, 0, 1, 0).is_err());
        assert!(DeConv2d::randn(1, 1, 3, 2, 2, 0).is_err()); // pad too big
        let d = DeConv2d::randn(2, 3, 4, 2, 1, 0).unwrap();
        assert!(d.forward(&Tensor::zeros(Shape::new(1, 4, 4, 4))).is_err());
    }

    #[test]
    fn macs_scale_with_input_area() {
        let d = DeConv2d::randn(2, 3, 4, 2, 1, 0).unwrap();
        assert_eq!(d.macs(5, 5), (2 * 3 * 16 * 25) as u64);
    }
}
