use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor and operator APIs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// A tensor was constructed from a buffer whose length does not match
    /// the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand, as `(n, c, h, w)`.
        left: (usize, usize, usize, usize),
        /// Shape of the right-hand operand, as `(n, c, h, w)`.
        right: (usize, usize, usize, usize),
    },
    /// An operator received an input whose channel count (or another
    /// structural property) is incompatible with its weights.
    Incompatible {
        /// Human-readable description of the incompatibility.
        reason: String,
    },
    /// A parameter value is outside its legal range (zero stride, even
    /// kernel where odd is required, and so on).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::Incompatible`].
    pub fn incompatible(reason: impl Into<String>) -> Self {
        TensorError::Incompatible {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`TensorError::InvalidParameter`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        TensorError::InvalidParameter {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::Incompatible { reason } => write!(f, "incompatible operands: {reason}"),
            TensorError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch {
            expected: 12,
            actual: 7,
        };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("7"));
        let err = TensorError::incompatible("channels 3 vs 4");
        assert!(err.to_string().contains("channels 3 vs 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
