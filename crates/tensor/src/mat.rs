//! Small dense row-major matrix type used by the attention blocks and by
//! the fast-transform algebra.
//!
//! The Winograd/FTA transform matrices (`A`, `B`, `G` in Eq. (1) of the
//! paper) and the per-window `Q/K/V` projections of the Swin attention
//! module are all small dense matrices; [`Mat`] gives them an explicit type
//! with checked multiplication rather than ad-hoc nested `Vec`s.

use crate::TensorError;
use std::fmt;

/// Dense row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use nvc_tensor::mat::Mat;
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let i = Mat::identity(2);
/// assert_eq!(a.matmul(&i)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if rows have unequal lengths
    /// or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let r = rows.len();
        let c = rows
            .first()
            .map(|r| r.len())
            .ok_or_else(|| TensorError::incompatible("matrix must have at least one row"))?;
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(TensorError::incompatible("ragged rows"));
            }
            data.extend_from_slice(row);
        }
        Ok(Mat {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read-only flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of range for {self}"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of range for {self}"
        );
        &mut self.data[r * self.cols + c]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat, TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::incompatible(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat, TensorError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::incompatible("hadamard shape mismatch"));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Softmax applied independently to each row (used by attention).
    pub fn softmax_rows(&self) -> Mat {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Mat) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0_f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Mat::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = Mat::from_rows(&[&[0.0, 1.0, 2.0], &[10.0, 10.0, 10.0]]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.at(0, 2) > s.at(0, 0));
    }

    #[test]
    fn from_rows_validates() {
        assert!(Mat::from_rows(&[]).is_err());
        let ragged: [&[f32]; 2] = [&[1.0], &[1.0, 2.0]];
        assert!(Mat::from_rows(&ragged).is_err());
        assert!(Mat::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]).unwrap();
        assert_eq!(Mat::identity(2).matmul(&a).unwrap(), a);
        assert_eq!(a.matmul(&Mat::identity(2)).unwrap(), a);
    }
}
