//! Small dense row-major matrix type used by the attention blocks and by
//! the fast-transform algebra.
//!
//! The Winograd/FTA transform matrices (`A`, `B`, `G` in Eq. (1) of the
//! paper) and the per-window `Q/K/V` projections of the Swin attention
//! module are all small dense matrices; [`Mat`] gives them an explicit type
//! with checked multiplication rather than ad-hoc nested `Vec`s.

use crate::TensorError;
use std::fmt;

/// Dense row-major `rows × cols` matrix of `f32`.
///
/// # Example
///
/// ```
/// use nvc_tensor::mat::Mat;
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let i = Mat::identity(2);
/// assert_eq!(a.matmul(&i)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if rows have unequal lengths
    /// or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let r = rows.len();
        let c = rows
            .first()
            .map(|r| r.len())
            .ok_or_else(|| TensorError::incompatible("matrix must have at least one row"))?;
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(TensorError::incompatible("ragged rows"));
            }
            data.extend_from_slice(row);
        }
        Ok(Mat {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read-only flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of range for {self}"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of range for {self}"
        );
        &mut self.data[r * self.cols + c]
    }

    /// Matrix product `self * rhs`.
    ///
    /// Implemented by transposing `rhs` once and dispatching to the
    /// cache-blocked [`Mat::matmul_transposed`] inner kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat, TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::incompatible(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        self.matmul_transposed(&rhs.transpose())
    }

    /// Matrix product `self * rhs_tᵀ` where `rhs_t` is already transposed
    /// (`n × k` for a `k × n` logical right-hand side).
    ///
    /// This is the hot inner kernel feeding the Swin attention
    /// projections: both operands are traversed row-major, every dot
    /// product runs over two contiguous slices, and output columns are
    /// visited in cache-sized blocks so the active `rhs_t` rows stay in
    /// L1 across the `i` loop.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the inner dimensions
    /// (`self.cols` vs `rhs_t.cols`) differ.
    pub fn matmul_transposed(&self, rhs_t: &Mat) -> Result<Mat, TensorError> {
        if self.cols != rhs_t.cols {
            return Err(TensorError::incompatible(format!(
                "matmul_transposed {}x{} * ({}x{})^T",
                self.rows, self.cols, rhs_t.rows, rhs_t.cols
            )));
        }
        let (m, n, k) = (self.rows, rhs_t.rows, self.cols);
        let mut out = Mat::zeros(m, n);
        // Column-block size: 32 rows of rhs_t at k ≤ 128 stay within L1.
        const JB: usize = 32;
        let mut jb = 0;
        while jb < n {
            let jend = (jb + JB).min(n);
            for i in 0..m {
                let a_row = &self.data[i * k..][..k];
                let out_block = &mut out.data[i * n + jb..i * n + jend];
                for (o, j) in out_block.iter_mut().zip(jb..jend) {
                    *o = dot(a_row, &rhs_t.data[j * k..][..k]);
                }
            }
            jb = jend;
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat, TensorError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(TensorError::incompatible("hadamard shape mismatch"));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Softmax applied independently to each row (used by attention).
    pub fn softmax_rows(&self) -> Mat {
        let mut out = self.clone();
        softmax_rows_inplace(&mut out.data, self.cols);
        out
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Mat) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0_f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

/// Row-wise softmax over a row-major buffer of `cols`-wide rows, in
/// place. Each row is max-shifted for stability; a row whose shifted
/// exponentials sum to zero (possible only for `-inf`/NaN inputs) is
/// left unnormalized.
pub fn softmax_rows_inplace(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Four-lane unrolled dot product of two equal-length slices. The fixed
/// lane structure gives a deterministic summation order independent of
/// the caller's blocking.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0_f32; 4];
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let rem_a = chunks_a.remainder();
    let rem_b = chunks_b.remainder();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        lanes[0] += ca[0] * cb[0];
        lanes[1] += ca[1] * cb[1];
        lanes[2] += ca[2] * cb[2];
        lanes[3] += ca[3] * cb[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (&x, &y) in rem_a.iter().zip(rem_b) {
        acc += x * y;
    }
    acc
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Mat::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = Mat::from_rows(&[&[0.0, 1.0, 2.0], &[10.0, 10.0, 10.0]]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.at(0, 2) > s.at(0, 0));
    }

    #[test]
    fn from_rows_validates() {
        assert!(Mat::from_rows(&[]).is_err());
        let ragged: [&[f32]; 2] = [&[1.0], &[1.0, 2.0]];
        assert!(Mat::from_rows(&ragged).is_err());
        assert!(Mat::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn matmul_transposed_matches_matmul() {
        // Odd sizes exercise the dot-product remainder lanes and the
        // column blocking together.
        let mut a = Mat::zeros(7, 13);
        let mut b = Mat::zeros(13, 37);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 7919) % 23) as f32 * 0.25 - 2.0;
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 104_729) % 19) as f32 * 0.5 - 4.0;
        }
        let via_t = a.matmul_transposed(&b.transpose()).unwrap();
        assert_eq!(a.matmul(&b).unwrap(), via_t);
        assert_eq!(via_t.rows(), 7);
        assert_eq!(via_t.cols(), 37);
        assert!(a.matmul_transposed(&Mat::zeros(4, 5)).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[&[1.5, -2.0], &[0.25, 4.0]]).unwrap();
        assert_eq!(Mat::identity(2).matmul(&a).unwrap(), a);
        assert_eq!(a.matmul(&Mat::identity(2)).unwrap(), a);
    }
}
