//! Property-based tests for the tensor substrate.
//!
//! The key invariant here is the adjoint relationship between convolution
//! and transposed convolution — the mathematical fact the FTA fast
//! deconvolution algorithm in `nvc-fastalg` relies on.

use nvc_tensor::ops::{Conv2d, DeConv2d, MaxPool2d};
use nvc_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_tensor(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0_f32..4.0, c * h * w)
        .prop_map(move |data| Tensor::from_vec(Shape::new(1, c, h, w), data).unwrap())
}

fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// <Conv(x), y> == <x, ConvT(y)> for stride-1 3x3 convolution.
    #[test]
    fn conv_deconv_are_adjoint_stride1(
        x in small_tensor(2, 6, 6),
        y in small_tensor(3, 6, 6),
        seed in 0u64..1000,
    ) {
        let conv = Conv2d::randn(3, 2, 3, 1, 1, seed).unwrap();
        // Build the adjoint deconv: swap channel roles, same kernels.
        let deconv = DeConv2d::from_fn(2, 3, 3, 1, 1, |ci, co, kh, kw| {
            conv.kernel_slice(ci, co)[kh * 3 + kw]
        }).unwrap();
        let cx = conv.forward(&x).unwrap();
        let dy = deconv.forward(&y).unwrap();
        let lhs = dot(&cx, &y);
        let rhs = dot(&x, &dy);
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}");
    }

    /// Same adjoint identity for the stride-2 4x4 configuration the paper's
    /// fast deconvolution targets.
    #[test]
    fn conv_deconv_are_adjoint_stride2(
        x in small_tensor(2, 8, 8),
        y in small_tensor(2, 4, 4),
        seed in 0u64..1000,
    ) {
        // Conv k=4 s=2 p=1 maps 8x8 -> 4x4; its adjoint maps 4x4 -> 8x8.
        let conv = Conv2d::randn(2, 2, 4, 2, 1, seed).unwrap();
        let deconv = DeConv2d::from_fn(2, 2, 4, 2, 1, |ci, co, kh, kw| {
            conv.kernel_slice(ci, co)[kh * 4 + kw]
        }).unwrap();
        let cx = conv.forward(&x).unwrap();
        let dy = deconv.forward(&y).unwrap();
        prop_assert_eq!(cx.shape().dims(), (1, 2, 4, 4));
        prop_assert_eq!(dy.shape().dims(), (1, 2, 8, 8));
        let lhs = dot(&cx, &y);
        let rhs = dot(&x, &dy);
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}");
    }

    /// Convolution is linear in its input (zero bias).
    #[test]
    fn conv_is_linear(
        x in small_tensor(2, 5, 5),
        y in small_tensor(2, 5, 5),
        a in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let conv = Conv2d::randn(3, 2, 3, 1, 1, seed).unwrap();
        let lhs = conv.forward(&x.scale(a).add(&y).unwrap()).unwrap();
        let rhs = conv.forward(&x).unwrap().scale(a)
            .add(&conv.forward(&y).unwrap()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-3);
    }

    /// Channel concat followed by slicing returns the original tensors.
    #[test]
    fn concat_slice_roundtrip(
        a in small_tensor(1, 4, 4),
        b in small_tensor(3, 4, 4),
        c in small_tensor(2, 4, 4),
    ) {
        let cat = Tensor::concat_channels(&[&a, &b, &c]).unwrap();
        prop_assert_eq!(cat.slice_channels(0, 1).unwrap(), a);
        prop_assert_eq!(cat.slice_channels(1, 3).unwrap(), b);
        prop_assert_eq!(cat.slice_channels(4, 2).unwrap(), c);
    }

    /// Bilinear sampling at integer coordinates equals direct indexing.
    #[test]
    fn bilinear_at_integers_is_exact(t in small_tensor(1, 5, 5)) {
        for h in 0..5usize {
            for w in 0..5usize {
                let s = t.sample_bilinear(0, 0, h as f32, w as f32);
                prop_assert!((s - t.at(0, 0, h, w)).abs() < 1e-6);
            }
        }
    }

    /// Max pooling returns the true maximum of each window.
    #[test]
    fn maxpool_matches_bruteforce(t in small_tensor(2, 6, 6)) {
        let pool = MaxPool2d::new(2).unwrap();
        let y = pool.forward(&t).unwrap();
        for c in 0..2usize {
            for oy in 0..3usize {
                for ox in 0..3usize {
                    let m = (0..2)
                        .flat_map(|dy| (0..2).map(move |dx| (dy, dx)))
                        .map(|(dy, dx)| t.at(0, c, oy * 2 + dy, ox * 2 + dx))
                        .fold(f32::NEG_INFINITY, f32::max);
                    prop_assert_eq!(y.at(0, c, oy, ox), m);
                }
            }
        }
    }

    /// MSE is zero iff tensors are equal, symmetric, and scales quadratically.
    #[test]
    fn mse_properties(t in small_tensor(1, 4, 4), off in 0.1f32..3.0) {
        prop_assert_eq!(t.mse(&t).unwrap(), 0.0);
        let shifted = t.map(|v| v + off);
        let fwd = t.mse(&shifted).unwrap();
        let bwd = shifted.mse(&t).unwrap();
        prop_assert!((fwd - bwd).abs() < 1e-9);
        prop_assert!((fwd - (off as f64).powi(2)).abs() < 1e-3);
    }
}
