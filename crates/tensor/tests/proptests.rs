//! Randomized-but-deterministic tests for the tensor substrate.
//!
//! The key invariant here is the adjoint relationship between convolution
//! and transposed convolution — the mathematical fact the FTA fast
//! deconvolution algorithm in `nvc-fastalg` relies on. Case generation is
//! driven by the in-tree [`SplitMix64`] PRNG, so no external test
//! dependencies are needed.

use nvc_tensor::init::SplitMix64;
use nvc_tensor::ops::{Conv2d, DeConv2d, MaxPool2d};
use nvc_tensor::{Shape, Tensor};

const CASES: usize = 48;

fn small_tensor(rng: &mut SplitMix64, c: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..c * h * w).map(|_| rng.next_f32() * 8.0 - 4.0).collect();
    Tensor::from_vec(Shape::new(1, c, h, w), data).unwrap()
}

fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

/// <Conv(x), y> == <x, ConvT(y)> for stride-1 3x3 convolution.
#[test]
fn conv_deconv_are_adjoint_stride1() {
    let mut rng = SplitMix64::new(0xADD_0001);
    for _ in 0..CASES {
        let x = small_tensor(&mut rng, 2, 6, 6);
        let y = small_tensor(&mut rng, 3, 6, 6);
        let seed = rng.next_u64() % 1000;
        let conv = Conv2d::randn(3, 2, 3, 1, 1, seed).unwrap();
        // Build the adjoint deconv: swap channel roles, same kernels.
        let deconv = DeConv2d::from_fn(2, 3, 3, 1, 1, |ci, co, kh, kw| {
            conv.kernel_slice(ci, co)[kh * 3 + kw]
        })
        .unwrap();
        let cx = conv.forward(&x).unwrap();
        let dy = deconv.forward(&y).unwrap();
        let lhs = dot(&cx, &y);
        let rhs = dot(&x, &dy);
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }
}

/// Same adjoint identity for the stride-2 4x4 configuration the paper's
/// fast deconvolution targets.
#[test]
fn conv_deconv_are_adjoint_stride2() {
    let mut rng = SplitMix64::new(0xADD_0002);
    for _ in 0..CASES {
        let x = small_tensor(&mut rng, 2, 8, 8);
        let y = small_tensor(&mut rng, 2, 4, 4);
        let seed = rng.next_u64() % 1000;
        // Conv k=4 s=2 p=1 maps 8x8 -> 4x4; its adjoint maps 4x4 -> 8x8.
        let conv = Conv2d::randn(2, 2, 4, 2, 1, seed).unwrap();
        let deconv = DeConv2d::from_fn(2, 2, 4, 2, 1, |ci, co, kh, kw| {
            conv.kernel_slice(ci, co)[kh * 4 + kw]
        })
        .unwrap();
        let cx = conv.forward(&x).unwrap();
        let dy = deconv.forward(&y).unwrap();
        assert_eq!(cx.shape().dims(), (1, 2, 4, 4));
        assert_eq!(dy.shape().dims(), (1, 2, 8, 8));
        let lhs = dot(&cx, &y);
        let rhs = dot(&x, &dy);
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }
}

/// Convolution is linear in its input (zero bias).
#[test]
fn conv_is_linear() {
    let mut rng = SplitMix64::new(0xADD_0003);
    for _ in 0..CASES {
        let x = small_tensor(&mut rng, 2, 5, 5);
        let y = small_tensor(&mut rng, 2, 5, 5);
        let a = rng.next_f32() * 4.0 - 2.0;
        let seed = rng.next_u64() % 1000;
        let conv = Conv2d::randn(3, 2, 3, 1, 1, seed).unwrap();
        let lhs = conv.forward(&x.scale(a).add(&y).unwrap()).unwrap();
        let rhs = conv
            .forward(&x)
            .unwrap()
            .scale(a)
            .add(&conv.forward(&y).unwrap())
            .unwrap();
        assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-3);
    }
}

/// Channel concat followed by slicing returns the original tensors.
#[test]
fn concat_slice_roundtrip() {
    let mut rng = SplitMix64::new(0xADD_0004);
    for _ in 0..CASES {
        let a = small_tensor(&mut rng, 1, 4, 4);
        let b = small_tensor(&mut rng, 3, 4, 4);
        let c = small_tensor(&mut rng, 2, 4, 4);
        let cat = Tensor::concat_channels(&[&a, &b, &c]).unwrap();
        assert_eq!(cat.slice_channels(0, 1).unwrap(), a);
        assert_eq!(cat.slice_channels(1, 3).unwrap(), b);
        assert_eq!(cat.slice_channels(4, 2).unwrap(), c);
    }
}

/// Bilinear sampling at integer coordinates equals direct indexing.
#[test]
fn bilinear_at_integers_is_exact() {
    let mut rng = SplitMix64::new(0xADD_0005);
    for _ in 0..CASES {
        let t = small_tensor(&mut rng, 1, 5, 5);
        for h in 0..5usize {
            for w in 0..5usize {
                let s = t.sample_bilinear(0, 0, h as f32, w as f32);
                assert!((s - t.at(0, 0, h, w)).abs() < 1e-6);
            }
        }
    }
}

/// Max pooling returns the true maximum of each window.
#[test]
fn maxpool_matches_bruteforce() {
    let mut rng = SplitMix64::new(0xADD_0006);
    for _ in 0..CASES {
        let t = small_tensor(&mut rng, 2, 6, 6);
        let pool = MaxPool2d::new(2).unwrap();
        let y = pool.forward(&t).unwrap();
        for c in 0..2usize {
            for oy in 0..3usize {
                for ox in 0..3usize {
                    let m = (0..2)
                        .flat_map(|dy| (0..2).map(move |dx| (dy, dx)))
                        .map(|(dy, dx)| t.at(0, c, oy * 2 + dy, ox * 2 + dx))
                        .fold(f32::NEG_INFINITY, f32::max);
                    assert_eq!(y.at(0, c, oy, ox), m);
                }
            }
        }
    }
}

/// MSE is zero iff tensors are equal, symmetric, and scales quadratically.
#[test]
fn mse_properties() {
    let mut rng = SplitMix64::new(0xADD_0007);
    for _ in 0..CASES {
        let t = small_tensor(&mut rng, 1, 4, 4);
        let off = 0.1 + rng.next_f32() * 2.9;
        assert_eq!(t.mse(&t).unwrap(), 0.0);
        let shifted = t.map(|v| v + off);
        let fwd = t.mse(&shifted).unwrap();
        let bwd = shifted.mse(&t).unwrap();
        assert!((fwd - bwd).abs() < 1e-9);
        assert!((fwd - (off as f64).powi(2)).abs() < 1e-3);
    }
}
