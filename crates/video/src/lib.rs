//! Frames, synthetic video sources and quality/rate metrics.
//!
//! The paper evaluates on UVG, HEVC Class B and MCL-JCV; those datasets are
//! not redistributable here, so [`synthetic`] provides procedural video
//! generators whose presets mimic each dataset's character (resolution
//! class, motion magnitude, texture complexity, noise). All rate–distortion
//! comparisons in this repository are *relative* between codecs run on the
//! same synthetic frames, which is exactly what BD-rate measures.
//!
//! Provided metrics:
//!
//! * [`metrics::psnr`] — peak signal-to-noise ratio (peak = 1.0),
//! * [`metrics::ms_ssim`] — multi-scale SSIM with the standard 5-scale
//!   weights of Wang et al. (reference [23] of the paper),
//! * [`bdrate::bd_rate`] — Bjøntegaard delta rate (the BDBR(%) of the
//!   paper's Table I) via cubic log-rate interpolation.
//!
//! # Example
//!
//! ```
//! use nvc_video::synthetic::{SceneConfig, Synthesizer};
//! use nvc_video::metrics::psnr;
//!
//! let cfg = SceneConfig::uvg_like(64, 36, 3);
//! let seq = Synthesizer::new(cfg).generate();
//! assert_eq!(seq.frames().len(), 3);
//! // Adjacent frames are similar but not identical.
//! let p = psnr(&seq.frames()[0], &seq.frames()[1]).unwrap();
//! assert!(p > 10.0 && p < 60.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bdrate;
pub mod codec;
mod frame;
pub mod metrics;
pub mod rate;
pub mod synthetic;

pub use codec::{
    decode_bitstream, encode_sequence, encode_sequence_with, DecoderSession, EncodedStream,
    EncoderSession, FrameType, StreamStats, VideoCodec,
};
pub use frame::{Frame, Sequence, VideoError};
pub use rate::{
    RateController, RateMode, RateOutcome, RateParam, RateRequest, SessionRateControl,
    TargetBppController,
};
