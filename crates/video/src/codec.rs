//! The workspace-wide streaming codec abstraction.
//!
//! Every codec in this repository — the learned CTVC-Net and the
//! classical hybrid baseline — speaks the same session protocol:
//!
//! * [`VideoCodec::start_encode`] opens an [`EncoderSession`]; each
//!   [`EncoderSession::push_frame`] consumes one frame and returns one
//!   length-delimited [`Packet`] (frame index, frame type, payload CRC).
//! * [`VideoCodec::start_decode`] opens a [`DecoderSession`]; each
//!   [`DecoderSession::push_packet`] consumes one packet's bytes and
//!   returns the reconstructed frame.
//!
//! The carried state (previous reconstruction, entropy-model context, GOP
//! position) lives in the session structs, so decoding proceeds
//! frame-at-a-time with constant memory — the shape the paper's NVCA
//! hardware decodes in, and the shape a live-traffic serving stack needs.
//! Whole-sequence `encode`/`decode` methods on the concrete codecs are
//! thin wrappers over these sessions (see [`encode_sequence`] /
//! [`decode_bitstream`]), so the two paths are bit-identical by
//! construction.

use crate::rate::{RateMode, RateParam};
use crate::{Frame, Sequence};
use nvc_entropy::container::{split_packets, Packet, Section};
use nvc_entropy::CodingError;
use std::error::Error;

/// Frame type of a coded frame, as carried in packet headers and
/// [`StreamStats::frame_types`].
pub use nvc_entropy::container::FrameKind as FrameType;

/// Summary statistics returned by [`EncoderSession::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of frames pushed.
    pub frames: usize,
    /// Coded payload bytes per frame (excluding packet/section framing),
    /// matching the accounting of the one-shot `encode` results.
    pub bytes_per_frame: Vec<usize>,
    /// Serialized bits per frame *including* packet framing
    /// (`Packet::encoded_len() × 8`) — the per-frame rate a transport or
    /// a rate controller actually observes. Invariant:
    /// `bits_per_frame.iter().sum::<u64>() == 8 * total_bytes as u64`, so
    /// [`StreamStats::bpp`] stays consistent with the per-frame view.
    pub bits_per_frame: Vec<u64>,
    /// Frame type of every coded frame, aligned with
    /// [`StreamStats::bits_per_frame`] — so rate-control consumers can
    /// see *which* frames (intra anchors vs predicted) absorbed a rate
    /// change.
    pub frame_types: Vec<FrameType>,
    /// Wire rate byte (`RatePoint` index / QP) each frame was coded at,
    /// aligned with [`StreamStats::bits_per_frame`]. Constant in
    /// [`RateMode::Fixed`] streams; in closed-loop modes this is the
    /// controller's per-frame decision trace.
    pub rate_per_frame: Vec<u8>,
    /// Total serialized stream size in bytes, including packet headers.
    pub total_bytes: usize,
}

impl StreamStats {
    /// Bits per pixel over `frames` frames of `pixels_per_frame` pixels.
    pub fn bpp(&self, pixels_per_frame: usize) -> f64 {
        if self.frames == 0 || pixels_per_frame == 0 {
            return 0.0;
        }
        self.total_bytes as f64 * 8.0 / (pixels_per_frame * self.frames) as f64
    }

    /// Per-frame bits per pixel from the recorded bit counts (empty when
    /// `pixels_per_frame` is 0). Averaging this vector reproduces
    /// [`StreamStats::bpp`] exactly.
    pub fn frame_bpp(&self, pixels_per_frame: usize) -> Vec<f64> {
        if pixels_per_frame == 0 {
            return Vec::new();
        }
        self.bits_per_frame
            .iter()
            .map(|&bits| bits as f64 / pixels_per_frame as f64)
            .collect()
    }
}

/// An in-progress encode: push frames, pull packets.
pub trait EncoderSession {
    /// Error type of the owning codec.
    type Error: Error;

    /// Rate-control parameter of the owning codec (`RatePoint` / QP).
    type Rate: RateParam;

    /// Encodes one frame and returns its packet. The first pushed frame
    /// fixes the stream's resolution and is coded intra; subsequent
    /// frames are predicted from the carried reconstruction state.
    ///
    /// # Errors
    ///
    /// Returns the codec's error on invalid frames (e.g. a resolution
    /// change mid-stream).
    fn push_frame(&mut self, frame: &Frame) -> Result<Packet, Self::Error>;

    /// Decoder-identical reconstruction of the most recently pushed
    /// frame (the encoder runs its loop closed).
    fn last_reconstruction(&self) -> Option<&Frame>;

    /// Number of frames pushed so far.
    fn frames_pushed(&self) -> usize;

    /// Forces the next pushed frame to restart the prediction chain
    /// with an intra frame (stream-join / error-recovery point, and the
    /// natural anchor for a rate switch). Returns whether the codec
    /// honors the request; the default implementation is a no-op for
    /// codecs without a prediction chain to restart.
    fn restart_gop(&mut self) -> bool {
        false
    }

    /// Switches the session into *joinable-stream* mode (or back out of
    /// it): when enabled, every intra packet carries the full stream
    /// header — not just frame 0 — so a decoder can join the stream at
    /// any intra boundary ([`DecoderSession::push_packet`] accepts a
    /// header-carrying intra as its first packet at any frame index).
    /// The broadcast relay publishes streams in this mode so late
    /// subscribers can start at the most recent intra segment. Off by
    /// default, keeping plain streams byte-identical to the legacy
    /// layout. Returns whether the codec honors the request; the
    /// default implementation refuses.
    fn set_join_headers(&mut self, enabled: bool) -> bool {
        let _ = enabled;
        false
    }

    /// Wire rate byte (`RatePoint` index / QP) the most recently pushed
    /// frame was coded at — `None` before the first frame. Mirrors
    /// [`DecoderSession::last_rate`]; the serving layer uses it to
    /// record truthful per-packet rate columns without parsing codec
    /// payloads.
    fn last_rate(&self) -> Option<u8> {
        None
    }

    /// Replaces the session's rate control from the next frame on — the
    /// in-process form of the wire's `'R'` retarget. Mid-GOP switches
    /// are legal: the chosen rate rides in each packet, so the decoder
    /// follows without an intra refresh.
    fn set_rate_mode(&mut self, mode: RateMode<Self::Rate>);

    /// Ends the stream and returns its statistics.
    ///
    /// # Errors
    ///
    /// Returns the codec's error if the stream cannot be finalized.
    fn finish(self) -> Result<StreamStats, Self::Error>;
}

/// An in-progress decode: push packets, pull frames.
pub trait DecoderSession {
    /// Error type of the owning codec.
    type Error: Error;

    /// Decodes exactly one packet (as produced by
    /// [`EncoderSession::push_frame`], serialized) and returns the
    /// reconstructed frame.
    ///
    /// Malformed input — truncated packets, CRC mismatches, out-of-order
    /// frame indices, payloads that fail entropy decoding — yields an
    /// `Err`; this method never panics on untrusted bytes.
    ///
    /// # Errors
    ///
    /// Returns the codec's error on any malformed or out-of-sequence
    /// packet.
    fn push_packet(&mut self, packet: &[u8]) -> Result<Frame, Self::Error>;

    /// Number of frames decoded so far.
    fn frames_decoded(&self) -> usize;

    /// Wire rate byte (`RatePoint` index / QP) governing the most
    /// recently decoded frame, once the stream header (or a per-frame
    /// rate update) has been seen. `None` before the first packet, and
    /// for decoders without an in-band rate.
    fn last_rate(&self) -> Option<u8> {
        None
    }
}

/// A video codec with streaming encode/decode sessions.
///
/// Implementors: `nvc_model::CtvcCodec` (learned, rate selected by a
/// `RatePoint`) and `nvc_baseline::HybridCodec` (classical, rate selected
/// by a QP). Code generic over this trait works identically with both —
/// see [`encode_sequence`] and [`decode_bitstream`].
pub trait VideoCodec {
    /// Codec error type. `From<CodingError>` lets generic stream-level
    /// framing errors surface through the codec's own error.
    type Error: Error + From<CodingError>;
    /// Rate-control parameter for an encode session, pluggable into the
    /// generic controllers through the [`RateParam`] ladder.
    type Rate: RateParam;
    /// Encoder session type, borrowing the codec.
    type Encoder<'a>: EncoderSession<Error = Self::Error, Rate = Self::Rate>
    where
        Self: 'a;
    /// Decoder session type, borrowing the codec.
    type Decoder<'a>: DecoderSession<Error = Self::Error>
    where
        Self: 'a;

    /// Human-readable codec name for reports.
    fn codec_name(&self) -> &str;

    /// Opens an encoder session under the given rate-control mode —
    /// [`RateMode::Fixed`] for the classic static rate (a plain rate
    /// converts via `Into`), [`RateMode::TargetBpp`] for the built-in
    /// closed loop, or an external controller.
    ///
    /// # Errors
    ///
    /// Returns the codec's error for invalid rate parameters.
    fn start_encode(&self, mode: RateMode<Self::Rate>) -> Result<Self::Encoder<'_>, Self::Error>;

    /// Opens a decoder session.
    fn start_decode(&self) -> Self::Decoder<'_>;
}

/// A packet's parsed section list, as produced by
/// `nvc_entropy::container::read_sections`.
pub type SectionList = [(Section, Vec<u8>)];

/// Splits a leading in-band rate switch ([`Section::Rate`], one byte)
/// off a packet's parsed section list — the shared decoder-side half of
/// the in-band rate protocol, so both codec families stay in lockstep.
/// Returns the wire rate byte (if a rate section led the packet) and
/// the remaining sections; the codec validates the byte against its own
/// rate domain.
///
/// # Errors
///
/// Returns a description if a rate section is present but malformed
/// (any payload length other than one byte).
pub fn take_rate_section(sections: &SectionList) -> Result<(Option<u8>, &SectionList), String> {
    match sections.split_first() {
        Some(((Section::Rate, payload), tail)) => match payload.as_slice() {
            [byte] => Ok((Some(*byte), tail)),
            other => Err(format!(
                "rate section must carry exactly one byte, got {}",
                other.len()
            )),
        },
        _ => Ok((None, sections)),
    }
}

/// Result of a generic whole-sequence encode over sessions.
#[derive(Debug, Clone)]
pub struct EncodedStream {
    /// One packet per frame, in order.
    pub packets: Vec<Packet>,
    /// Decoder-identical reconstruction.
    pub decoded: Sequence,
    /// Stream statistics.
    pub stats: StreamStats,
}

impl EncodedStream {
    /// Serializes all packets into one contiguous bitstream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.stats.total_bytes);
        for p in &self.packets {
            out.extend_from_slice(&p.to_bytes());
        }
        out
    }
}

/// Encodes a whole sequence at one fixed rate — the shared body of
/// every one-shot `encode` wrapper. Equivalent to
/// [`encode_sequence_with`] under [`RateMode::Fixed`].
///
/// # Errors
///
/// Propagates the codec's error from any frame.
pub fn encode_sequence<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    rate: C::Rate,
) -> Result<EncodedStream, C::Error> {
    encode_sequence_with(codec, seq, RateMode::Fixed(rate))
}

/// Encodes a whole sequence through a fresh [`EncoderSession`] under an
/// arbitrary rate-control mode.
///
/// # Errors
///
/// Propagates the codec's error from any frame.
pub fn encode_sequence_with<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    mode: RateMode<C::Rate>,
) -> Result<EncodedStream, C::Error> {
    let mut enc = codec.start_encode(mode)?;
    let mut packets = Vec::with_capacity(seq.frames().len());
    let mut decoded = Vec::with_capacity(seq.frames().len());
    for frame in seq.frames() {
        let packet = enc.push_frame(frame)?;
        decoded.push(
            enc.last_reconstruction()
                .expect("push_frame succeeded, reconstruction available")
                .clone(),
        );
        packets.push(packet);
    }
    let stats = enc.finish()?;
    let decoded = Sequence::new(codec.codec_name(), decoded, seq.fps())
        .map_err(|e| bad_stream::<C>(format!("reconstruction: {e}")))?;
    Ok(EncodedStream {
        packets,
        decoded,
        stats,
    })
}

/// Decodes a packetized bitstream through a fresh [`DecoderSession`] —
/// the shared body of every one-shot `decode` wrapper.
///
/// # Errors
///
/// Returns the codec's error on an empty, truncated or corrupted stream.
pub fn decode_bitstream<C: VideoCodec>(codec: &C, bitstream: &[u8]) -> Result<Sequence, C::Error> {
    let chunks = split_packets(bitstream)?;
    if chunks.is_empty() {
        return Err(bad_stream::<C>("empty bitstream".into()));
    }
    let mut dec = codec.start_decode();
    let mut frames = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        frames.push(dec.push_packet(chunk)?);
    }
    Sequence::new(format!("{}-decoded", codec.codec_name()), frames, 30.0)
        .map_err(|e| bad_stream::<C>(format!("decoded sequence: {e}")))
}

fn bad_stream<C: VideoCodec>(reason: String) -> C::Error {
    C::Error::from(CodingError::BadContainer { reason })
}

/// Round-trips `seq` through streaming encode + streaming decode and
/// checks the decode against the encoder's closed-loop reconstruction.
/// Returns the maximum absolute reconstruction mismatch (0.0 for a
/// bit-exact codec) together with the stream.
///
/// # Errors
///
/// Propagates codec errors from either direction.
pub fn stream_roundtrip<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    rate: C::Rate,
) -> Result<(EncodedStream, f64), C::Error> {
    stream_roundtrip_with(codec, seq, RateMode::Fixed(rate))
}

/// [`stream_roundtrip`] under an arbitrary rate-control mode.
///
/// # Errors
///
/// Propagates codec errors from either direction.
pub fn stream_roundtrip_with<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    mode: RateMode<C::Rate>,
) -> Result<(EncodedStream, f64), C::Error> {
    let coded = encode_sequence_with(codec, seq, mode)?;
    let mut dec = codec.start_decode();
    let mut worst = 0.0f64;
    for (packet, reference) in coded.packets.iter().zip(coded.decoded.frames()) {
        let frame = dec.push_packet(&packet.to_bytes())?;
        let drift = frame
            .tensor()
            .sub(reference.tensor())
            .map_err(|e| bad_stream::<C>(format!("mismatched frame: {e}")))?
            .max_abs() as f64;
        worst = worst.max(drift);
    }
    Ok((coded, worst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_stats_per_frame_bits_agree_with_bpp() {
        let stats = StreamStats {
            frames: 2,
            bytes_per_frame: vec![87, 13],
            bits_per_frame: vec![(87 + 13) * 8, (13 + 13) * 8],
            frame_types: vec![FrameType::Intra, FrameType::Predicted],
            rate_per_frame: vec![1, 1],
            total_bytes: 87 + 13 + 13 + 13,
        };
        assert_eq!(
            stats.bits_per_frame.iter().sum::<u64>(),
            8 * stats.total_bytes as u64
        );
        let per_frame = stats.frame_bpp(100);
        assert_eq!(per_frame.len(), 2);
        let mean = per_frame.iter().sum::<f64>() / stats.frames as f64;
        assert!((mean - stats.bpp(100)).abs() < 1e-12);
        assert!(stats.frame_bpp(0).is_empty());
        assert_eq!(stats.bpp(0), 0.0);
    }
}
