//! Video quality metrics: PSNR and multi-scale SSIM.

use crate::frame::{Frame, VideoError};

/// Peak signal-to-noise ratio between two frames in dB (peak = 1.0),
/// averaged over the three RGB channels.
///
/// Returns `f64::INFINITY` for identical frames.
///
/// # Errors
///
/// Returns [`VideoError`] if the frames differ in size.
pub fn psnr(a: &Frame, b: &Frame) -> Result<f64, VideoError> {
    let mse = a.tensor().mse(b.tensor())?;
    if mse == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / mse).log10())
}

/// Mean PSNR over a sequence of (reference, distorted) frame pairs.
///
/// # Errors
///
/// Returns [`VideoError`] on size mismatch or empty input.
pub fn psnr_sequence(pairs: &[(&Frame, &Frame)]) -> Result<f64, VideoError> {
    if pairs.is_empty() {
        return Err(VideoError::BadDimensions {
            reason: "no frame pairs".into(),
        });
    }
    let mut acc = 0.0;
    for (a, b) in pairs {
        acc += psnr(a, b)?;
    }
    Ok(acc / pairs.len() as f64)
}

/// 11-tap Gaussian window with σ = 1.5 (the standard SSIM window).
fn gaussian_window() -> [f64; 11] {
    let sigma = 1.5_f64;
    let mut w = [0.0; 11];
    let mut sum = 0.0;
    for (i, wi) in w.iter_mut().enumerate() {
        let d = i as f64 - 5.0;
        *wi = (-d * d / (2.0 * sigma * sigma)).exp();
        sum += *wi;
    }
    for wi in &mut w {
        *wi /= sum;
    }
    w
}

/// Grey-scale plane helper.
struct Plane {
    w: usize,
    h: usize,
    data: Vec<f64>,
}

impl Plane {
    fn from_frame(f: &Frame) -> Plane {
        let luma = f.luma();
        let (_, _, h, w) = luma.shape().dims();
        Plane {
            w,
            h,
            data: luma.as_slice().iter().map(|&v| v as f64).collect(),
        }
    }

    fn at(&self, y: isize, x: isize) -> f64 {
        // Clamp-to-edge padding.
        let y = y.clamp(0, self.h as isize - 1) as usize;
        let x = x.clamp(0, self.w as isize - 1) as usize;
        self.data[y * self.w + x]
    }

    /// Separable Gaussian filtering.
    fn blur(&self, win: &[f64; 11]) -> Plane {
        let mut tmp = vec![0.0; self.w * self.h];
        for y in 0..self.h {
            for x in 0..self.w {
                let mut acc = 0.0;
                for (i, &wi) in win.iter().enumerate() {
                    acc += wi * self.at(y as isize, x as isize + i as isize - 5);
                }
                tmp[y * self.w + x] = acc;
            }
        }
        let tmp_plane = Plane {
            w: self.w,
            h: self.h,
            data: tmp,
        };
        let mut out = vec![0.0; self.w * self.h];
        for y in 0..self.h {
            for x in 0..self.w {
                let mut acc = 0.0;
                for (i, &wi) in win.iter().enumerate() {
                    acc += wi * tmp_plane.at(y as isize + i as isize - 5, x as isize);
                }
                out[y * self.w + x] = acc;
            }
        }
        Plane {
            w: self.w,
            h: self.h,
            data: out,
        }
    }

    /// 2× downsampling by 2×2 averaging.
    fn half(&self) -> Plane {
        let w = (self.w / 2).max(1);
        let h = (self.h / 2).max(1);
        let mut data = vec![0.0; w * h];
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let sy = y * 2 + dy;
                        let sx = x * 2 + dx;
                        if sy < self.h && sx < self.w {
                            acc += self.data[sy * self.w + sx];
                            cnt += 1.0;
                        }
                    }
                }
                data[y * w + x] = acc / cnt;
            }
        }
        Plane { w, h, data }
    }

    fn zip(&self, other: &Plane, f: impl Fn(f64, f64) -> f64) -> Plane {
        Plane {
            w: self.w,
            h: self.h,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

const C1: f64 = 0.01 * 0.01; // (k1·L)², L = 1
const C2: f64 = 0.03 * 0.03; // (k2·L)²

/// Luminance, contrast and structure components at one scale, returned as
/// `(l, cs)` where `cs` is the contrast·structure product.
fn ssim_components(a: &Plane, b: &Plane) -> (f64, f64) {
    let win = gaussian_window();
    let mu_a = a.blur(&win);
    let mu_b = b.blur(&win);
    let aa = a.zip(a, |x, y| x * y).blur(&win);
    let bb = b.zip(b, |x, y| x * y).blur(&win);
    let ab = a.zip(b, |x, y| x * y).blur(&win);

    let mut l_acc = 0.0;
    let mut cs_acc = 0.0;
    let n = a.data.len() as f64;
    for i in 0..a.data.len() {
        let ma = mu_a.data[i];
        let mb = mu_b.data[i];
        let va = (aa.data[i] - ma * ma).max(0.0);
        let vb = (bb.data[i] - mb * mb).max(0.0);
        let cov = ab.data[i] - ma * mb;
        let l = (2.0 * ma * mb + C1) / (ma * ma + mb * mb + C1);
        let cs = (2.0 * cov + C2) / (va + vb + C2);
        l_acc += l;
        cs_acc += cs;
    }
    (l_acc / n, cs_acc / n)
}

/// Single-scale SSIM on luma.
///
/// # Errors
///
/// Returns [`VideoError`] if the frames differ in size.
pub fn ssim(a: &Frame, b: &Frame) -> Result<f64, VideoError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(VideoError::BadDimensions {
            reason: format!(
                "{}x{} vs {}x{}",
                a.width(),
                a.height(),
                b.width(),
                b.height()
            ),
        });
    }
    let pa = Plane::from_frame(a);
    let pb = Plane::from_frame(b);
    let (l, cs) = ssim_components(&pa, &pb);
    Ok(l * cs)
}

/// Standard 5-scale MS-SSIM weights (Wang et al. 2003).
const MS_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// Multi-scale SSIM on luma — the MS-SSIM of the paper's Table I / Fig. 8.
///
/// Uses as many of the standard 5 scales as the frame size allows (each
/// scale halves the resolution; a scale needs at least 11×11 pixels), with
/// weights renormalised accordingly.
///
/// # Errors
///
/// Returns [`VideoError`] if the frames differ in size or are smaller than
/// one window.
pub fn ms_ssim(a: &Frame, b: &Frame) -> Result<f64, VideoError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(VideoError::BadDimensions {
            reason: format!(
                "{}x{} vs {}x{}",
                a.width(),
                a.height(),
                b.width(),
                b.height()
            ),
        });
    }
    if a.width() < 11 || a.height() < 11 {
        return Err(VideoError::BadDimensions {
            reason: "frame smaller than SSIM window".into(),
        });
    }
    let mut pa = Plane::from_frame(a);
    let mut pb = Plane::from_frame(b);
    let mut scales = 0usize;
    let mut cs_vals = [0.0_f64; 5];
    let mut final_l = 1.0;
    for (s, slot) in cs_vals.iter_mut().enumerate() {
        let (l, cs) = ssim_components(&pa, &pb);
        *slot = cs;
        final_l = l;
        scales = s + 1;
        if s < 4 {
            let na = pa.half();
            let nb = pb.half();
            if na.w < 11 || na.h < 11 {
                break;
            }
            pa = na;
            pb = nb;
        }
    }
    // Renormalise weights over the scales actually used.
    let wsum: f64 = MS_WEIGHTS[..scales].iter().sum();
    let mut acc = 1.0_f64;
    for s in 0..scales {
        let w = MS_WEIGHTS[s] / wsum;
        let base = if s + 1 == scales {
            final_l * cs_vals[s]
        } else {
            cs_vals[s]
        };
        // Clamp: slightly negative structure values can appear on tiny
        // frames; MS-SSIM is defined on non-negative components.
        acc *= base.max(1e-6).powf(w);
    }
    Ok(acc)
}

/// Mean MS-SSIM over (reference, distorted) pairs.
///
/// # Errors
///
/// Returns [`VideoError`] on size mismatch or empty input.
pub fn ms_ssim_sequence(pairs: &[(&Frame, &Frame)]) -> Result<f64, VideoError> {
    if pairs.is_empty() {
        return Err(VideoError::BadDimensions {
            reason: "no frame pairs".into(),
        });
    }
    let mut acc = 0.0;
    for (a, b) in pairs {
        acc += ms_ssim(a, b)?;
    }
    Ok(acc / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SceneConfig, Synthesizer};
    use nvc_tensor::{Shape, Tensor};

    fn noisy(f: &Frame, sigma: f32, seed: u64) -> Frame {
        let mut g = nvc_tensor::init::Gaussian::new(seed);
        let src = f.tensor();
        let t = Tensor::from_fn(src.shape(), |n, c, h, w| {
            (src.at(n, c, h, w) + g.sample(0.0, sigma)).clamp(0.0, 1.0)
        });
        Frame::from_tensor(t).unwrap()
    }

    #[test]
    fn psnr_of_identical_is_infinite() {
        let f = Frame::filled(16, 16, [0.3, 0.5, 0.7]).unwrap();
        assert!(psnr(&f, &f).unwrap().is_infinite());
    }

    #[test]
    fn psnr_known_value() {
        let a = Frame::filled(8, 8, [0.5; 3]).unwrap();
        let b = Frame::filled(8, 8, [0.6; 3]).unwrap();
        // MSE = 0.01, PSNR = 10·log10(1/0.01) = 20 dB (f32 rounding slack).
        assert!((psnr(&a, &b).unwrap() - 20.0).abs() < 1e-4);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 1)).generate();
        let f = &seq.frames()[0];
        let small = psnr(f, &noisy(f, 0.01, 1)).unwrap();
        let big = psnr(f, &noisy(f, 0.05, 2)).unwrap();
        assert!(small > big, "{small} vs {big}");
        assert!(small > 35.0 && small < 45.0, "σ=0.01 → ≈40 dB, got {small}");
    }

    #[test]
    fn ssim_bounds_and_identity() {
        let seq = Synthesizer::new(SceneConfig::hevc_b_like(64, 48, 1)).generate();
        let f = &seq.frames()[0];
        let s_self = ssim(f, f).unwrap();
        assert!((s_self - 1.0).abs() < 1e-9);
        let s = ssim(f, &noisy(f, 0.05, 3)).unwrap();
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn ms_ssim_orders_distortions() {
        let seq = Synthesizer::new(SceneConfig::uvg_like(96, 64, 1)).generate();
        let f = &seq.frames()[0];
        let s_self = ms_ssim(f, f).unwrap();
        assert!(s_self > 0.999, "{s_self}");
        let light = ms_ssim(f, &noisy(f, 0.01, 4)).unwrap();
        let heavy = ms_ssim(f, &noisy(f, 0.08, 5)).unwrap();
        assert!(light > heavy, "{light} vs {heavy}");
    }

    #[test]
    fn ms_ssim_distinguishes_equal_mse_distortions() {
        // PSNR cannot tell blur from noise at matched MSE; a structural
        // metric must. (SSIM penalises blur harder: the lost variance
        // collapses the contrast term.)
        // Sharp-textured content where blur visibly removes structure.
        let seq = Synthesizer::new(SceneConfig::mcl_jcv_like(96, 64, 1)).generate();
        let f = &seq.frames()[0];
        // Strong blur via 7x7 box.
        let t = f.tensor();
        let (_, _, h, w) = t.shape().dims();
        let blurred = Tensor::from_fn(Shape::new(1, 3, h, w), |_, c, y, x| {
            let mut acc = 0.0;
            for dy in -3..=3_isize {
                for dx in -3..=3_isize {
                    let yy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                    let xx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                    acc += t.at(0, c, yy, xx);
                }
            }
            acc / 49.0
        });
        let fb = Frame::from_tensor(blurred).unwrap();
        let blur_mse = f.tensor().mse(fb.tensor()).unwrap();
        let sigma = (blur_mse as f32).sqrt();
        let fn_ = noisy(f, sigma, 6); // matched-MSE noise
        let p_blur = psnr(f, &fb).unwrap();
        let p_noise = psnr(f, &fn_).unwrap();
        assert!(
            (p_blur - p_noise).abs() < 1.0,
            "MSE should match: {p_blur} vs {p_noise}"
        );
        let s_blur = ms_ssim(f, &fb).unwrap();
        let s_noise = ms_ssim(f, &fn_).unwrap();
        assert!(
            (s_blur - s_noise).abs() > 0.01,
            "MS-SSIM must separate blur from noise: {s_blur} vs {s_noise}"
        );
        assert!(
            s_blur < s_noise,
            "SSIM's contrast term penalises blur harder"
        );
    }

    #[test]
    fn size_mismatch_is_error() {
        let a = Frame::filled(16, 16, [0.5; 3]).unwrap();
        let b = Frame::filled(16, 12, [0.5; 3]).unwrap();
        assert!(psnr(&a, &b).is_err());
        assert!(ms_ssim(&a, &b).is_err());
        let tiny = Frame::filled(8, 8, [0.5; 3]).unwrap();
        assert!(ms_ssim(&tiny, &tiny).is_err());
        assert!(psnr_sequence(&[]).is_err());
        assert!(ms_ssim_sequence(&[]).is_err());
    }
}
