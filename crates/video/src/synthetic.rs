//! Procedural video generation.
//!
//! A scene is a smooth multi-octave value-noise background panning at a
//! configurable global velocity, plus a set of textured moving discs, plus
//! optional per-frame sensor noise. Every sample is a pure function of
//! `(x, y, t, seed)`, so motion is *true* sub-pixel motion (the texture
//! translates continuously rather than being re-rendered), which gives
//! motion-compensating codecs something real to estimate.
//!
//! Presets mimic the character of the paper's three test sets:
//!
//! * [`SceneConfig::uvg_like`] — clean, high-detail content with steady
//!   medium panning (UVG's nature/drone footage),
//! * [`SceneConfig::hevc_b_like`] — strong motion and several independent
//!   movers (HEVC Class B's sports/street scenes),
//! * [`SceneConfig::mcl_jcv_like`] — mixed content with sharper edges,
//!   mild noise and a mid-sequence discontinuity (MCL-JCV's mixture of
//!   animation and camera content).

use crate::frame::{Frame, Sequence};
use nvc_tensor::{Shape, Tensor};

/// Integer-lattice hash producing uniform floats in `[-1, 1]`.
///
/// SplitMix64-style mixing over `(x, y, seed)` — no stored lattice, so the
/// noise field has unbounded domain and translation is exact.
fn lattice(x: i64, y: i64, seed: u64) -> f32 {
    let mut z = (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ seed.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Top 24 bits -> [0, 1) -> [-1, 1).
    (z >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Band-limited 2-D value noise in `[-1, 1]` at continuous coordinates.
fn value_noise(x: f32, y: f32, seed: u64) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = smoothstep(x - x0);
    let ty = smoothstep(y - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice(xi, yi, seed);
    let v10 = lattice(xi + 1, yi, seed);
    let v01 = lattice(xi, yi + 1, seed);
    let v11 = lattice(xi + 1, yi + 1, seed);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Fractal (multi-octave) value noise in roughly `[-1, 1]`.
fn fractal_noise(x: f32, y: f32, octaves: u32, seed: u64) -> f32 {
    let mut sum = 0.0;
    let mut amp = 1.0;
    let mut norm = 0.0;
    let mut freq = 1.0;
    for o in 0..octaves {
        sum += amp * value_noise(x * freq, y * freq, seed.wrapping_add(o as u64 * 7919));
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    sum / norm
}

/// A textured moving disc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mover {
    /// Centre at `t = 0`, in pixels.
    pub center: (f32, f32),
    /// Velocity in pixels per frame.
    pub velocity: (f32, f32),
    /// Radius in pixels.
    pub radius: f32,
    /// Base colour.
    pub color: [f32; 3],
}

/// Full description of a synthetic scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of frames.
    pub frames: usize,
    /// Frames per second (metadata only).
    pub fps: f64,
    /// Global pan velocity in pixels per frame.
    pub pan: (f32, f32),
    /// Background texture scale in pixels per noise period.
    pub texture_period: f32,
    /// Number of noise octaves (detail level).
    pub octaves: u32,
    /// Texture contrast in `[0, 1]`.
    pub contrast: f32,
    /// Std-dev of white sensor noise added per frame (0 disables).
    pub noise_sigma: f32,
    /// Moving foreground objects.
    pub movers: Vec<Mover>,
    /// If set, the pan direction flips at this frame (scene discontinuity).
    pub cut_at: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl SceneConfig {
    /// UVG-like preset: clean high-detail content, steady medium pan.
    pub fn uvg_like(width: usize, height: usize, frames: usize) -> Self {
        SceneConfig {
            width,
            height,
            frames,
            fps: 120.0,
            pan: (1.3, 0.4),
            texture_period: 24.0,
            octaves: 4,
            contrast: 0.55,
            noise_sigma: 0.0,
            movers: vec![Mover {
                center: (width as f32 * 0.3, height as f32 * 0.55),
                velocity: (0.9, -0.3),
                radius: height as f32 * 0.18,
                color: [0.75, 0.68, 0.55],
            }],
            cut_at: None,
            seed: 0x0075_7647, // "uvg"
        }
    }

    /// HEVC Class B-like preset: strong motion, several independent movers.
    pub fn hevc_b_like(width: usize, height: usize, frames: usize) -> Self {
        SceneConfig {
            width,
            height,
            frames,
            fps: 60.0,
            pan: (2.6, 1.1),
            texture_period: 18.0,
            octaves: 5,
            contrast: 0.6,
            noise_sigma: 0.004,
            movers: vec![
                Mover {
                    center: (width as f32 * 0.25, height as f32 * 0.4),
                    velocity: (2.2, 0.7),
                    radius: height as f32 * 0.14,
                    color: [0.85, 0.3, 0.25],
                },
                Mover {
                    center: (width as f32 * 0.7, height as f32 * 0.62),
                    velocity: (-1.8, -0.5),
                    radius: height as f32 * 0.11,
                    color: [0.25, 0.45, 0.8],
                },
                Mover {
                    center: (width as f32 * 0.5, height as f32 * 0.25),
                    velocity: (0.4, 1.6),
                    radius: height as f32 * 0.08,
                    color: [0.9, 0.85, 0.3],
                },
            ],
            cut_at: None,
            seed: 0x0068_6576, // "hev"
        }
    }

    /// MCL-JCV-like preset: mixed content with sharp edges, mild noise and
    /// a mid-sequence discontinuity.
    pub fn mcl_jcv_like(width: usize, height: usize, frames: usize) -> Self {
        SceneConfig {
            width,
            height,
            frames,
            fps: 30.0,
            pan: (1.0, -1.4),
            texture_period: 12.0,
            octaves: 3,
            contrast: 0.75,
            noise_sigma: 0.008,
            movers: vec![
                Mover {
                    center: (width as f32 * 0.4, height as f32 * 0.5),
                    velocity: (1.5, 1.2),
                    radius: height as f32 * 0.2,
                    color: [0.2, 0.8, 0.5],
                },
                Mover {
                    center: (width as f32 * 0.75, height as f32 * 0.3),
                    velocity: (-0.9, 0.8),
                    radius: height as f32 * 0.1,
                    color: [0.95, 0.4, 0.7],
                },
            ],
            cut_at: Some(frames / 2),
            seed: 0x006D_636C, // "mcl"
        }
    }

    /// Name of the preset family this config most resembles (used for
    /// report labels).
    pub fn label(&self) -> &'static str {
        match self.seed {
            0x0075_7647 => "UVG-like",
            0x0068_6576 => "HEVC-B-like",
            0x006D_636C => "MCL-JCV-like",
            _ => "custom",
        }
    }
}

/// Renders a [`SceneConfig`] into a [`Sequence`].
#[derive(Debug, Clone)]
pub struct Synthesizer {
    cfg: SceneConfig,
}

impl Synthesizer {
    /// Creates a synthesizer for the given scene.
    pub fn new(cfg: SceneConfig) -> Self {
        Synthesizer { cfg }
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.cfg
    }

    fn render_frame(&self, t: usize) -> Frame {
        let cfg = &self.cfg;
        // Effective pan: accumulate, flipping direction after a cut.
        let (mut ox, mut oy) = (0.0_f32, 0.0_f32);
        for f in 0..t {
            let sign = match cfg.cut_at {
                Some(cut) if f >= cut => -1.0,
                _ => 1.0,
            };
            ox += cfg.pan.0 * sign;
            oy += cfg.pan.1 * sign;
        }
        let period = cfg.texture_period.max(2.0);
        let rgb = Tensor::from_fn(Shape::new(1, 3, cfg.height, cfg.width), |_, c, y, x| {
            let fx = (x as f32 + ox) / period;
            let fy = (y as f32 + oy) / period;
            // Channel-decorrelated texture around a mid-grey ramp.
            let base = 0.5
                + 0.15 * ((x as f32 / cfg.width as f32) - 0.5)
                + 0.1 * ((y as f32 / cfg.height as f32) - 0.5);
            let tex = fractal_noise(fx, fy, cfg.octaves, cfg.seed.wrapping_add(c as u64 * 131));
            let mut v = base + 0.5 * cfg.contrast * tex;
            // Foreground movers (later movers draw on top).
            for (mi, m) in cfg.movers.iter().enumerate() {
                let cx = m.center.0 + m.velocity.0 * t as f32;
                let cy = m.center.1 + m.velocity.1 * t as f32;
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let d = (dx * dx + dy * dy).sqrt();
                if d < m.radius + 1.0 {
                    // Anti-aliased edge; object-space texture moves with it.
                    let alpha = (m.radius + 1.0 - d).clamp(0.0, 1.0);
                    let otex = fractal_noise(
                        dx / (period * 0.5),
                        dy / (period * 0.5),
                        2,
                        cfg.seed.wrapping_add(977 + mi as u64 * 53 + c as u64),
                    );
                    let ov = (m.color[c] + 0.25 * cfg.contrast * otex).clamp(0.0, 1.0);
                    v = v * (1.0 - alpha) + ov * alpha;
                }
            }
            // Deterministic per-frame sensor noise.
            if cfg.noise_sigma > 0.0 {
                let n = lattice(
                    (x + cfg.width * t) as i64,
                    (y + cfg.height * c) as i64,
                    cfg.seed ^ 0xABCD,
                );
                v += cfg.noise_sigma * n;
            }
            v.clamp(0.0, 1.0)
        });
        Frame::from_tensor(rgb).expect("generated tensor is 1x3xHxW")
    }

    /// Renders the whole sequence.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero frames or zero spatial size.
    pub fn generate(&self) -> Sequence {
        assert!(
            self.cfg.frames > 0 && self.cfg.width > 0 && self.cfg.height > 0,
            "scene must have at least one frame and non-zero size"
        );
        let frames: Vec<Frame> = (0..self.cfg.frames).map(|t| self.render_frame(t)).collect();
        Sequence::new(self.cfg.label(), frames, self.cfg.fps).expect("frames agree by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::psnr;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for i in 0..200 {
            let x = i as f32 * 0.37 - 20.0;
            let y = i as f32 * 0.73 + 3.0;
            let a = value_noise(x, y, 42);
            let b = value_noise(x, y, 42);
            assert_eq!(a, b);
            assert!((-1.001..=1.001).contains(&a), "noise {a} out of range");
            let c = value_noise(x, y, 43);
            // Different seeds give different fields (at least somewhere).
            if a != c {
                return;
            }
        }
        panic!("seeds 42 and 43 produced identical noise everywhere sampled");
    }

    #[test]
    fn noise_is_continuous() {
        // Value noise interpolates its lattice: small coordinate steps
        // produce small value steps.
        let mut prev = value_noise(0.0, 0.5, 7);
        for i in 1..=100 {
            let v = value_noise(i as f32 * 0.01, 0.5, 7);
            assert!((v - prev).abs() < 0.2, "jump at {i}");
            prev = v;
        }
    }

    #[test]
    fn presets_generate_valid_sequences() {
        for cfg in [
            SceneConfig::uvg_like(48, 32, 4),
            SceneConfig::hevc_b_like(48, 32, 4),
            SceneConfig::mcl_jcv_like(48, 32, 4),
        ] {
            let label = cfg.label();
            let seq = Synthesizer::new(cfg).generate();
            assert_eq!(seq.frames().len(), 4, "{label}");
            for f in seq.frames() {
                for v in f.tensor().as_slice() {
                    assert!((0.0..=1.0).contains(v), "{label}: value {v}");
                }
            }
        }
    }

    #[test]
    fn motion_makes_frames_differ_smoothly() {
        let cfg = SceneConfig::uvg_like(64, 36, 3);
        let seq = Synthesizer::new(cfg).generate();
        let p01 = psnr(&seq.frames()[0], &seq.frames()[1]).unwrap();
        let p02 = psnr(&seq.frames()[0], &seq.frames()[2]).unwrap();
        // Frames differ (finite PSNR) and differences accumulate.
        assert!(p01.is_finite());
        assert!(
            p02 <= p01 + 0.5,
            "more motion must not increase similarity: {p02} vs {p01}"
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Synthesizer::new(SceneConfig::hevc_b_like(32, 24, 2)).generate();
        let b = Synthesizer::new(SceneConfig::hevc_b_like(32, 24, 2)).generate();
        assert_eq!(a.frames()[1], b.frames()[1]);
    }

    #[test]
    fn cut_reverses_pan() {
        let mut cfg = SceneConfig::mcl_jcv_like(48, 32, 6);
        cfg.movers.clear();
        cfg.noise_sigma = 0.0;
        let seq = Synthesizer::new(cfg).generate();
        // Pan accumulates then reverses: frame 0 and the final frame are
        // closer than frame 0 and the middle frame.
        let mid = psnr(&seq.frames()[0], &seq.frames()[3]).unwrap();
        let end = psnr(&seq.frames()[0], &seq.frames()[5]).unwrap();
        assert!(
            end > mid,
            "after the cut the scene should pan back: {end} vs {mid}"
        );
    }
}
