//! Bjøntegaard delta metrics — the BDBR(%) of the paper's Table I.
//!
//! Given two rate–distortion curves (rate in bits per pixel, distortion in
//! dB PSNR or MS-SSIM), [`bd_rate`] fits a cubic polynomial to
//! `log(rate)` as a function of distortion for each curve, integrates both
//! over the overlapping distortion interval, and reports the average rate
//! difference in percent. Negative values mean the test codec saves rate
//! at equal quality.

use crate::frame::VideoError;

/// One rate–distortion sample: `(rate, distortion)`. Rate must be
/// positive; distortion is typically PSNR in dB or `-10·log10(1−MS-SSIM)`.
pub type RdPoint = (f64, f64);

/// Least-squares polynomial fit of degree `deg` for `y(x)`; returns
/// coefficients `c[0] + c[1]·x + …`.
fn polyfit(xs: &[f64], ys: &[f64], deg: usize) -> Vec<f64> {
    let n = deg + 1;
    // Normal equations: (VᵀV) c = Vᵀ y, V Vandermonde.
    let mut ata = vec![vec![0.0_f64; n]; n];
    let mut aty = vec![0.0_f64; n];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0_f64; n];
        for i in 1..n {
            powers[i] = powers[i - 1] * x;
        }
        for i in 0..n {
            aty[i] += powers[i] * y;
            for j in 0..n {
                ata[i][j] += powers[i] * powers[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut m = ata;
    let mut b = aty;
    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if m[row][col].abs() > m[pivot][col].abs() {
                pivot = row;
            }
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        let diag = m[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular: degenerate fit, coefficient stays 0
        }
        let pivot_row = m[col].clone();
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = m[row][col] / diag;
            for (mk, pk) in m[row].iter_mut().zip(&pivot_row) {
                *mk -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    (0..n)
        .map(|i| {
            if m[i][i].abs() < 1e-12 {
                0.0
            } else {
                b[i] / m[i][i]
            }
        })
        .collect()
}

/// Definite integral of the polynomial with coefficients `c` over
/// `[lo, hi]`.
fn polyint(c: &[f64], lo: f64, hi: f64) -> f64 {
    let eval_antideriv = |x: f64| -> f64 {
        c.iter()
            .enumerate()
            .map(|(i, &ci)| ci * x.powi(i as i32 + 1) / (i as f64 + 1.0))
            .sum()
    };
    eval_antideriv(hi) - eval_antideriv(lo)
}

fn validate(curve: &[RdPoint]) -> Result<(), VideoError> {
    if curve.len() < 3 {
        return Err(VideoError::BadDimensions {
            reason: format!("need >= 3 RD points, got {}", curve.len()),
        });
    }
    for &(r, d) in curve {
        if !(r.is_finite() && r > 0.0 && d.is_finite()) {
            return Err(VideoError::BadDimensions {
                reason: format!("invalid RD point ({r}, {d})"),
            });
        }
    }
    Ok(())
}

/// Bjøntegaard delta rate of `test` against `anchor`, in percent.
///
/// Negative values mean `test` needs less rate than `anchor` at the same
/// distortion (i.e. `test` is better).
///
/// # Errors
///
/// Returns [`VideoError::BadDimensions`] if either curve has fewer than 3
/// points, non-positive rates, or the distortion ranges do not overlap.
pub fn bd_rate(anchor: &[RdPoint], test: &[RdPoint]) -> Result<f64, VideoError> {
    validate(anchor)?;
    validate(test)?;
    let log_anchor: Vec<(f64, f64)> = anchor.iter().map(|&(r, d)| (d, r.ln())).collect();
    let log_test: Vec<(f64, f64)> = test.iter().map(|&(r, d)| (d, r.ln())).collect();

    let lo = log_anchor
        .iter()
        .chain(&log_test)
        .map(|&(d, _)| d)
        .fold(f64::NEG_INFINITY, f64::max)
        .min(
            log_anchor
                .iter()
                .map(|&(d, _)| d)
                .fold(f64::INFINITY, f64::min)
                .max(
                    log_test
                        .iter()
                        .map(|&(d, _)| d)
                        .fold(f64::INFINITY, f64::min),
                ),
        );
    let d_min = log_anchor
        .iter()
        .map(|&(d, _)| d)
        .fold(f64::INFINITY, f64::min)
        .max(
            log_test
                .iter()
                .map(|&(d, _)| d)
                .fold(f64::INFINITY, f64::min),
        );
    let d_max = log_anchor
        .iter()
        .map(|&(d, _)| d)
        .fold(f64::NEG_INFINITY, f64::max)
        .min(
            log_test
                .iter()
                .map(|&(d, _)| d)
                .fold(f64::NEG_INFINITY, f64::max),
        );
    let _ = lo;
    if d_max - d_min < 1e-9 {
        return Err(VideoError::BadDimensions {
            reason: format!("distortion ranges do not overlap: [{d_min}, {d_max}]"),
        });
    }

    let deg = 3.min(anchor.len() - 1).min(test.len() - 1);
    let (dx_a, ry_a): (Vec<f64>, Vec<f64>) = log_anchor.iter().copied().unzip();
    let (dx_t, ry_t): (Vec<f64>, Vec<f64>) = log_test.iter().copied().unzip();
    let ca = polyfit(&dx_a, &ry_a, deg);
    let ct = polyfit(&dx_t, &ry_t, deg);
    let int_a = polyint(&ca, d_min, d_max);
    let int_t = polyint(&ct, d_min, d_max);
    let avg_diff = (int_t - int_a) / (d_max - d_min);
    Ok((avg_diff.exp() - 1.0) * 100.0)
}

/// Bjøntegaard delta PSNR of `test` against `anchor`, in dB: the average
/// distortion gain at equal rate. Positive values mean `test` is better.
///
/// # Errors
///
/// Same conditions as [`bd_rate`], with rate ranges instead of distortion
/// ranges overlapping.
pub fn bd_psnr(anchor: &[RdPoint], test: &[RdPoint]) -> Result<f64, VideoError> {
    validate(anchor)?;
    validate(test)?;
    // Fit distortion as a function of log rate.
    let xa: Vec<f64> = anchor.iter().map(|&(r, _)| r.ln()).collect();
    let ya: Vec<f64> = anchor.iter().map(|&(_, d)| d).collect();
    let xt: Vec<f64> = test.iter().map(|&(r, _)| r.ln()).collect();
    let yt: Vec<f64> = test.iter().map(|&(_, d)| d).collect();
    let r_min = xa
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .max(xt.iter().copied().fold(f64::INFINITY, f64::min));
    let r_max = xa
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .min(xt.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    if r_max - r_min < 1e-9 {
        return Err(VideoError::BadDimensions {
            reason: "rate ranges do not overlap".into(),
        });
    }
    let deg = 3.min(anchor.len() - 1).min(test.len() - 1);
    let ca = polyfit(&xa, &ya, deg);
    let ct = polyfit(&xt, &yt, deg);
    Ok((polyint(&ct, r_min, r_max) - polyint(&ca, r_min, r_max)) / (r_max - r_min))
}

/// Converts an MS-SSIM value to the dB-like scale customarily used for
/// BD-rate computation on MS-SSIM curves: `−10·log10(1 − msssim)`.
pub fn ms_ssim_db(msssim: f64) -> f64 {
    -10.0 * (1.0 - msssim).max(1e-12).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)]) -> Vec<RdPoint> {
        points.to_vec()
    }

    #[test]
    fn identical_curves_give_zero() {
        let c = curve(&[(0.05, 32.0), (0.1, 35.0), (0.2, 38.0), (0.4, 41.0)]);
        let bd = bd_rate(&c, &c).unwrap();
        assert!(bd.abs() < 1e-9, "{bd}");
        let bp = bd_psnr(&c, &c).unwrap();
        assert!(bp.abs() < 1e-9);
    }

    #[test]
    fn uniform_rate_scaling_is_recovered() {
        let anchor = curve(&[(0.05, 32.0), (0.1, 35.0), (0.2, 38.0), (0.4, 41.0)]);
        // Test codec uses 20% less rate at every quality.
        let test: Vec<RdPoint> = anchor.iter().map(|&(r, d)| (r * 0.8, d)).collect();
        let bd = bd_rate(&anchor, &test).unwrap();
        assert!((bd + 20.0).abs() < 0.5, "expected ≈ -20%, got {bd}");
        // And the reverse comparison: +25%.
        let bd_rev = bd_rate(&test, &anchor).unwrap();
        assert!((bd_rev - 25.0).abs() < 0.7, "expected ≈ +25%, got {bd_rev}");
    }

    #[test]
    fn bd_psnr_detects_quality_offset() {
        let anchor = curve(&[(0.05, 32.0), (0.1, 35.0), (0.2, 38.0), (0.4, 41.0)]);
        let test: Vec<RdPoint> = anchor.iter().map(|&(r, d)| (r, d + 1.5)).collect();
        let bp = bd_psnr(&anchor, &test).unwrap();
        assert!((bp - 1.5).abs() < 0.01, "{bp}");
    }

    #[test]
    fn validation_errors() {
        let short = curve(&[(0.1, 30.0), (0.2, 33.0)]);
        let ok = curve(&[(0.05, 32.0), (0.1, 35.0), (0.2, 38.0)]);
        assert!(bd_rate(&short, &ok).is_err());
        let bad_rate = curve(&[(0.0, 30.0), (0.1, 33.0), (0.2, 36.0)]);
        assert!(bd_rate(&bad_rate, &ok).is_err());
        let disjoint = curve(&[(0.05, 10.0), (0.1, 12.0), (0.2, 14.0)]);
        assert!(bd_rate(&disjoint, &ok).is_err());
    }

    #[test]
    fn three_point_curves_use_quadratic_fit() {
        let anchor = curve(&[(0.1, 33.0), (0.2, 36.0), (0.4, 39.0)]);
        let test: Vec<RdPoint> = anchor.iter().map(|&(r, d)| (r * 0.9, d)).collect();
        let bd = bd_rate(&anchor, &test).unwrap();
        assert!((bd + 10.0).abs() < 0.5, "{bd}");
    }

    #[test]
    fn ms_ssim_db_is_monotone() {
        assert!(ms_ssim_db(0.99) > ms_ssim_db(0.95));
        assert!(ms_ssim_db(0.999) > ms_ssim_db(0.99));
        // 0.99 → 20 dB exactly.
        assert!((ms_ssim_db(0.99) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn polyfit_recovers_exact_polynomial() {
        // y = 2 - x + 0.5 x² on 6 points.
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - x + 0.5 * x * x).collect();
        let c = polyfit(&xs, &ys, 2);
        assert!((c[0] - 2.0).abs() < 1e-8);
        assert!((c[1] + 1.0).abs() < 1e-8);
        assert!((c[2] - 0.5).abs() < 1e-8);
    }
}
