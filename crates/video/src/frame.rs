use nvc_tensor::{Shape, Tensor, TensorError};
use std::error::Error;
use std::fmt;

/// Error type for frame and sequence operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VideoError {
    /// Frame dimensions are invalid or inconsistent.
    BadDimensions {
        /// Human-readable description.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::BadDimensions { reason } => write!(f, "bad dimensions: {reason}"),
            VideoError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for VideoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VideoError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for VideoError {
    fn from(e: TensorError) -> Self {
        VideoError::Tensor(e)
    }
}

/// A single RGB video frame: a `1 × 3 × h × w` tensor with values
/// nominally in `[0, 1]`.
///
/// # Example
///
/// ```
/// use nvc_video::Frame;
/// # fn main() -> Result<(), nvc_video::VideoError> {
/// let f = Frame::filled(32, 18, [0.5, 0.25, 0.75])?;
/// assert_eq!((f.width(), f.height()), (32, 18));
/// let y = f.luma();
/// assert_eq!(y.shape().dims(), (1, 1, 18, 32));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    rgb: Tensor,
}

impl Frame {
    /// Creates a frame from an RGB tensor.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BadDimensions`] unless the tensor is
    /// `1 × 3 × h × w` with non-zero spatial size.
    pub fn from_tensor(rgb: Tensor) -> Result<Self, VideoError> {
        let (n, c, h, w) = rgb.shape().dims();
        if n != 1 || c != 3 || h == 0 || w == 0 {
            return Err(VideoError::BadDimensions {
                reason: format!("expected 1x3xHxW, got {:?}", rgb.shape().dims()),
            });
        }
        Ok(Frame { rgb })
    }

    /// Creates a constant-colour frame.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BadDimensions`] if `width` or `height` is 0.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Result<Self, VideoError> {
        if width == 0 || height == 0 {
            return Err(VideoError::BadDimensions {
                reason: "zero spatial size".into(),
            });
        }
        let t = Tensor::from_fn(Shape::new(1, 3, height, width), |_, c, _, _| rgb[c]);
        Frame::from_tensor(t)
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.rgb.shape().w()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.rgb.shape().h()
    }

    /// The underlying `1 × 3 × h × w` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.rgb
    }

    /// Consumes the frame and returns its tensor.
    pub fn into_tensor(self) -> Tensor {
        self.rgb
    }

    /// BT.601 luma plane as a `1 × 1 × h × w` tensor.
    pub fn luma(&self) -> Tensor {
        let (_, _, h, w) = self.rgb.shape().dims();
        Tensor::from_fn(Shape::new(1, 1, h, w), |_, _, y, x| {
            0.299 * self.rgb.at(0, 0, y, x)
                + 0.587 * self.rgb.at(0, 1, y, x)
                + 0.114 * self.rgb.at(0, 2, y, x)
        })
    }

    /// Returns a copy with all samples clamped to `[0, 1]`.
    pub fn clamped(&self) -> Frame {
        Frame {
            rgb: self.rgb.map(|v| v.clamp(0.0, 1.0)),
        }
    }

    /// Number of pixels (`h · w`).
    pub fn pixels(&self) -> usize {
        self.width() * self.height()
    }
}

/// An ordered sequence of equally-sized frames with a frame rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    name: String,
    frames: Vec<Frame>,
    fps: f64,
}

impl Sequence {
    /// Creates a sequence.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BadDimensions`] if frames disagree in size,
    /// the list is empty, or `fps` is not positive.
    pub fn new(name: impl Into<String>, frames: Vec<Frame>, fps: f64) -> Result<Self, VideoError> {
        if frames.is_empty() {
            return Err(VideoError::BadDimensions {
                reason: "empty sequence".into(),
            });
        }
        if !(fps.is_finite() && fps > 0.0) {
            return Err(VideoError::BadDimensions {
                reason: format!("bad fps {fps}"),
            });
        }
        let (w, h) = (frames[0].width(), frames[0].height());
        for (i, f) in frames.iter().enumerate() {
            if f.width() != w || f.height() != h {
                return Err(VideoError::BadDimensions {
                    reason: format!(
                        "frame {i} is {}x{}, expected {w}x{h}",
                        f.width(),
                        f.height()
                    ),
                });
            }
        }
        Ok(Sequence {
            name: name.into(),
            frames,
            fps,
        })
    }

    /// Sequence name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the sequence carrying a different name (frames are moved,
    /// not cloned).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The frames, in display order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.frames[0].width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.frames[0].height()
    }

    /// Pixels per frame.
    pub fn pixels_per_frame(&self) -> usize {
        self.frames[0].pixels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_validation() {
        assert!(Frame::filled(0, 4, [0.0; 3]).is_err());
        let t = Tensor::zeros(Shape::new(1, 4, 4, 4));
        assert!(Frame::from_tensor(t).is_err());
        let t = Tensor::zeros(Shape::new(2, 3, 4, 4));
        assert!(Frame::from_tensor(t).is_err());
        assert!(Frame::filled(8, 8, [0.1, 0.2, 0.3]).is_ok());
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let f = Frame::filled(4, 4, [1.0, 1.0, 1.0]).unwrap();
        let y = f.luma();
        assert!((y.at(0, 0, 2, 2) - 1.0).abs() < 1e-5);
        let red = Frame::filled(4, 4, [1.0, 0.0, 0.0]).unwrap();
        assert!((red.luma().at(0, 0, 0, 0) - 0.299).abs() < 1e-5);
    }

    #[test]
    fn clamped_restricts_range() {
        let t = Tensor::from_fn(Shape::new(1, 3, 2, 2), |_, c, _, _| c as f32 * 2.0 - 1.5);
        let f = Frame::from_tensor(t).unwrap().clamped();
        for v in f.tensor().as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn sequence_validation() {
        let a = Frame::filled(8, 4, [0.0; 3]).unwrap();
        let b = Frame::filled(8, 4, [1.0; 3]).unwrap();
        let seq = Sequence::new("t", vec![a.clone(), b], 30.0).unwrap();
        assert_eq!(seq.frames().len(), 2);
        assert_eq!(seq.width(), 8);
        assert_eq!(seq.pixels_per_frame(), 32);
        let c = Frame::filled(4, 4, [0.5; 3]).unwrap();
        assert!(Sequence::new("bad", vec![a.clone(), c], 30.0).is_err());
        assert!(Sequence::new("bad", vec![], 30.0).is_err());
        assert!(Sequence::new("bad", vec![a], 0.0).is_err());
    }
}
