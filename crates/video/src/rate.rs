//! Pluggable rate control for encoder sessions.
//!
//! PR 4 put the per-frame rate signal on the wire
//! ([`StreamStats::bits_per_frame`](crate::StreamStats)); this module
//! closes the loop. Instead of a fixed `RatePoint`/QP for the whole
//! stream, [`VideoCodec::start_encode`](crate::VideoCodec::start_encode)
//! now takes a [`RateMode`]:
//!
//! * [`RateMode::Fixed`] — one rate for every frame; bitstreams are
//!   byte-identical to the pre-redesign fixed-rate API.
//! * [`RateMode::TargetBpp`] — closed-loop control toward a
//!   bits-per-pixel target: after every coded frame the session feeds
//!   the produced packet's bits into a [`TargetBppController`], which
//!   picks the next frame's rate from a buffer-occupancy model plus
//!   per-frame-type complexity estimates.
//! * [`RateMode::PerFrame`] / [`RateMode::Controller`] — external
//!   controllers: a closure or a full [`RateController`] implementation
//!   decides each frame's rate from the feedback stream.
//!
//! The codec-specific rate parameter (`RatePoint` for the learned codec,
//! QP for the hybrid baseline) plugs in through the [`RateParam`] ladder
//! trait, so one controller implementation drives both codec families —
//! and the serving layer can express the same modes on the wire.

use std::fmt;

/// A codec-specific rate parameter living on a discrete bitrate ladder.
///
/// Two coordinate systems coexist:
///
/// * the **wire byte** ([`RateParam::to_wire`]) — the codec's native
///   representation (`RatePoint` index, QP value) as carried in packet
///   headers, handshakes and [`StreamStats::rate_per_frame`]
///   (crate::StreamStats::rate_per_frame);
/// * the **ladder position** ([`RateParam::position`]) — a monotone
///   axis where position 0 is the *lowest* bitrate, which is what a
///   generic controller steps along (for QP the two run in opposite
///   directions).
pub trait RateParam: Copy + PartialEq + fmt::Debug + Send + 'static {
    /// The codec's native byte for this rate, as written to packet
    /// headers and handshakes.
    fn to_wire(self) -> u8;

    /// Parses (and validates) the native byte.
    ///
    /// # Errors
    ///
    /// Returns a description of the valid range for bytes outside it.
    fn from_wire(byte: u8) -> Result<Self, String>;

    /// Position on the bitrate ladder: 0 = lowest bitrate, increasing
    /// monotonically in expected bits.
    fn position(self) -> u32;

    /// Number of ladder positions (positions are `0..ladder_len()`).
    fn ladder_len() -> u32;

    /// The rate at a ladder position (clamped into the ladder).
    fn from_position(position: u32) -> Self;

    /// Rough multiplier on produced bits for one ladder step up —
    /// the prior a controller extrapolates with before it has observed
    /// a position.
    fn step_ratio() -> f64;

    /// Ladder steps *down* needed to scale produced bits by `ratio`
    /// (≤ 1), extrapolating with [`RateParam::step_ratio`] — the walk a
    /// budget governor takes when a session's fair share shrinks to
    /// `ratio` of its demand. A ratio ≥ 1 needs no steps; a
    /// non-positive ratio collapses to the bottom of the ladder.
    fn steps_for_ratio(ratio: f64) -> u32 {
        if ratio >= 1.0 {
            return 0;
        }
        let bottom = Self::ladder_len().saturating_sub(1);
        if ratio <= 0.0 {
            return bottom;
        }
        let per_step = Self::step_ratio().max(1.0 + f64::EPSILON).ln();
        // The 1e-9 slack keeps ratios landing exactly on a rung (0.5 on
        // a 6-steps-per-octave ladder, say) from paying an extra step
        // to floating-point noise in the logarithms.
        let steps = (-ratio.ln() / per_step - 1e-9).ceil();
        if steps >= f64::from(bottom) {
            bottom
        } else {
            steps as u32
        }
    }
}

/// QP ladder of the classical hybrid codec: a *higher* QP means a
/// *lower* bitrate (one QP step ≈ 12 % rate, the classic
/// 6-QP-per-octave rule). Every byte is a decodable QP — the quantizer
/// step extrapolates beyond the useful `0..=51` range — so the wire
/// accepts the full domain; the *controller's* ladder spans the useful
/// range, with coarser QPs all mapping to the bottom position.
impl RateParam for u8 {
    fn to_wire(self) -> u8 {
        self
    }

    fn from_wire(byte: u8) -> Result<Self, String> {
        Ok(byte)
    }

    fn position(self) -> u32 {
        51_u32.saturating_sub(u32::from(self.min(51)))
    }

    fn ladder_len() -> u32 {
        52
    }

    fn from_position(position: u32) -> Self {
        (51 - position.min(51)) as u8
    }

    fn step_ratio() -> f64 {
        2.0_f64.powf(1.0 / 6.0)
    }
}

/// What the session is about to code — the controller's input.
#[derive(Debug, Clone, Copy)]
pub struct RateRequest {
    /// Zero-based index of the upcoming frame.
    pub frame_index: u64,
    /// Whether the upcoming frame will be coded intra (GOP start or
    /// forced refresh).
    pub intra: bool,
    /// Pixels per frame of the stream.
    pub pixels: usize,
    /// Outcome of the previously coded frame, once one exists.
    pub prev: Option<RateOutcome>,
}

/// What a coded frame actually cost — the feedback signal.
#[derive(Debug, Clone, Copy)]
pub struct RateOutcome {
    /// Zero-based index of the coded frame.
    pub frame_index: u64,
    /// Whether the frame was coded intra.
    pub intra: bool,
    /// Pixels per frame of the stream.
    pub pixels: usize,
    /// Serialized bits the frame produced (packet framing included) —
    /// the same accounting as `StreamStats::bits_per_frame`.
    pub bits: u64,
    /// Wire byte of the rate the frame was coded at.
    pub wire_rate: u8,
}

/// A closed-loop rate controller: picks the rate for every upcoming
/// frame and observes what each coded frame actually cost.
///
/// Implementations must be deterministic in their observation history —
/// encoder sessions replay bit-exactly only if the controller does.
pub trait RateController<R: RateParam>: Send {
    /// Rate for the frame described by `request`.
    fn pick(&mut self, request: &RateRequest) -> R;

    /// Feedback after the frame was coded and packetized.
    fn observe(&mut self, outcome: &RateOutcome);
}

/// Rate-control mode of an encoder session — the argument of
/// [`VideoCodec::start_encode`](crate::VideoCodec::start_encode).
pub enum RateMode<R: RateParam> {
    /// Every frame coded at one fixed rate (the pre-redesign behavior;
    /// bitstreams are byte-identical to it).
    Fixed(R),
    /// Closed-loop control toward `bpp` bits per pixel, smoothing over
    /// roughly `window` frames (see [`TargetBppController`]).
    TargetBpp {
        /// Target bits per pixel (serialized stream bits over pixels).
        bpp: f64,
        /// Smoothing window in frames (0 = default).
        window: usize,
    },
    /// An external per-frame callback: called before each frame with
    /// the upcoming frame's [`RateRequest`] (including the previous
    /// frame's [`RateOutcome`]).
    PerFrame(Box<dyn FnMut(&RateRequest) -> R + Send>),
    /// A full external [`RateController`].
    Controller(Box<dyn RateController<R>>),
}

impl<R: RateParam> RateMode<R> {
    /// Convenience constructor wrapping a closure into
    /// [`RateMode::PerFrame`].
    pub fn per_frame(f: impl FnMut(&RateRequest) -> R + Send + 'static) -> Self {
        RateMode::PerFrame(Box::new(f))
    }

    /// Short label for reports and `Debug` output.
    pub fn label(&self) -> &'static str {
        match self {
            RateMode::Fixed(_) => "fixed",
            RateMode::TargetBpp { .. } => "target-bpp",
            RateMode::PerFrame(_) => "per-frame",
            RateMode::Controller(_) => "controller",
        }
    }
}

/// A plain rate is the fixed mode — keeps `start_encode(rate)` call
/// sites working unchanged.
impl<R: RateParam> From<R> for RateMode<R> {
    fn from(rate: R) -> Self {
        RateMode::Fixed(rate)
    }
}

impl<R: RateParam> fmt::Debug for RateMode<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateMode::Fixed(r) => write!(f, "RateMode::Fixed({r:?})"),
            RateMode::TargetBpp { bpp, window } => {
                write!(f, "RateMode::TargetBpp {{ bpp: {bpp}, window: {window} }}")
            }
            other => write!(f, "RateMode::{}", other.label()),
        }
    }
}

/// The built-in closed-loop controller behind [`RateMode::TargetBpp`].
///
/// A leaky-bucket **buffer-occupancy model** tracks cumulative produced
/// bits minus cumulative target bits; **per-frame-type complexity
/// estimates** (EWMA of observed bits per ladder position, one table
/// for intra and one for predicted frames, extrapolated between
/// positions with [`RateParam::step_ratio`]) predict what each candidate
/// rate would cost. Every frame the controller picks, within a bounded
/// step of the current position, the rate whose predicted cost drives
/// the buffer closest to empty. A discrete ladder cannot sit *on* an
/// arbitrary target, so steady state dithers between the two bracketing
/// positions — the windowed mean converges onto the target.
pub struct TargetBppController<R: RateParam> {
    target_bpp: f64,
    window: f64,
    /// Leaky bucket: coded bits minus allocated bits, clamped to
    /// ±window·target-bits-per-frame.
    fullness: f64,
    position: u32,
    /// `estimates[0]` = predicted frames, `estimates[1]` = intra, each
    /// indexed by ladder position.
    estimates: [Vec<Option<f64>>; 2],
    /// Frames observed so far.
    frames_seen: u64,
    /// Frame index of the most recent intra observation.
    last_intra: Option<u64>,
    /// EWMA of the intra cadence in frames (GOP length as observed on
    /// the stream); seeded from `window` until two intras have been
    /// seen.
    intra_interval: f64,
    _rate: std::marker::PhantomData<R>,
}

/// Default smoothing window in frames.
pub const DEFAULT_RATE_WINDOW: usize = 8;

/// Prior ratio of intra to predicted-frame bits, used until both tables
/// have observations.
const INTRA_COST_PRIOR: f64 = 4.0;

impl<R: RateParam> TargetBppController<R> {
    /// Creates a controller aiming at `bpp` bits per pixel, smoothing
    /// over `window` frames (0 = [`DEFAULT_RATE_WINDOW`]). Starts from
    /// the conservative quarter of the rate ladder: the first frame is
    /// an intra anchor costing several frames of budget, and an
    /// over-spent start is the one mistake a bounded buffer cannot
    /// always pay back (the P-frame floor limits the drain rate), while
    /// an under-spent start recovers within a few frames.
    pub fn new(bpp: f64, window: usize) -> Self {
        let len = R::ladder_len().max(1) as usize;
        let window = if window == 0 {
            DEFAULT_RATE_WINDOW
        } else {
            window
        };
        TargetBppController {
            target_bpp: bpp.max(f64::MIN_POSITIVE),
            window: window as f64,
            fullness: 0.0,
            position: R::ladder_len() / 4,
            estimates: [vec![None; len], vec![None; len]],
            frames_seen: 0,
            last_intra: None,
            intra_interval: window as f64,
            _rate: std::marker::PhantomData,
        }
    }

    /// The current buffer occupancy in bits (positive = over target).
    pub fn fullness_bits(&self) -> f64 {
        self.fullness
    }

    /// Largest per-frame ladder move: small ladders (the 4-point sweep)
    /// step one position at a time, long ladders (QP) may move faster.
    fn step_limit() -> u32 {
        (R::ladder_len() / 8).max(1)
    }

    /// Intra-to-predicted cost ratio at the current position, from the
    /// learned complexity tables (prior until both types are observed).
    fn cost_ratio(&self, target_bits: f64) -> f64 {
        let intra = self.nearest_scaled(&self.estimates[1], self.position);
        let inter = self.nearest_scaled(&self.estimates[0], self.position);
        match (intra, inter) {
            (Some(i), Some(p)) if p > 0.0 => (i / p).clamp(1.0, 64.0),
            (Some(i), None) if target_bits > 0.0 => (i / target_bits).clamp(1.0, 64.0),
            _ => INTRA_COST_PRIOR,
        }
    }

    /// Per-frame bit allocation by frame type (classical two-class
    /// allocation): intra anchors get `ρ` times a P frame's share, with
    /// the shares normalized by the stream's intra cadence (one intra
    /// per `intra_interval` frames) so the allocations sum to the
    /// overall budget *independent of `ρ`* — a wrong complexity ratio
    /// shifts bits between frame types, never off the total.
    fn allocation(&self, intra: bool, target_bits: f64) -> f64 {
        // When intras are overdue (a stream with rare or no refreshes),
        // the observed gap is a lower bound on the true cadence — stop
        // reserving budget for anchors that are not coming.
        let since = match self.last_intra {
            Some(last) => (self.frames_seen - last) as f64,
            None => self.frames_seen as f64,
        };
        let interval = self.intra_interval.max(since).max(1.0);
        let phi = (1.0 / interval).clamp(0.0, 1.0);
        let rho = self.cost_ratio(target_bits);
        let p_share = target_bits / (phi * rho + (1.0 - phi));
        if intra {
            rho * p_share
        } else {
            p_share
        }
    }

    fn nearest_scaled(&self, table: &[Option<f64>], pos: u32) -> Option<f64> {
        let ratio = R::step_ratio().max(1.0 + f64::EPSILON);
        let mut best: Option<(u32, f64)> = None;
        for (q, e) in table.iter().enumerate() {
            if let Some(bits) = e {
                let dist = (q as i64 - i64::from(pos)).unsigned_abs() as u32;
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, bits * ratio.powi(pos as i32 - q as i32)));
                }
            }
        }
        best.map(|(_, bits)| bits)
    }

    /// Predicted bits of the next frame at ladder position `pos`:
    /// nearest observation of the same frame type scaled by the ladder
    /// ratio, falling back to the other type's table (scaled by the
    /// intra-cost prior), falling back to a neutral ramp anchored at the
    /// current position.
    fn predict(&self, pos: u32, intra: bool, anchor_bits: f64) -> f64 {
        let (own, other) = if intra {
            (&self.estimates[1], &self.estimates[0])
        } else {
            (&self.estimates[0], &self.estimates[1])
        };
        if let Some(bits) = self.nearest_scaled(own, pos) {
            return bits;
        }
        if let Some(bits) = self.nearest_scaled(other, pos) {
            let factor = if intra {
                INTRA_COST_PRIOR
            } else {
                1.0 / INTRA_COST_PRIOR
            };
            return bits * factor;
        }
        // Nothing observed yet: a neutral ramp that keeps the argmin at
        // the current position.
        let ratio = R::step_ratio().max(1.0 + f64::EPSILON);
        anchor_bits * ratio.powi(pos as i32 - self.position as i32)
    }
}

impl<R: RateParam> RateController<R> for TargetBppController<R> {
    fn pick(&mut self, request: &RateRequest) -> R {
        let target_bits = self.target_bpp * request.pixels as f64;
        let alloc = self.allocation(request.intra, target_bits);
        // Pay the buffer deviation back over the smoothing window, not
        // all in the next frame — demanding a whole intra spike back
        // from one P frame just slams the ladder floor.
        let desired = alloc - self.fullness / self.window;
        let limit = Self::step_limit();
        let lo = self.position.saturating_sub(limit);
        let hi = (self.position + limit).min(R::ladder_len().saturating_sub(1));
        let mut best = (f64::INFINITY, self.position);
        for pos in lo..=hi {
            let miss = (self.predict(pos, request.intra, alloc) - desired).abs();
            // Strict `<` scanning upward prefers the lower-bitrate
            // candidate on ties — the conservative side of the bucket.
            if miss < best.0 {
                best = (miss, pos);
            }
        }
        self.position = best.1;
        R::from_position(self.position)
    }

    fn observe(&mut self, outcome: &RateOutcome) {
        let target_bits = self.target_bpp * outcome.pixels as f64;
        let alloc = self.allocation(outcome.intra, target_bits);
        let bits = outcome.bits as f64;
        // The first frame of each type is calibration: no estimate
        // existed when its rate was picked, so charging its allocation
        // miss to the bucket would tax later frames for a prediction
        // that was never possible.
        let calibration = self.estimates[usize::from(outcome.intra)]
            .iter()
            .all(Option::is_none);
        if let Ok(rate) = R::from_wire(outcome.wire_rate) {
            let pos = rate.position();
            // Content drift: scale the *other* positions of the
            // same-type table by the (clamped) innovation, so estimates
            // not visited lately track the scene instead of going stale
            // and pinning the controller. The visited slot is excluded
            // — it gets the real observation through its own EWMA below
            // (rescaling it too would collapse the EWMA into
            // last-sample tracking).
            let predicted = self.predict(pos, outcome.intra, alloc);
            let table = &mut self.estimates[usize::from(outcome.intra)];
            if predicted > 0.0 {
                let gain = (bits / predicted).clamp(0.5, 2.0);
                for (q, slot) in table.iter_mut().enumerate() {
                    if q != pos as usize {
                        if let Some(e) = slot {
                            *e *= gain;
                        }
                    }
                }
            }
            let slot = &mut table[pos as usize];
            // EWMA complexity estimate: quick to adapt, stable enough to
            // extrapolate from.
            *slot = Some(match *slot {
                Some(prev) => 0.5 * prev + 0.5 * bits,
                None => bits,
            });
        }
        if outcome.intra {
            if let Some(last) = self.last_intra {
                let interval = (self.frames_seen - last) as f64;
                self.intra_interval = 0.5 * self.intra_interval + 0.5 * interval.max(1.0);
            }
            self.last_intra = Some(self.frames_seen);
        }
        self.frames_seen += 1;
        // The bucket tracks deviation from the frame's *type allocation*
        // (which sums to the overall budget across the stream): a P
        // frame is not in debt for costing less than an intra anchor,
        // only for missing its own share.
        if !calibration {
            let cap = self.window * target_bits;
            self.fullness = (self.fullness + bits - alloc).clamp(-cap, cap);
        }
    }
}

/// The rate-control state an encoder session carries: dispatches
/// [`RateMode`] into per-frame decisions, threads feedback, and accepts
/// mid-stream retargets. Both codec families drive their sessions
/// through this one helper, so the closed loop behaves identically
/// across them.
pub struct SessionRateControl<R: RateParam> {
    inner: Inner<R>,
    prev: Option<RateOutcome>,
}

enum Inner<R: RateParam> {
    Fixed(R),
    PerFrame(Box<dyn FnMut(&RateRequest) -> R + Send>),
    Controller(Box<dyn RateController<R>>),
}

impl<R: RateParam> SessionRateControl<R> {
    /// Builds the session state from a mode.
    pub fn new(mode: RateMode<R>) -> Self {
        SessionRateControl {
            inner: Inner::from_mode(mode),
            prev: None,
        }
    }

    /// Whether every frame is coded at one fixed rate (the byte-stable
    /// legacy path).
    pub fn is_fixed(&self) -> bool {
        matches!(self.inner, Inner::Fixed(_))
    }

    /// Short mode label for reports.
    pub fn label(&self) -> &'static str {
        match self.inner {
            Inner::Fixed(_) => "fixed",
            Inner::PerFrame(_) => "per-frame",
            Inner::Controller(_) => "controller",
        }
    }

    /// Rate for the upcoming frame.
    pub fn pick(&mut self, frame_index: u64, intra: bool, pixels: usize) -> R {
        let request = RateRequest {
            frame_index,
            intra,
            pixels,
            prev: self.prev,
        };
        match &mut self.inner {
            Inner::Fixed(rate) => *rate,
            Inner::PerFrame(f) => f(&request),
            Inner::Controller(c) => c.pick(&request),
        }
    }

    /// Feedback after the frame's packet was built.
    pub fn observe(&mut self, outcome: RateOutcome) {
        if let Inner::Controller(c) = &mut self.inner {
            c.observe(&outcome);
        }
        self.prev = Some(outcome);
    }

    /// Replaces the mode from the next frame on (the wire's `'R'`
    /// retarget). The previous-frame feedback is preserved so an
    /// incoming per-frame callback still sees it.
    pub fn retarget(&mut self, mode: RateMode<R>) {
        self.inner = Inner::from_mode(mode);
    }
}

impl<R: RateParam> Inner<R> {
    fn from_mode(mode: RateMode<R>) -> Self {
        match mode {
            RateMode::Fixed(rate) => Inner::Fixed(rate),
            RateMode::TargetBpp { bpp, window } => {
                Inner::Controller(Box::new(TargetBppController::<R>::new(bpp, window)))
            }
            RateMode::PerFrame(f) => Inner::PerFrame(f),
            RateMode::Controller(c) => Inner::Controller(c),
        }
    }
}

impl<R: RateParam> fmt::Debug for SessionRateControl<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SessionRateControl({})", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_ladder_is_monotone_and_roundtrips() {
        assert_eq!(<u8 as RateParam>::ladder_len(), 52);
        assert_eq!(51u8.position(), 0, "worst QP = lowest bitrate");
        assert_eq!(0u8.position(), 51);
        for qp in 0..=51u8 {
            assert_eq!(u8::from_position(qp.position()), qp);
            assert_eq!(u8::from_wire(qp.to_wire()).unwrap(), qp);
        }
        // The full byte domain is wire-valid (qp_to_step extrapolates);
        // ultra-coarse QPs collapse onto the ladder floor.
        assert_eq!(u8::from_wire(58).unwrap(), 58);
        assert_eq!(58u8.position(), 0);
        assert!(<u8 as RateParam>::step_ratio() > 1.0);
    }

    #[test]
    fn fixed_mode_always_returns_the_rate() {
        let mut rc = SessionRateControl::new(RateMode::Fixed(24u8));
        assert!(rc.is_fixed());
        for i in 0..5 {
            assert_eq!(rc.pick(i, i == 0, 1024), 24);
            rc.observe(RateOutcome {
                frame_index: i,
                intra: i == 0,
                pixels: 1024,
                bits: 1_000_000, // wildly over target: fixed must not react
                wire_rate: 24,
            });
        }
    }

    #[test]
    fn per_frame_callback_sees_feedback() {
        let mut rc = SessionRateControl::new(RateMode::per_frame(|req: &RateRequest| {
            match req.prev {
                Some(prev) if prev.bits > 8_000 => 30u8, // coarser
                _ => 20u8,
            }
        }));
        assert!(!rc.is_fixed());
        assert_eq!(rc.pick(0, true, 1024), 20);
        rc.observe(RateOutcome {
            frame_index: 0,
            intra: true,
            pixels: 1024,
            bits: 10_000,
            wire_rate: 20,
        });
        assert_eq!(rc.pick(1, false, 1024), 30);
    }

    #[test]
    fn target_controller_steers_toward_the_target() {
        // A synthetic "codec" shaped like a real session: one intra
        // anchor (4× a P frame's bits), then P frames whose bits double
        // per 6 QP. The controller must dither so the steady-state mean
        // lands near the target.
        let pixels = 10_000usize;
        let target_bpp = 0.3;
        let mut ctl = TargetBppController::<u8>::new(target_bpp, 6);
        let bits_at = |qp: u8, intra: bool| -> u64 {
            // 0.1 bpp at QP 30, doubling every 6 QP down.
            let octaves = (30.0 - f64::from(qp)) / 6.0;
            let bpp = 0.1 * 2.0_f64.powf(octaves) * if intra { 4.0 } else { 1.0 };
            (bpp * pixels as f64) as u64
        };
        let mut tail_bits = 0u64;
        let (frames, warmup) = (64u64, 16u64);
        for i in 0..frames {
            let intra = i == 0;
            let qp = ctl.pick(&RateRequest {
                frame_index: i,
                intra,
                pixels,
                prev: None,
            });
            let bits = bits_at(qp, intra);
            if i >= warmup {
                tail_bits += bits;
            }
            ctl.observe(&RateOutcome {
                frame_index: i,
                intra,
                pixels,
                bits,
                wire_rate: qp,
            });
        }
        let mean_bpp = tail_bits as f64 / ((frames - warmup) as f64 * pixels as f64);
        let err = (mean_bpp - target_bpp).abs() / target_bpp;
        assert!(
            err < 0.10,
            "steady-state mean {mean_bpp:.4} bpp vs target {target_bpp} ({:.1} % off)",
            err * 100.0
        );
    }

    #[test]
    fn target_controller_clamps_bucket_and_survives_extremes() {
        let mut ctl = TargetBppController::<u8>::new(0.05, 4);
        // Bits stay monotone in QP but far above the target at every
        // ladder position: the controller must pin the ladder floor.
        let over_budget =
            |qp: u8| -> u64 { (50_000.0 * 2.0_f64.powf((51.0 - f64::from(qp)) / 6.0)) as u64 };
        for i in 0..16 {
            let qp = ctl.pick(&RateRequest {
                frame_index: i,
                intra: i == 0,
                pixels: 100,
                prev: None,
            });
            ctl.observe(&RateOutcome {
                frame_index: i,
                intra: i == 0,
                pixels: 100,
                bits: over_budget(qp),
                wire_rate: qp,
            });
        }
        // Saturated bucket drives the rate to the ladder floor…
        assert_eq!(ctl.position, 0);
        let cap = 4.0 * 0.05 * 100.0;
        assert!(ctl.fullness_bits() <= cap + 1e-9, "bucket must be clamped");
        // …and zero-bit feedback walks it back up.
        for i in 16..64 {
            let qp = ctl.pick(&RateRequest {
                frame_index: i,
                intra: false,
                pixels: 100,
                prev: None,
            });
            ctl.observe(&RateOutcome {
                frame_index: i,
                intra: false,
                pixels: 100,
                bits: 0,
                wire_rate: qp,
            });
        }
        assert!(ctl.position > 0, "empty bucket must raise the rate");
    }
}
