//! The subscriber-ring publish/evict/close protocol
//! (`crates/serve/src/broadcast.rs`) as a state machine: one publisher
//! fans a packet sequence out to per-subscriber bounded rings; a ring
//! that overflows is evicted (queue cleared, sticky terminal flag) so a
//! slow subscriber can never block the publisher; close lets
//! subscribers drain what is queued before they observe the terminal
//! state.
//!
//! Threads: the publisher and two subscribers — one on a ring small
//! enough to overflow, one on a ring that always keeps up. Checked over
//! every interleaving:
//!
//! * **Gapless in-order prefix** — each subscriber's deliveries are
//!   exactly `1..=k` for some `k`: eviction may truncate, never skip.
//! * **No publish-after-evict delivery** — an evicted ring is dead;
//!   the [`RingModel::publish_after_evict`] variant keeps pushing into
//!   it and is caught as a gap.
//! * **Eviction clears** — an evicted ring's queue is empty.
//! * **Completeness** — the keeping-up ring always delivers the full
//!   sequence; an unevicted slow ring does too (drain-before-close).
//! * **The publisher never blocks** — structurally: its thread has no
//!   waiting state.

use crate::explore::Model;

const PUBLISHER: usize = 0;
const N_PACKETS: u8 = 4;
/// Ring capacities per subscriber: `sub-1` can overflow, `sub-2` never.
const CAPS: [usize; 2] = [2, 4];

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Ring {
    q: Vec<u8>,
    evicted: bool,
    closed: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RingModel {
    buggy: bool,
    rings: [Ring; 2],
    delivered: [Vec<u8>; 2],
    /// Publisher pc: `0..N_PACKETS` publishes packet `pc + 1`, then one
    /// close step.
    ppc: u8,
    sub_done: [bool; 2],
}

impl RingModel {
    /// The in-tree protocol.
    pub fn fixed() -> Self {
        Self::new(false)
    }

    /// Known-bad variant: the publisher ignores the evicted flag and
    /// keeps pushing, so a subscriber drains packets published after
    /// its eviction — a gap in the delivered sequence.
    pub fn publish_after_evict() -> Self {
        Self::new(true)
    }

    fn new(buggy: bool) -> Self {
        let ring = Ring {
            q: Vec::new(),
            evicted: false,
            closed: false,
        };
        RingModel {
            buggy,
            rings: [ring.clone(), ring],
            delivered: [Vec::new(), Vec::new()],
            ppc: 0,
            sub_done: [false, false],
        }
    }
}

impl Model for RingModel {
    fn name(&self) -> String {
        if self.buggy {
            "ring/publish-after-evict".to_string()
        } else {
            "ring/fixed".to_string()
        }
    }

    fn threads(&self) -> usize {
        3
    }

    fn thread_name(&self, tid: usize) -> &'static str {
        ["publisher", "sub-1", "sub-2"][tid]
    }

    fn done(&self, tid: usize) -> bool {
        if tid == PUBLISHER {
            self.ppc > N_PACKETS
        } else {
            self.sub_done[tid - 1]
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if self.done(tid) {
            return false;
        }
        if tid == PUBLISHER {
            // Never blocks: every pass either pushes or evicts.
            return true;
        }
        // A subscriber's pop parks until there is a packet or a
        // terminal state to observe.
        let r = &self.rings[tid - 1];
        !r.q.is_empty() || r.evicted || r.closed
    }

    fn step(&mut self, tid: usize) {
        if tid == PUBLISHER {
            if self.ppc < N_PACKETS {
                let seq = self.ppc + 1;
                for (i, r) in self.rings.iter_mut().enumerate() {
                    if r.closed || (r.evicted && !self.buggy) {
                        continue;
                    }
                    if r.q.len() == CAPS[i] {
                        // Overflow: clear and mark the ring dead rather
                        // than block or grow.
                        r.q.clear();
                        r.evicted = true;
                    } else {
                        r.q.push(seq);
                    }
                }
                self.ppc += 1;
            } else {
                for r in &mut self.rings {
                    r.closed = true;
                }
                self.ppc += 1;
            }
            return;
        }
        let i = tid - 1;
        let r = &mut self.rings[i];
        if let Some(&first) = r.q.first() {
            r.q.remove(0);
            self.delivered[i].push(first);
        } else if r.evicted || r.closed {
            self.sub_done[i] = true;
        }
    }

    fn step_label(&self, tid: usize) -> String {
        if tid == PUBLISHER {
            if self.ppc < N_PACKETS {
                format!("publish packet {}", self.ppc + 1)
            } else {
                "close all rings".to_string()
            }
        } else {
            let r = &self.rings[tid - 1];
            match r.q.first() {
                Some(seq) => format!("pop packet {seq}"),
                None if r.evicted => "observe Evicted".to_string(),
                None => "observe Closed".to_string(),
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        for (i, d) in self.delivered.iter().enumerate() {
            for (k, &seq) in d.iter().enumerate() {
                if seq as usize != k + 1 {
                    return Err(format!(
                        "sub-{} saw a gap: delivery #{} was packet {seq} (expected {}) — \
                         a packet published into an evicted ring was delivered",
                        i + 1,
                        k + 1,
                        k + 1
                    ));
                }
            }
        }
        if self.rings[1].evicted {
            return Err("the keeping-up ring overflowed".to_string());
        }
        if !self.buggy {
            for (i, r) in self.rings.iter().enumerate() {
                if r.evicted && !r.q.is_empty() {
                    return Err(format!("sub-{}'s evicted ring still holds packets", i + 1));
                }
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        for (i, r) in self.rings.iter().enumerate() {
            if !r.evicted && self.delivered[i].len() != N_PACKETS as usize {
                return Err(format!(
                    "sub-{} was never evicted but drained only {} of {N_PACKETS} packets",
                    i + 1,
                    self.delivered[i].len()
                ));
            }
        }
        Ok(())
    }
}
