//! Pure state-machine extractions of the `crates/serve` concurrency
//! protocols, ready for [`crate::explore`]:
//!
//! * [`waker`] — the `PollShared` park/notify/unpark wake channel.
//! * [`timer`] — the `TimerWheel` generation guard.
//! * [`ring`] — the subscriber-ring publish/evict/close protocol.
//!
//! Each module ships the protocol as implemented in-tree plus one or
//! more *known-bad* variants. The bad variants double as self-tests:
//! if the explorer cannot reproduce their counterexamples, the checker
//! itself is broken.

pub mod ring;
pub mod timer;
pub mod waker;
