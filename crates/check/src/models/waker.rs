//! The `PollShared` wake channel (`crates/serve/src/poll.rs`) as a
//! state machine: two wakers race a poller over a token queue, a
//! `notified` dedup flag, and a park/unpark permit.
//!
//! Atomic actions (one [`Model::step`] each) mirror the real
//! primitives: a mutex critical section, one atomic swap/store, one
//! park or unpark. What must hold over *every* interleaving:
//!
//! * **No lost wakeup** — the poller never stays parked while a token
//!   is queued (modeled as deadlock, since the model parks without the
//!   real loop's timeout crutch).
//! * **Batches are stamped** — a drained non-empty batch always comes
//!   with a non-zero "wake that opened it" stamp, so the wake-to-drain
//!   latency histogram never attributes a batch's wait to the wrong
//!   batch.
//!
//! Variants:
//! * [`Variant::Fixed`] — the in-tree protocol: the stamp lives *in*
//!   the wakes mutex and is set by the same critical section that
//!   pushes the batch-opening token. Passes both properties.
//! * [`Variant::LegacyStamp`] — the stamp in a separate atomic, stored
//!   only *after* the `notified` swap (the pre-fix protocol). A drain
//!   racing between swap and store observes a non-empty batch with a
//!   zero stamp — the regression this model exists to pin down.
//! * [`Variant::DrainBeforeClear`] — drain takes the queue before
//!   clearing `notified`. A wake landing in between is deduped against
//!   a batch that was already taken: classic lost wakeup, caught as a
//!   deadlock.

use crate::explore::Model;

/// Number of waker threads; each delivers exactly one token.
pub const N_WAKERS: usize = 2;
const POLLER: usize = N_WAKERS;

/// Terminal program counter for every thread.
const DONE: u8 = 9;
/// Poller pc while blocked in `park()`.
const PARKED: u8 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Fixed,
    LegacyStamp,
    DrainBeforeClear,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WakerModel {
    variant: Variant,
    /// Queued tokens (tokens are interchangeable, so a count suffices).
    queue: u8,
    /// Whether the pending batch carries its opening-wake stamp.
    since: bool,
    /// The unpark-dedup flag (`PollShared::notified`).
    notified: bool,
    /// The sticky park permit (`std::thread::park` semantics).
    permit: bool,
    /// Poller currently blocked in `park()`.
    parked: bool,
    /// Tokens the poller has drained and serviced.
    consumed: u8,
    /// Poller-local: batch taken but stamp not yet read (legacy drain
    /// splits those into two atomic actions).
    batch: u8,
    /// Set when a drain observed a non-empty batch with no stamp.
    zero_stamp: bool,
    wpc: [u8; N_WAKERS],
    ppc: u8,
}

impl WakerModel {
    pub fn new(variant: Variant) -> Self {
        WakerModel {
            variant,
            queue: 0,
            since: false,
            notified: false,
            permit: false,
            parked: false,
            consumed: 0,
            batch: 0,
            zero_stamp: false,
            wpc: [0; N_WAKERS],
            ppc: 0,
        }
    }

    fn unpark(&mut self) {
        if self.parked {
            self.parked = false;
        } else {
            self.permit = true;
        }
    }

    /// One critical section of the in-tree drain: take the queue and
    /// its stamp together.
    fn drain_locked(&mut self) -> (u8, bool) {
        let taken = (self.queue, self.since);
        self.queue = 0;
        self.since = false;
        taken
    }

    fn note_batch(&mut self, batch: u8, stamped: bool) {
        if batch > 0 && !stamped {
            self.zero_stamp = true;
        }
        self.consumed += batch;
    }

    /// End of a poller pass: finish, spin again on a stored permit, or
    /// park.
    fn park_or_loop(&mut self) {
        if self.consumed as usize == N_WAKERS {
            self.ppc = DONE;
        } else if self.permit {
            self.permit = false;
            self.ppc = 0;
        } else {
            self.parked = true;
            self.ppc = PARKED;
        }
    }

    fn step_waker(&mut self, w: usize) {
        let legacy = self.variant == Variant::LegacyStamp;
        match self.wpc[w] {
            0 => {
                // wake(): push under the mutex; the fixed protocol also
                // stamps the batch opener in the same critical section.
                self.queue += 1;
                if !legacy && !self.since {
                    self.since = true;
                }
                self.wpc[w] = 1;
            }
            1 => {
                // notified.swap(true): only the batch opener unparks.
                let prev = self.notified;
                self.notified = true;
                self.wpc[w] = if prev { DONE } else { 2 };
            }
            2 => {
                if legacy {
                    // The pre-fix stamp: a separate atomic, stored after
                    // the swap — this window is the bug.
                    self.since = true;
                    self.wpc[w] = 3;
                } else {
                    self.unpark();
                    self.wpc[w] = DONE;
                }
            }
            3 => {
                self.unpark();
                self.wpc[w] = DONE;
            }
            pc => unreachable!("waker pc {pc}"),
        }
    }

    fn step_poller(&mut self) {
        match (self.variant, self.ppc) {
            (_, PARKED) => self.ppc = 0, // park() returned
            (Variant::Fixed, 0) => {
                self.notified = false;
                self.ppc = 1;
            }
            (Variant::Fixed, 1) => {
                let (batch, stamped) = self.drain_locked();
                self.note_batch(batch, stamped);
                self.ppc = 2;
            }
            (Variant::Fixed, 2) => self.park_or_loop(),
            (Variant::LegacyStamp, 0) => {
                self.notified = false;
                self.ppc = 1;
            }
            (Variant::LegacyStamp, 1) => {
                // Legacy drain, first half: take the queue…
                self.batch = self.queue;
                self.queue = 0;
                self.ppc = 2;
            }
            (Variant::LegacyStamp, 2) => {
                // …second half: wake_since.swap(0), a separate atomic.
                let stamped = self.since;
                self.since = false;
                let batch = self.batch;
                self.batch = 0;
                self.note_batch(batch, stamped);
                self.ppc = 3;
            }
            (Variant::LegacyStamp, 3) => self.park_or_loop(),
            (Variant::DrainBeforeClear, 0) => {
                let (batch, stamped) = self.drain_locked();
                self.note_batch(batch, stamped);
                self.ppc = 1;
            }
            (Variant::DrainBeforeClear, 1) => {
                // Clearing notified *after* taking the queue: a wake in
                // between was deduped against an already-taken batch.
                self.notified = false;
                self.ppc = 2;
            }
            (Variant::DrainBeforeClear, 2) => self.park_or_loop(),
            (v, pc) => unreachable!("poller pc {pc} in {v:?}"),
        }
    }
}

impl Model for WakerModel {
    fn name(&self) -> String {
        match self.variant {
            Variant::Fixed => "waker/fixed".to_string(),
            Variant::LegacyStamp => "waker/legacy-stamp".to_string(),
            Variant::DrainBeforeClear => "waker/drain-before-clear".to_string(),
        }
    }

    fn threads(&self) -> usize {
        N_WAKERS + 1
    }

    fn thread_name(&self, tid: usize) -> &'static str {
        ["waker-1", "waker-2", "poller"][tid]
    }

    fn done(&self, tid: usize) -> bool {
        if tid == POLLER {
            self.ppc == DONE
        } else {
            self.wpc[tid] == DONE
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if self.done(tid) {
            return false;
        }
        if tid == POLLER && self.ppc == PARKED {
            return !self.parked;
        }
        true
    }

    fn step(&mut self, tid: usize) {
        if tid == POLLER {
            self.step_poller();
        } else {
            self.step_waker(tid);
        }
    }

    fn step_label(&self, tid: usize) -> String {
        if tid != POLLER {
            return match (self.variant, self.wpc[tid]) {
                (Variant::LegacyStamp, 0) => "lock wakes; push token",
                (_, 0) => "lock wakes; push token + stamp batch opener",
                (_, 1) => "notified.swap(true)",
                (Variant::LegacyStamp, 2) => "wake_since.store(now)  [late stamp]",
                (_, 2) | (_, 3) => "unpark poller",
                _ => "?",
            }
            .to_string();
        }
        match (self.variant, self.ppc) {
            (_, PARKED) => "return from park()".to_string(),
            (Variant::Fixed, 0) | (Variant::LegacyStamp, 0) => "notified.store(false)".to_string(),
            (Variant::Fixed, 1) => "lock wakes; take queue + stamp".to_string(),
            (Variant::Fixed, 2) | (Variant::LegacyStamp, 3) | (Variant::DrainBeforeClear, 2) => {
                "service batch; park or loop".to_string()
            }
            (Variant::LegacyStamp, 1) => "lock wakes; take queue".to_string(),
            (Variant::LegacyStamp, 2) => "wake_since.swap(0)".to_string(),
            (Variant::DrainBeforeClear, 0) => "lock wakes; take queue + stamp".to_string(),
            (Variant::DrainBeforeClear, 1) => "notified.store(false)  [too late]".to_string(),
            _ => "?".to_string(),
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.zero_stamp {
            return Err(
                "drained a non-empty wake batch whose stamp read 0: the opener's stamp \
                 lands after the drain and is mis-attributed to the next batch"
                    .to_string(),
            );
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.consumed as usize != N_WAKERS || self.queue != 0 {
            return Err(format!(
                "tokens lost: {} of {N_WAKERS} serviced, {} still queued",
                self.consumed, self.queue
            ));
        }
        Ok(())
    }

    fn deadlock_msg(&self) -> String {
        format!(
            "lost wakeup: poller parked forever with {} token(s) queued and {} of \
             {N_WAKERS} serviced",
            self.queue, self.consumed
        )
    }
}
