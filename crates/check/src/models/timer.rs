//! The `TimerWheel` generation guard (`crates/serve/src/poll.rs`) as a
//! state machine: entries are never cancelled, so a connection slot
//! that is reset and reused must not be hit by a timer armed for its
//! previous life. Each entry carries the connection's generation at arm
//! time; a fire whose generation no longer matches is discarded.
//!
//! Threads: an *armer* driving one connection slot through
//! arm → reset (generation bump) → re-arm, and a *ticker* advancing the
//! wheel and collecting due entries. Checked over every interleaving:
//!
//! * **No early fire** — an entry is never collected before its tick.
//! * **No stale fire** — a delivered entry's generation matches the
//!   connection's generation at delivery ([`TimerModel::unguarded`]
//!   drops the check and is caught here).
//! * **No spurious discard** — a discarded entry really was stale.
//! * **Accounting** — when both threads finish, every entry whose tick
//!   the clock passed was either delivered or discarded, and (guarded)
//!   every still-current due entry was delivered.

use crate::explore::Model;

const ARMER: usize = 0;
const DONE: u8 = 9;

/// How far the ticker advances. Far enough that both arms (due ticks
/// clamp to `tick + 1`, and the armer runs at most 3 steps) land due
/// before the clock stops.
const MAX_TICK: u8 = 6;

/// One fire event: the entry's arm-time generation, the connection's
/// generation at collection, the due tick, and the collection tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fire {
    pub gen: u8,
    pub conn_gen: u8,
    pub due: u8,
    pub at: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimerModel {
    guarded: bool,
    /// The connection slot's current generation.
    conn_gen: u8,
    /// Armed, uncollected entries: `(gen, due_tick)`.
    wheel: Vec<(u8, u8)>,
    /// Every arm ever made, for final accounting.
    armed: Vec<(u8, u8)>,
    delivered: Vec<Fire>,
    discarded: Vec<Fire>,
    tick: u8,
    apc: u8,
}

impl TimerModel {
    pub fn guarded() -> Self {
        Self::new(true)
    }

    /// The generation check removed — the known-bad variant the
    /// explorer must catch.
    pub fn unguarded() -> Self {
        Self::new(false)
    }

    fn new(guarded: bool) -> Self {
        TimerModel {
            guarded,
            conn_gen: 0,
            wheel: Vec::new(),
            armed: Vec::new(),
            delivered: Vec::new(),
            discarded: Vec::new(),
            tick: 0,
            apc: 0,
        }
    }

    /// `TimerWheel::arm`: the due tick is clamped to the future so
    /// timers never fire early.
    fn arm(&mut self, due: u8) {
        let due = due.max(self.tick + 1);
        self.wheel.push((self.conn_gen, due));
        self.armed.push((self.conn_gen, due));
    }
}

impl Model for TimerModel {
    fn name(&self) -> String {
        if self.guarded {
            "timer/guarded".to_string()
        } else {
            "timer/unguarded".to_string()
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn thread_name(&self, tid: usize) -> &'static str {
        ["armer", "ticker"][tid]
    }

    fn done(&self, tid: usize) -> bool {
        match tid {
            ARMER => self.apc == DONE,
            _ => self.tick >= MAX_TICK,
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        !self.done(tid)
    }

    fn step(&mut self, tid: usize) {
        if tid == ARMER {
            match self.apc {
                // The connection's first life arms a timer…
                0 => {
                    self.arm(2);
                    self.apc = 1;
                }
                // …the slot is reset and reused (handshake restart,
                // subscriber replaced): generation bump, no cancel…
                1 => {
                    self.conn_gen += 1;
                    self.apc = 2;
                }
                // …and the new life arms its own timer.
                2 => {
                    self.arm(3);
                    self.apc = DONE;
                }
                pc => unreachable!("armer pc {pc}"),
            }
            return;
        }
        // `TimerWheel::advance`: one tick, collect everything due. The
        // wheel is owned by the poller thread, so the scan is one
        // atomic action.
        self.tick += 1;
        let mut i = 0;
        while i < self.wheel.len() {
            let (gen, due) = self.wheel[i];
            if due > self.tick {
                i += 1;
                continue;
            }
            self.wheel.swap_remove(i);
            let fire = Fire {
                gen,
                conn_gen: self.conn_gen,
                due,
                at: self.tick,
            };
            if self.guarded && gen != self.conn_gen {
                self.discarded.push(fire);
            } else {
                self.delivered.push(fire);
            }
        }
    }

    fn step_label(&self, tid: usize) -> String {
        if tid == ARMER {
            match self.apc {
                0 => format!("arm(gen={}, due=2)", self.conn_gen),
                1 => format!("reset slot: gen {} -> {}", self.conn_gen, self.conn_gen + 1),
                2 => format!("arm(gen={}, due=3)", self.conn_gen),
                _ => "?".to_string(),
            }
        } else {
            format!("advance to tick {}; collect due entries", self.tick + 1)
        }
    }

    fn invariant(&self) -> Result<(), String> {
        for f in &self.delivered {
            if f.at < f.due {
                return Err(format!(
                    "early fire: entry due at tick {} collected at tick {}",
                    f.due, f.at
                ));
            }
            if f.gen != f.conn_gen {
                return Err(format!(
                    "stale-generation fire delivered: entry armed at gen {} hit the \
                     connection at gen {}",
                    f.gen, f.conn_gen
                ));
            }
        }
        for f in &self.discarded {
            if f.gen == f.conn_gen {
                return Err(format!(
                    "spurious discard: current-generation entry (gen {}) dropped",
                    f.gen
                ));
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        for &(gen, due) in &self.armed {
            if due > self.tick {
                continue; // clock never reached it
            }
            let collected = self.delivered.iter().chain(&self.discarded);
            if !collected.clone().any(|f| f.gen == gen && f.due == due) {
                return Err(format!(
                    "entry (gen {gen}, due {due}) was due by tick {} but never \
                     collected",
                    self.tick
                ));
            }
            if self.guarded
                && gen == self.conn_gen
                && !self.delivered.iter().any(|f| f.gen == gen && f.due == due)
            {
                return Err(format!(
                    "current-generation entry (gen {gen}, due {due}) was due but not \
                     delivered"
                ));
            }
        }
        Ok(())
    }
}
