//! The invariant rules `nvc-lint` enforces, over the token stream from
//! [`crate::lexer`]:
//!
//! 1. **order-comment** — every *atomic* `Ordering::` use-site
//!    (`Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`; `std::cmp`'s
//!    `Ordering::Equal` is not flagged) must carry a `// order:`
//!    justification on the same line or within the two lines above.
//! 2. **wallclock** — no `Instant`, `SystemTime` or `epoch_micros` in
//!    the deterministic crates, outside the config allowlist.
//! 3. **serve-ratchet** — panic-family call sites in
//!    `crates/serve/src` non-test code are counted and compared to the
//!    checked-in ceiling; the count may only go down.
//! 4. **lock-order** — within a function, a classified lock may not be
//!    acquired while a later-level lock is held (declared hierarchy:
//!    registry → broadcast → ring → conn).
//! 5. **no-unsafe** — the `unsafe` keyword is banned outright, and
//!    every crate-root file (`src/lib.rs`, `src/main.rs`, `src/bin/*`,
//!    `examples/*`) must carry `#![forbid(unsafe_code)]` so the ban is
//!    also compiler-enforced for every build target.

use crate::config::Config;
use crate::lexer::{self, Tok, TokKind};

/// The five memory orderings of `std::sync::atomic::Ordering`. Matching
/// these — and not `Equal`/`Less`/`Greater` — is what keeps
/// `std::cmp::Ordering` sites out of rule 1.
pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const PANIC_BANGS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// One finding, formatted by the binary as `file:line: [rule] message`.
#[derive(Debug)]
pub struct Diag {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

/// Everything the linter learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diags: Vec<Diag>,
    /// Lines of panic-family sites (only populated for ratcheted files);
    /// the binary sums these against the ceiling.
    pub panic_sites: Vec<u32>,
    /// Atomic `Ordering::` sites seen (annotated or not), for the
    /// summary line.
    pub ordering_sites: usize,
}

/// Lints one file. `rel` is the workspace-relative path with `/`
/// separators — rule scoping (deterministic crates, the serve ratchet,
/// crate roots) is path-based.
pub fn lint_file(rel: &str, src: &str, cfg: &Config) -> FileReport {
    let toks = lexer::lex(src);
    let file = File {
        rel,
        src,
        code: lexer::code_indices(&toks),
        toks: &toks,
    };
    let mut report = FileReport::default();
    file.rule_order_comment(cfg, &mut report);
    file.rule_wallclock(cfg, &mut report);
    file.rule_lock_order(cfg, &mut report);
    file.rule_no_unsafe(&mut report);
    if rel.starts_with("crates/serve/src/") {
        report.panic_sites = file.panic_sites();
    }
    report
}

struct File<'a> {
    rel: &'a str,
    src: &'a str,
    toks: &'a [Tok],
    /// Indices into `toks` of non-trivia tokens; the rules walk this.
    code: Vec<usize>,
}

impl File<'_> {
    fn tok(&self, ci: usize) -> &Tok {
        &self.toks[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(self.src)
    }

    fn is(&self, ci: usize, s: &str) -> bool {
        ci < self.code.len() && self.text(ci) == s
    }

    fn is_ident(&self, ci: usize) -> bool {
        ci < self.code.len() && self.tok(ci).kind == TokKind::Ident
    }

    fn diag(&self, report: &mut FileReport, line: u32, rule: &'static str, msg: String) {
        report.diags.push(Diag {
            file: self.rel.to_string(),
            line,
            rule,
            msg,
        });
    }

    /// Rule 1: atomic `Ordering::` sites need an adjacent `// order:`.
    fn rule_order_comment(&self, _cfg: &Config, report: &mut FileReport) {
        // Lines carrying a `// order:` comment (leading `//` stripped,
        // then whitespace; `/// order:` doc comments do not count). A
        // justification often wraps over several comment lines, so every
        // continuation line of a contiguous comment block counts too.
        let mut comment_lines: Vec<(u32, bool)> = Vec::new();
        for t in self.toks {
            if t.kind == TokKind::LineComment {
                let text = t.text(self.src);
                if text.starts_with("///") || text.starts_with("//!") {
                    continue;
                }
                let body = text.trim_start_matches('/');
                comment_lines.push((t.line, body.trim_start().starts_with("order:")));
            }
        }
        let mut effective: Vec<u32> = Vec::new();
        let mut prev: Option<u32> = None;
        for &(line, is_order) in &comment_lines {
            let counted = is_order || prev == Some(line.saturating_sub(1));
            if counted {
                effective.push(line);
                prev = Some(line);
            } else {
                prev = None;
            }
        }
        // Test code picks orderings casually (usually SeqCst) and that
        // is fine — the justification discipline is for shipped code.
        let tests = self.test_ranges();
        for ci in 0..self.code.len().saturating_sub(3) {
            if tests.iter().any(|&(a, b)| ci >= a && ci < b) {
                continue;
            }
            if self.is(ci, "Ordering")
                && self.is(ci + 1, ":")
                && self.is(ci + 2, ":")
                && ATOMIC_ORDERINGS.contains(&self.text(ci + 3))
            {
                report.ordering_sites += 1;
                let line = self.tok(ci + 3).line;
                // A rustfmt-split statement puts the `Ordering` token
                // lines below where a human writes the comment; anchor
                // the distance check at the statement's first line.
                let mut j = ci;
                while j > 0 && !matches!(self.text(j - 1), ";" | "{" | "}") {
                    j -= 1;
                }
                let anchor = self.tok(j).line;
                let covered = effective
                    .iter()
                    .any(|&c| c <= line && anchor.saturating_sub(c) <= 2);
                if !covered {
                    self.diag(
                        report,
                        line,
                        "order-comment",
                        format!(
                            "Ordering::{} without a `// order:` justification adjacent \
                             to the statement",
                            self.text(ci + 3)
                        ),
                    );
                }
            }
        }
    }

    /// Rule 2: wall-clock reads in deterministic crates.
    fn rule_wallclock(&self, cfg: &Config, report: &mut FileReport) {
        let in_scope = cfg.wallclock_crates.iter().any(|c| {
            self.rel
                .strip_prefix("crates/")
                .and_then(|r| r.strip_prefix(c.as_str()))
                .is_some_and(|r| r.starts_with('/'))
        });
        if !in_scope || cfg.wallclock_allow.iter().any(|a| a == self.rel) {
            return;
        }
        for ci in 0..self.code.len() {
            let t = self.text(ci);
            if self.is_ident(ci) && matches!(t, "Instant" | "SystemTime" | "epoch_micros") {
                self.diag(
                    report,
                    self.tok(ci).line,
                    "wallclock",
                    format!(
                        "`{t}` in a deterministic crate; outputs must not depend on \
                         the wall clock (add the file to [wallclock] allow to waive)"
                    ),
                );
            }
        }
    }

    /// Rule 4: in-function lock acquisitions that invert the declared
    /// hierarchy. A lock guard bound via `let` (or a `match`/`if let`
    /// scrutinee) is treated as held to the end of its block; a bare
    /// temporary as held to the end of its statement.
    fn rule_lock_order(&self, cfg: &Config, report: &mut FileReport) {
        let classify = |name: &str| -> Option<usize> {
            cfg.lock_levels
                .iter()
                .position(|l| l.receivers.iter().any(|r| r == name))
        };
        struct Held {
            level: usize,
            name: String,
            line: u32,
            depth: usize,
            scoped: bool,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        for ci in 0..self.code.len() {
            match self.text(ci) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                }
                ";" => held.retain(|h| h.scoped || h.depth != depth),
                "lock" | "lock_clean"
                    if ci >= 2
                        && self.is(ci - 1, ".")
                        && self.is_ident(ci - 2)
                        && self.is(ci + 1, "(") =>
                {
                    let name = self.text(ci - 2);
                    let Some(level) = classify(name) else {
                        continue;
                    };
                    let line = self.tok(ci).line;
                    for h in &held {
                        if h.level > level {
                            let order: Vec<&str> =
                                cfg.lock_levels.iter().map(|l| l.name.as_str()).collect();
                            self.diag(
                                report,
                                line,
                                "lock-order",
                                format!(
                                    "`{name}` ({}) acquired while `{}` ({}, line {}) is \
                                     held; declared order is {}",
                                    cfg.lock_levels[level].name,
                                    h.name,
                                    cfg.lock_levels[h.level].name,
                                    h.line,
                                    order.join(" → ")
                                ),
                            );
                        }
                    }
                    // Statement-temporary vs `let`-bound: scan back to
                    // the start of the statement.
                    let mut scoped = false;
                    let mut j = ci;
                    while j > 0 {
                        j -= 1;
                        let t = self.text(j);
                        if matches!(t, ";" | "{" | "}") {
                            break;
                        }
                        if matches!(t, "let" | "match") {
                            scoped = true;
                            break;
                        }
                    }
                    held.push(Held {
                        level,
                        name: name.to_string(),
                        line,
                        depth,
                        scoped,
                    });
                }
                _ => {}
            }
        }
    }

    /// Rule 5: the `unsafe` keyword is banned, and crate-root files
    /// must carry `#![forbid(unsafe_code)]`.
    fn rule_no_unsafe(&self, report: &mut FileReport) {
        for ci in 0..self.code.len() {
            if self.is_ident(ci) && self.is(ci, "unsafe") {
                self.diag(
                    report,
                    self.tok(ci).line,
                    "no-unsafe",
                    "`unsafe` is banned workspace-wide".to_string(),
                );
            }
        }
        if is_crate_root(self.rel) && !self.has_forbid_unsafe() {
            self.diag(
                report,
                1,
                "no-unsafe",
                "crate-root file missing `#![forbid(unsafe_code)]` (bin/example targets \
                 do not inherit the lib's attribute)"
                    .to_string(),
            );
        }
    }

    fn has_forbid_unsafe(&self) -> bool {
        const PAT: [&str; 8] = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
        (0..self.code.len().saturating_sub(PAT.len() - 1))
            .any(|ci| PAT.iter().enumerate().all(|(k, p)| self.is(ci + k, p)))
    }

    /// Rule 3 support: lines of panic-family call sites outside
    /// `#[cfg(test)] mod` blocks.
    fn panic_sites(&self) -> Vec<u32> {
        let tests = self.test_ranges();
        let mut sites = Vec::new();
        for ci in 0..self.code.len() {
            if tests.iter().any(|&(a, b)| ci >= a && ci < b) || !self.is_ident(ci) {
                continue;
            }
            let t = self.text(ci);
            let hit = (matches!(t, "unwrap" | "expect") && self.is(ci + 1, "("))
                || (PANIC_BANGS.contains(&t) && self.is(ci + 1, "!"));
            if hit {
                sites.push(self.tok(ci).line);
            }
        }
        sites
    }

    /// Code-index ranges covered by `#[cfg(test)] mod … { … }`.
    fn test_ranges(&self) -> Vec<(usize, usize)> {
        const ATTR: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
        let mut ranges = Vec::new();
        for ci in 0..self.code.len().saturating_sub(ATTR.len()) {
            if !ATTR.iter().enumerate().all(|(k, p)| self.is(ci + k, p)) {
                continue;
            }
            let mut j = ci + ATTR.len();
            if !self.is(j, "mod") {
                continue;
            }
            // Skip to the module's opening brace, then match it.
            while j < self.code.len() && !self.is(j, "{") {
                j += 1;
            }
            let open = j;
            let mut d = 0usize;
            while j < self.code.len() {
                if self.is(j, "{") {
                    d += 1;
                } else if self.is(j, "}") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            ranges.push((open, j + 1));
        }
        ranges
    }
}

/// Whether `rel` is a compilation-root file that must carry its own
/// `#![forbid(unsafe_code)]`.
pub fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        [.., "src", "lib.rs"] | [.., "src", "main.rs"] => true,
        [.., "src", "bin", f] | [.., "examples", f] => f.ends_with(".rs"),
        _ => false,
    }
}
