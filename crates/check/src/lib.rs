#![forbid(unsafe_code)]
//! In-tree correctness tooling for the nvc workspace.
//!
//! Two pillars, both dependency-free so an offline build can always run
//! them:
//!
//! * [`lint`] — a token-level source analyzer (backed by the real lexer
//!   in [`lexer`], not regex) enforcing the repo's concurrency and
//!   determinism invariants: justified atomic orderings, no wall-clock
//!   reads in deterministic crates, a ratcheted panic count in the
//!   serving core, and the declared lock hierarchy. Configured by
//!   `lint-ratchet.toml` at the workspace root; run via the `nvc-lint`
//!   binary.
//! * [`explore`] + [`models`] — a bounded-interleaving model checker.
//!   The waker, timer-wheel and subscriber-ring protocols from
//!   `crates/serve` are extracted into pure state machines generic over
//!   a scheduler ([`explore::Sched`]); the explorer enumerates every
//!   interleaving, asserting no lost wakeup, no stale-generation timer
//!   fire, and no publish-after-evict delivery. Run via `nvc-explore`.

pub mod config;
pub mod explore;
pub mod lexer;
pub mod lint;
pub mod models;
