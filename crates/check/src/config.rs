//! Reader for `lint-ratchet.toml` — the checked-in lint policy.
//!
//! This is a deliberately small TOML subset (sections, integer values,
//! single-line string arrays, `#` comments), enough for the ratchet
//! file without pulling in a TOML crate the offline build can't have.

/// The parsed lint policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum allowed panic-family call sites (`unwrap`/`expect`/
    /// `panic!`/`unreachable!`/`todo!`/`unimplemented!`) in
    /// `crates/serve/src` non-test code. New code may only lower it.
    pub serve_panic_ceiling: usize,
    /// Crate names whose sources must not read the wall clock.
    pub wallclock_crates: Vec<String>,
    /// Workspace-relative `.rs` paths exempt from the wall-clock rule.
    pub wallclock_allow: Vec<String>,
    /// The declared lock hierarchy, outermost level first. A lock at a
    /// later level may be acquired while an earlier one is held, never
    /// the reverse.
    pub lock_levels: Vec<LockLevel>,
}

/// One level of the lock hierarchy: its name and the receiver
/// identifiers (`foo` in `foo.lock()`) classified at this level.
#[derive(Debug, Clone)]
pub struct LockLevel {
    pub name: String,
    pub receivers: Vec<String>,
}

#[derive(Debug, PartialEq)]
enum Value {
    Int(i64),
    List(Vec<String>),
}

impl Config {
    /// Parses the ratchet file. Unknown sections or keys are an error:
    /// a typo in a policy file must not silently disable a rule.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut serve_panic_ceiling = None;
        let mut wallclock_crates = None;
        let mut wallclock_allow = None;
        let mut level_order: Option<Vec<String>> = None;
        let mut level_receivers: Vec<(String, Vec<String>)> = Vec::new();

        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: malformed section header"))?;
                section = name.trim().to_string();
                continue;
            }
            let (key, val) = parse_kv(line).map_err(|e| format!("line {lineno}: {e}"))?;
            match (section.as_str(), key.as_str(), val) {
                ("ratchet", "serve_panic_ceiling", Value::Int(n)) if n >= 0 => {
                    serve_panic_ceiling = Some(n as usize);
                }
                ("wallclock", "crates", Value::List(v)) => wallclock_crates = Some(v),
                ("wallclock", "allow", Value::List(v)) => wallclock_allow = Some(v),
                ("lock_order", "levels", Value::List(v)) => level_order = Some(v),
                ("lock_order", k, Value::List(v)) => {
                    level_receivers.push((k.to_string(), v));
                }
                (s, k, _) => {
                    return Err(format!("line {lineno}: unrecognized key `{s}.{k}`"));
                }
            }
        }

        let order = level_order.ok_or("missing [lock_order] levels")?;
        let mut lock_levels = Vec::new();
        for name in &order {
            let receivers = level_receivers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                // A level with no explicit receiver list classifies by
                // its own name.
                .unwrap_or_else(|| vec![name.clone()]);
            lock_levels.push(LockLevel {
                name: name.clone(),
                receivers,
            });
        }
        for (k, _) in &level_receivers {
            if !order.contains(k) {
                return Err(format!("lock_order.{k} is not listed in lock_order.levels"));
            }
        }

        Ok(Config {
            serve_panic_ceiling: serve_panic_ceiling
                .ok_or("missing ratchet.serve_panic_ceiling")?,
            wallclock_crates: wallclock_crates.ok_or("missing wallclock.crates")?,
            wallclock_allow: wallclock_allow.unwrap_or_default(),
            lock_levels,
        })
    }
}

fn parse_kv(line: &str) -> Result<(String, Value), String> {
    let eq = line.find('=').ok_or("expected `key = value`")?;
    let key = line[..eq].trim().to_string();
    let rest = line[eq + 1..].trim();
    if let Some(body) = rest.strip_prefix('[') {
        let close = body.rfind(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        let mut cur = &body[..close];
        loop {
            cur = cur.trim_start_matches([',', ' ', '\t']);
            if cur.is_empty() {
                break;
            }
            let inner = cur.strip_prefix('"').ok_or("array items must be quoted")?;
            let end = inner.find('"').ok_or("unterminated string")?;
            items.push(inner[..end].to_string());
            cur = &inner[end + 1..];
        }
        return Ok((key, Value::List(items)));
    }
    let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let tail = rest[num.len()..].trim();
    if num.is_empty() || !(tail.is_empty() || tail.starts_with('#')) {
        return Err(format!("unsupported value `{rest}`"));
    }
    let n: i64 = num
        .parse()
        .map_err(|_| "integer out of range".to_string())?;
    Ok((key, Value::Int(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_policy_shape() {
        let cfg = Config::parse(
            r#"
# policy
[ratchet]
serve_panic_ceiling = 42 # tighten me

[wallclock]
crates = ["entropy", "model"]
allow = []

[lock_order]
levels = ["registry", "ring"]
ring = ["ring", "ring_notify"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.serve_panic_ceiling, 42);
        assert_eq!(cfg.wallclock_crates, vec!["entropy", "model"]);
        assert!(cfg.wallclock_allow.is_empty());
        assert_eq!(cfg.lock_levels.len(), 2);
        assert_eq!(cfg.lock_levels[0].receivers, vec!["registry"]);
        assert_eq!(cfg.lock_levels[1].receivers, vec!["ring", "ring_notify"]);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = Config::parse("[ratchet]\nserve_panic_ceilnig = 3\n").unwrap_err();
        assert!(err.contains("unrecognized key"), "{err}");
    }
}
