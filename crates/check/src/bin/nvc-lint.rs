#![forbid(unsafe_code)]
//! Workspace invariant linter. Run from anywhere in the repo:
//!
//! ```text
//! cargo run -p nvc-check --bin nvc-lint -- --workspace
//! ```
//!
//! Policy lives in `lint-ratchet.toml` at the workspace root; the rules
//! are documented in `nvc_check::lint`. Exit status is non-zero when
//! any rule fires or the serve panic count exceeds the ratchet ceiling.

use nvc_check::config::Config;
use nvc_check::lint;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const RATCHET_FILE: &str = "lint-ratchet.toml";

fn main() -> ExitCode {
    for arg in std::env::args().skip(1) {
        if arg != "--workspace" {
            eprintln!("usage: nvc-lint --workspace");
            return ExitCode::from(2);
        }
    }
    let Some(root) = find_root() else {
        eprintln!("nvc-lint: no {RATCHET_FILE} found here or in any parent directory");
        return ExitCode::from(2);
    };
    let policy = match std::fs::read_to_string(root.join(RATCHET_FILE)) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("nvc-lint: reading {RATCHET_FILE}: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&policy) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("nvc-lint: {RATCHET_FILE}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();

    let mut diags = Vec::new();
    let mut panic_sites: Vec<(String, u32)> = Vec::new();
    let mut ordering_sites = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("nvc-lint: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = lint::lint_file(&rel, &src, &cfg);
        ordering_sites += report.ordering_sites;
        diags.extend(report.diags);
        panic_sites.extend(report.panic_sites.into_iter().map(|l| (rel.clone(), l)));
    }

    let mut failed = !diags.is_empty();
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for d in &diags {
        println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.msg);
    }

    let count = panic_sites.len();
    match count.cmp(&cfg.serve_panic_ceiling) {
        std::cmp::Ordering::Greater => {
            failed = true;
            println!(
                "serve panic ratchet exceeded: {count} panic-family sites in \
                 crates/serve/src, ceiling is {} — remove these or lower existing ones:",
                cfg.serve_panic_ceiling
            );
            for (file, line) in &panic_sites {
                println!("{file}:{line}: [serve-ratchet] panic-family call site");
            }
        }
        std::cmp::Ordering::Less => {
            println!(
                "note: serve panic count is {count}, below the ceiling of {} — tighten \
                 serve_panic_ceiling in {RATCHET_FILE} to {count} to lock it in",
                cfg.serve_panic_ceiling
            );
        }
        std::cmp::Ordering::Equal => {}
    }

    println!(
        "nvc-lint: {} files, {ordering_sites} atomic Ordering sites justified, serve \
         panic count {count}/{}, lock hierarchy {}: {}",
        files.len(),
        cfg.serve_panic_ceiling,
        cfg.lock_levels
            .iter()
            .map(|l| l.name.as_str())
            .collect::<Vec<_>>()
            .join(" → "),
        if failed { "FAIL" } else { "clean" }
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Ascends from the current directory to the workspace root, identified
/// by the ratchet file.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join(RATCHET_FILE).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every `.rs` file under `dir`, skipping build output and
/// hidden directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
