#![forbid(unsafe_code)]
//! Bounded-interleaving model checker for the serve concurrency core:
//!
//! ```text
//! cargo run -p nvc-check --bin nvc-explore
//! ```
//!
//! Exhaustively explores every thread interleaving of the waker,
//! timer-wheel and subscriber-ring protocol models (see
//! `nvc_check::models`). The in-tree protocols must pass; the
//! known-bad variants must reproduce their counterexamples — if one of
//! them "passes", the checker itself has lost its teeth, and the run
//! fails.

use nvc_check::explore::{explore, Model};
use nvc_check::models::ring::RingModel;
use nvc_check::models::timer::TimerModel;
use nvc_check::models::waker::{Variant, WakerModel};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut ok = true;
    println!("nvc-explore: exhaustive interleaving check of the serve protocols");
    println!("-- in-tree protocols (must pass) --");
    ok &= must_pass(WakerModel::new(Variant::Fixed));
    ok &= must_pass(TimerModel::guarded());
    ok &= must_pass(RingModel::fixed());
    println!("-- known-bad variants (must be caught; checker self-test) --");
    ok &= must_catch(WakerModel::new(Variant::LegacyStamp), "stamp");
    ok &= must_catch(WakerModel::new(Variant::DrainBeforeClear), "lost wakeup");
    ok &= must_catch(TimerModel::unguarded(), "stale-generation");
    ok &= must_catch(RingModel::publish_after_evict(), "gap");
    if ok {
        println!("nvc-explore: all models clean, all known-bad variants caught");
        ExitCode::SUCCESS
    } else {
        println!("nvc-explore: FAIL");
        ExitCode::FAILURE
    }
}

fn must_pass<M: Model>(m: M) -> bool {
    match explore(&m) {
        Ok(s) => {
            println!(
                "  PASS  {:<26} {:>6} states, {:>8} interleavings, longest schedule {}",
                m.name(),
                s.states,
                s.interleavings,
                s.max_depth
            );
            true
        }
        Err(v) => {
            println!("  FAIL  {:<26} {}", m.name(), v.msg);
            print!("{}", v.render(&m));
            false
        }
    }
}

/// Runs a known-bad variant; success means the explorer found the
/// violation it was built to find.
fn must_catch<M: Model>(m: M, expected: &str) -> bool {
    match explore(&m) {
        Ok(_) => {
            println!(
                "  SELF-TEST FAIL  {:<16} known-bad variant passed exhaustively",
                m.name()
            );
            false
        }
        Err(v) if v.msg.contains(expected) => {
            println!(
                "  CAUGHT {:<25} {} steps to: {}",
                m.name(),
                v.trace.len(),
                v.msg
            );
            print!("{}", v.render(&m));
            true
        }
        Err(v) => {
            println!(
                "  SELF-TEST FAIL  {:<16} wrong violation (wanted `{expected}`): {}",
                m.name(),
                v.msg
            );
            print!("{}", v.render(&m));
            false
        }
    }
}
