//! A bounded-interleaving explorer for small concurrency protocols.
//!
//! A [`Model`] is a handful of threads, each a little program counter
//! machine over shared state, where one [`Model::step`] is one atomic
//! action (a mutex critical section, one atomic RMW, an unpark). Models
//! are pure and deterministic — all nondeterminism lives in *which*
//! thread steps next, i.e. in the scheduler.
//!
//! Scheduling is abstracted behind [`Sched`]: [`FixedSched`] replays
//! one recorded interleaving (unit tests, counterexample printing),
//! while [`explore`] *is* the adversarial scheduler — it forks on every
//! choice point and visits every reachable interleaving, checking the
//! model's invariant in every state.
//!
//! States are memoized (the models are `Eq + Hash`), so the state graph
//! is walked once per distinct state while the interleaving count —
//! the number of distinct schedules, which is what "exhaustive" means
//! here — is still counted exactly, as root-to-terminal paths in the
//! memoized DAG.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// A protocol model the explorer can drive. One instance is one state;
/// stepping clones cheaply and mutates the clone.
pub trait Model: Clone + Eq + Hash {
    /// Display name, e.g. `waker/fixed`.
    fn name(&self) -> String;
    /// Number of threads (thread ids are `0..threads()`).
    fn threads(&self) -> usize;
    fn thread_name(&self, tid: usize) -> &'static str;
    /// Thread finished its program (terminal, never enabled again).
    fn done(&self, tid: usize) -> bool;
    /// Thread can take a step now. `false` while `!done` models
    /// blocking (a parked thread, a pop on an empty ring).
    fn enabled(&self, tid: usize) -> bool;
    /// Performs `tid`'s next atomic action. Only called when enabled.
    fn step(&mut self, tid: usize);
    /// Human label of the action `step(tid)` would perform — used to
    /// print counterexample traces.
    fn step_label(&self, tid: usize) -> String;
    /// Safety invariant, checked in every reachable state.
    fn invariant(&self) -> Result<(), String>;
    /// Checked in states where every thread is done.
    fn final_check(&self) -> Result<(), String>;
    /// Message for the no-thread-enabled-but-not-all-done state. A
    /// deadlock is always a violation; models refine the message (for
    /// the waker model it *is* the lost-wakeup bug).
    fn deadlock_msg(&self) -> String {
        "deadlock: no thread can make progress".to_string()
    }
}

/// Picks which runnable thread moves next. The explorer enumerates all
/// choices; a `Sched` impl commits to one per step.
pub trait Sched {
    /// `runnable` is non-empty and sorted. `None` stops the run early.
    fn pick(&mut self, runnable: &[usize]) -> Option<usize>;
}

/// Replays a recorded interleaving, e.g. a counterexample trace.
pub struct FixedSched {
    trace: Vec<usize>,
    at: usize,
}

impl FixedSched {
    pub fn new(trace: Vec<usize>) -> Self {
        FixedSched { trace, at: 0 }
    }
}

impl Sched for FixedSched {
    fn pick(&mut self, runnable: &[usize]) -> Option<usize> {
        let t = *self.trace.get(self.at)?;
        self.at += 1;
        runnable.contains(&t).then_some(t)
    }
}

/// A violated invariant (or deadlock / failed final check), with the
/// interleaving that reached it.
#[derive(Debug)]
pub struct Violation {
    pub msg: String,
    /// Thread ids, in step order, from the initial state.
    pub trace: Vec<usize>,
}

impl Violation {
    /// Pretty-prints the counterexample by replaying the trace.
    pub fn render<M: Model>(&self, init: &M) -> String {
        let mut out = String::new();
        let mut m = init.clone();
        for (i, &tid) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "    {:>2}. {}: {}\n",
                i + 1,
                m.thread_name(tid),
                m.step_label(tid)
            ));
            m.step(tid);
        }
        out.push_str(&format!("    => {}\n", self.msg));
        out
    }
}

/// What an exhaustive run covered.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Distinct reachable states (invariant checked in each).
    pub states: u64,
    /// Distinct complete interleavings (schedules) those states admit.
    pub interleavings: u128,
    /// Longest schedule, in steps.
    pub max_depth: usize,
}

/// Runnable threads of `m`, sorted.
fn runnable<M: Model>(m: &M) -> Vec<usize> {
    (0..m.threads())
        .filter(|&t| !m.done(t) && m.enabled(t))
        .collect()
}

/// Runs one schedule under `sched`, checking the invariant after every
/// step. Returns the final model (which may be mid-protocol if the
/// sched stopped early).
pub fn run<M: Model, S: Sched>(mut m: M, sched: &mut S) -> Result<M, Violation> {
    let mut trace = Vec::new();
    loop {
        m.invariant().map_err(|msg| Violation {
            msg,
            trace: trace.clone(),
        })?;
        let r = runnable(&m);
        if r.is_empty() {
            break;
        }
        let Some(t) = sched.pick(&r) else { break };
        m.step(t);
        trace.push(t);
    }
    Ok(m)
}

/// Exhaustively explores every interleaving of `init`, checking the
/// invariant in every reachable state, the final check in every
/// terminal state, and treating deadlock as a violation.
pub fn explore<M: Model>(init: &M) -> Result<Stats, Violation> {
    let mut stats = Stats::default();
    let mut memo: HashMap<M, u128> = HashMap::new();
    let mut on_stack: HashSet<M> = HashSet::new();
    let mut trace = Vec::new();
    stats.interleavings = dfs(init, &mut memo, &mut on_stack, &mut trace, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    m: &M,
    memo: &mut HashMap<M, u128>,
    on_stack: &mut HashSet<M>,
    trace: &mut Vec<usize>,
    stats: &mut Stats,
) -> Result<u128, Violation> {
    if let Some(&n) = memo.get(m) {
        stats.max_depth = stats.max_depth.max(trace.len());
        return Ok(n);
    }
    if !on_stack.insert(m.clone()) {
        // A cycle would mean a schedule that never terminates; the
        // protocols here are all finite, so this is a model bug.
        return Err(Violation {
            msg: "cycle in model state graph (non-terminating schedule)".to_string(),
            trace: trace.clone(),
        });
    }
    stats.states += 1;
    stats.max_depth = stats.max_depth.max(trace.len());
    let fail = |msg: String, trace: &[usize]| Violation {
        msg,
        trace: trace.to_vec(),
    };
    if let Err(msg) = m.invariant() {
        return Err(fail(msg, trace));
    }
    let r = runnable(m);
    let paths = if r.is_empty() {
        if (0..m.threads()).all(|t| m.done(t)) {
            if let Err(msg) = m.final_check() {
                return Err(fail(msg, trace));
            }
        } else {
            return Err(fail(m.deadlock_msg(), trace));
        }
        1
    } else {
        let mut total: u128 = 0;
        for t in r {
            let mut next = m.clone();
            next.step(t);
            trace.push(t);
            total = total.saturating_add(dfs(&next, memo, on_stack, trace, stats)?);
            trace.pop();
        }
        total
    };
    on_stack.remove(m);
    memo.insert(m.clone(), paths);
    Ok(paths)
}
