//! A token-level lexer over Rust source, in the spirit of `rustc`'s raw
//! token stream (`rustc_lexer`): no parsing, no spans beyond line
//! numbers, but *correct* tokenization of the constructs that defeat
//! regex-based linting — raw strings, nested block comments, `//` inside
//! string literals, char literals vs lifetimes, raw identifiers.
//!
//! The lint rules in [`crate::lint`] work on this token stream, so a
//! string literal containing `"Ordering::Relaxed"` or a commented-out
//! `unwrap()` can never produce a false positive.

/// What a token is. Comments and whitespace are real tokens here (the
/// annotation rules need to see comments); parsers that don't care
/// filter them out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A numeric literal (integers and floats, any radix).
    Num,
    /// `// …` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, with nesting.
    BlockComment,
    /// A run of whitespace.
    Whitespace,
    /// Any other single character (`{`, `:`, `#`, …).
    Punct,
}

/// One token: kind, byte range into the source, and 1-based line of its
/// first byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Tok {
    /// The token's text within the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a complete token stream (lossless: concatenating all
/// token texts reproduces the input). Malformed input (unterminated
/// strings or comments) is tolerated — the offending token simply runs
/// to end of file — so the linter never panics on a half-written file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            self.toks.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn next_kind(&mut self) -> TokKind {
        let b = self.peek(0);
        match b {
            b if b.is_ascii_whitespace() => {
                while self.peek(0).is_ascii_whitespace() && self.pos < self.src.len() {
                    self.bump();
                }
                TokKind::Whitespace
            }
            b'/' if self.peek(1) == b'/' => {
                while self.pos < self.src.len() && self.peek(0) != b'\n' {
                    self.bump();
                }
                TokKind::LineComment
            }
            b'/' if self.peek(1) == b'*' => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' | b'c' if self.literal_prefix().is_some() => {
                // Split again on what the prefix scan found: raw string,
                // plain string, byte char, or raw identifier.
                match self.literal_prefix() {
                    Some(Prefix::RawStr(hashes)) => self.raw_string(hashes),
                    Some(Prefix::Str) => self.prefixed_string(),
                    Some(Prefix::Char) => self.prefixed_char(),
                    Some(Prefix::RawIdent) => self.raw_ident(),
                    None => unreachable!("guard checked"),
                }
            }
            b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                while is_ident_continue(self.peek(0)) && self.pos < self.src.len() {
                    self.bump();
                }
                TokKind::Ident
            }
            b if b.is_ascii_digit() => self.number(),
            _ => {
                self.bump();
                TokKind::Punct
            }
        }
    }

    fn block_comment(&mut self) -> TokKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// A plain `"…"` string with backslash escapes.
    fn string(&mut self) -> TokKind {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' if self.pos < self.src.len() => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        TokKind::Str
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A quote
    /// followed by an escape is always a char; a quote followed by an
    /// identifier char is a lifetime unless the char after that is a
    /// closing quote.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump();
            if self.pos < self.src.len() {
                self.bump(); // the escaped char
            }
            // Consume to the closing quote ('\u{1F600}' spans bytes).
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.peek(0) == b'\'' {
                self.bump();
            }
            return TokKind::Char;
        }
        if is_ident_start(self.peek(0)) && self.peek(1) != b'\'' {
            // Lifetime or label: 'ident with no closing quote.
            while is_ident_continue(self.peek(0)) && self.pos < self.src.len() {
                self.bump();
            }
            return TokKind::Lifetime;
        }
        // 'x' — any single (possibly multi-byte) char then the quote.
        while self.pos < self.src.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        TokKind::Char
    }

    /// Scans (without consuming) whether the cursor sits on a literal
    /// prefix: `r"`/`r#"` raw strings, `b"`/`br"`/`c"`/`cr#"` variants,
    /// `b'` byte chars, or `r#ident` raw identifiers.
    fn literal_prefix(&self) -> Option<Prefix> {
        let (mut i, first) = (1usize, self.peek(0));
        // Optional second prefix letter: br, cr, rb is not legal but
        // accepting it lints fine.
        let second = self.peek(1);
        let raw = if first == b'r' {
            true
        } else if (first == b'b' || first == b'c') && second == b'r' {
            i = 2;
            true
        } else {
            false
        };
        if raw {
            let mut hashes = 0usize;
            while self.peek(i) == b'#' {
                hashes += 1;
                i += 1;
            }
            if self.peek(i) == b'"' {
                return Some(Prefix::RawStr(hashes));
            }
            if first == b'r' && hashes == 1 && is_ident_start(self.peek(2)) {
                return Some(Prefix::RawIdent);
            }
            return None;
        }
        if (first == b'b' || first == b'c') && second == b'"' {
            return Some(Prefix::Str);
        }
        if first == b'b' && second == b'\'' {
            return Some(Prefix::Char);
        }
        None
    }

    /// `r#…#"…"#…#` with `hashes` hashes. The prefix letters and hashes
    /// are consumed here.
    fn raw_string(&mut self, hashes: usize) -> TokKind {
        while self.peek(0) != b'"' {
            self.bump(); // prefix letters and hashes
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        TokKind::Str
    }

    /// `b"…"` / `c"…"`: consume the prefix letter, then a plain string.
    fn prefixed_string(&mut self) -> TokKind {
        self.bump();
        self.string()
    }

    /// `b'…'`: consume the `b`, then a char literal.
    fn prefixed_char(&mut self) -> TokKind {
        self.bump();
        self.char_or_lifetime();
        TokKind::Char
    }

    /// `r#ident`: consume `r#` and the identifier.
    fn raw_ident(&mut self) -> TokKind {
        self.bump(); // r
        self.bump(); // #
        while is_ident_continue(self.peek(0)) && self.pos < self.src.len() {
            self.bump();
        }
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        // Greedy and permissive: digits, radix prefixes, underscores,
        // `.` followed by a digit, exponents, and type suffixes. The
        // rules never inspect numbers, so permissive is safe.
        self.bump();
        loop {
            let b = self.peek(0);
            if b.is_ascii_alphanumeric() || b == b'_' {
                // An exponent's sign rides with the `e` only inside a
                // number (1e-5); consume it so `-` isn't split off.
                if (b == b'e' || b == b'E') && matches!(self.peek(1), b'+' | b'-') {
                    self.bump();
                }
                self.bump();
            } else if b == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        TokKind::Num
    }
}

enum Prefix {
    RawStr(usize),
    Str,
    Char,
    RawIdent,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// The token stream with whitespace/comments removed, as `(index into
/// the full stream)` — rules that pattern-match code structure use this
/// view, then map back for line numbers and adjacent-comment checks.
pub fn code_indices(toks: &[Tok]) -> Vec<usize> {
    toks.iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect()
}
