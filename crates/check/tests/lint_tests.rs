//! Rule-level tests for `nvc_check::lint` against synthetic sources —
//! each rule's positive case, negative case, and the token-level
//! immunities (strings, comments, test blocks) regex linting lacks.

use nvc_check::config::Config;
use nvc_check::lint::{is_crate_root, lint_file, FileReport};

fn cfg() -> Config {
    Config::parse(
        r#"
[ratchet]
serve_panic_ceiling = 0

[wallclock]
crates = ["entropy"]

[lock_order]
levels = ["registry", "ring", "conn"]
conn = ["out", "outbox"]
"#,
    )
    .expect("test policy parses")
}

fn lint(rel: &str, src: &str) -> FileReport {
    lint_file(rel, src, &cfg())
}

fn rules(report: &FileReport) -> Vec<&'static str> {
    report.diags.iter().map(|d| d.rule).collect()
}

#[test]
fn unjustified_ordering_is_flagged() {
    let report = lint(
        "crates/x/src/util.rs",
        "fn f(a: &std::sync::atomic::AtomicBool) {\n    a.store(true, Ordering::Relaxed);\n}\n",
    );
    assert_eq!(rules(&report), vec!["order-comment"]);
    assert_eq!(report.diags[0].line, 2);
    assert_eq!(report.ordering_sites, 1);
}

#[test]
fn adjacent_order_comment_covers_the_site() {
    for src in [
        // Line above.
        "fn f() {\n    // order: Relaxed — a statistic.\n    a.store(1, Ordering::Relaxed);\n}\n",
        // Trailing on the same line.
        "fn f() {\n    a.store(1, Ordering::Relaxed); // order: Relaxed — a statistic.\n}\n",
    ] {
        let report = lint("crates/x/src/util.rs", src);
        assert!(rules(&report).is_empty(), "covered site flagged in {src:?}");
        assert_eq!(report.ordering_sites, 1);
    }
}

#[test]
fn multi_line_justifications_cover_via_continuation_lines() {
    // The opener sits 3 lines above the site — too far on its own — but
    // its contiguous continuation lines carry the coverage down.
    let src = "fn f() {\n\
               \x20   // order: AcqRel — the false-to-true edge elects\n\
               \x20   // exactly one waker to unpark the poller; see the\n\
               \x20   // matching Release in drain().\n\
               \x20   a.swap(true, Ordering::AcqRel);\n}\n";
    let report = lint("crates/x/src/util.rs", src);
    assert!(rules(&report).is_empty(), "{:?}", report.diags);

    // A gap in the comment block breaks the chain.
    let src = "fn f() {\n\
               \x20   // order: AcqRel — too far away now.\n\n\n\n\
               \x20   a.swap(true, Ordering::AcqRel);\n}\n";
    let report = lint("crates/x/src/util.rs", src);
    assert_eq!(rules(&report), vec!["order-comment"]);
}

#[test]
fn split_chains_anchor_at_the_statement_not_the_ordering_token() {
    // rustfmt puts the Ordering token 3 lines below the statement start
    // where the justification sits; the anchor keeps it covered.
    let src = "fn f() {\n\
               \x20   // order: Relaxed — a drained statistic.\n\
               \x20   self.inner\n\
               \x20       .depth\n\
               \x20       .fetch_sub(n, Ordering::Relaxed);\n}\n";
    let report = lint("crates/x/src/util.rs", src);
    assert!(rules(&report).is_empty(), "{:?}", report.diags);
}

#[test]
fn non_atomic_orderings_and_quoted_text_are_immune() {
    let src = concat!(
        "fn f(o: std::cmp::Ordering) -> bool {\n",
        "    let s = \"a.load(Ordering::Acquire)\";\n",
        "    // a.load(Ordering::Acquire) — commented out, not code\n",
        "    o == Ordering::Equal && !s.is_empty()\n",
        "}\n",
    );
    let report = lint("crates/x/src/util.rs", src);
    assert!(rules(&report).is_empty(), "{:?}", report.diags);
    assert_eq!(report.ordering_sites, 0, "no atomic site seen at all");
}

#[test]
fn test_modules_are_exempt_from_order_comments() {
    let src = concat!(
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() {\n",
        "        FLAG.store(true, Ordering::SeqCst);\n",
        "    }\n",
        "}\n",
    );
    let report = lint("crates/x/src/util.rs", src);
    assert!(rules(&report).is_empty(), "{:?}", report.diags);
}

#[test]
fn ratchet_counts_only_real_panic_sites_outside_tests() {
    let src = concat!(
        "fn f(v: Option<u32>) -> u32 {\n",
        "    let a = v.unwrap();\n",                 // counted
        "    let b = v.expect(\"reason\");\n",       // counted
        "    let c = v.unwrap_or(0);\n",             // exact-ident: no
        "    let d = v.unwrap_or_else(|| 0);\n",     // exact-ident: no
        "    let s = \"x.unwrap()\"; let _ = s;\n",  // string: no
        "    // x.unwrap() in a comment\n",          // comment: no
        "    if a > 9 { unreachable!(\"nine\") }\n", // counted
        "    a + b + c + d\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { None::<u32>.unwrap(); panic!(\"fine in tests\"); }\n",
        "}\n",
    );
    let report = lint("crates/serve/src/x.rs", src);
    assert_eq!(report.panic_sites, vec![2, 3, 8]);

    // The same file outside crates/serve/src is not ratcheted.
    let report = lint("crates/video/src/x.rs", src);
    assert!(report.panic_sites.is_empty());
}

#[test]
fn wallclock_reads_flag_only_in_deterministic_crates() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    let report = lint("crates/entropy/src/range.rs", src);
    assert_eq!(rules(&report), vec!["wallclock", "wallclock"]);
    // Out-of-scope crate: same code, no finding.
    let report = lint("crates/serve/src/x.rs", src);
    assert!(rules(&report).is_empty());
}

#[test]
fn lock_inversion_is_flagged_and_straight_order_is_not() {
    // `out` (conn, innermost) held via `let`, then `registry`
    // (outermost) acquired inside the same scope: inversion.
    let src = concat!(
        "fn f(&self) {\n",
        "    let g = self.out.lock_clean();\n",
        "    let r = self.registry.lock_clean();\n",
        "    drop((g, r));\n",
        "}\n",
    );
    let report = lint("crates/serve/src/x.rs", src);
    assert_eq!(rules(&report), vec!["lock-order"]);
    assert!(
        report.diags[0].msg.contains("registry"),
        "{}",
        report.diags[0].msg
    );

    // Declared order: clean.
    let src = concat!(
        "fn f(&self) {\n",
        "    let r = self.registry.lock_clean();\n",
        "    let g = self.out.lock_clean();\n",
        "    drop((r, g));\n",
        "}\n",
    );
    assert!(rules(&lint("crates/serve/src/x.rs", src)).is_empty());

    // A statement-temporary guard drops at the `;`: the next statement
    // acquiring an outer lock is NOT an inversion.
    let src = concat!(
        "fn f(&self) {\n",
        "    self.out.lock_clean().push(1);\n",
        "    let r = self.registry.lock_clean();\n",
        "    drop(r);\n",
        "}\n",
    );
    assert!(rules(&lint("crates/serve/src/x.rs", src)).is_empty());

    // A `let`-bound guard releases at the end of its block: a sibling
    // block acquiring the outer lock afterwards is clean.
    let src = concat!(
        "fn f(&self) {\n",
        "    { let g = self.ring.lock_clean(); drop(g); }\n",
        "    let r = self.registry.lock_clean();\n",
        "    drop(r);\n",
        "}\n",
    );
    assert!(rules(&lint("crates/serve/src/x.rs", src)).is_empty());
}

#[test]
fn unclassified_receivers_are_ignored_by_lock_order() {
    let src = "fn f(&self) { let a = self.cache.lock_clean(); let b = self.registry.lock_clean(); drop((a, b)); }\n";
    assert!(rules(&lint("crates/serve/src/x.rs", src)).is_empty());
}

#[test]
fn unsafe_keyword_and_bare_crate_roots_are_flagged() {
    let report = lint(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\nfn f() {}\n",
    );
    assert!(rules(&report).is_empty());

    let report = lint("crates/x/src/lib.rs", "fn f() {}\n");
    assert_eq!(rules(&report), vec!["no-unsafe"]);
    assert_eq!(report.diags[0].line, 1);

    // `unsafe` in code is flagged wherever it appears; `"unsafe"` in a
    // string is not.
    let report = lint(
        "crates/x/src/util.rs",
        "fn f() { let s = \"unsafe\"; let _ = s; unsafe { std::hint::unreachable_unchecked() } }\n",
    );
    assert_eq!(rules(&report), vec!["no-unsafe"]);
}

#[test]
fn crate_root_classification() {
    assert!(is_crate_root("crates/serve/src/lib.rs"));
    assert!(is_crate_root("src/lib.rs"));
    assert!(is_crate_root("crates/bench/src/bin/fanout.rs"));
    assert!(is_crate_root("examples/quickstart.rs"));
    assert!(is_crate_root("crates/check/src/bin/nvc_lint.rs"));
    assert!(!is_crate_root("crates/serve/src/server.rs"));
    assert!(!is_crate_root("crates/serve/src/poll.rs"));
}
