//! Lexer tests over the constructs that defeat regex-based linting:
//! raw strings, nested block comments, `//` inside string literals,
//! char-vs-lifetime disambiguation, prefixed literals, raw identifiers.

use nvc_check::lexer::{code_indices, lex, Tok, TokKind};

/// Concatenating every token's text must reproduce the input byte for
/// byte — the lexer drops nothing, whatever it is fed.
fn assert_lossless(src: &str) {
    let toks = lex(src);
    let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "lexing must be lossless");
}

/// The non-trivia tokens as `(kind, text)` pairs, for compact asserts.
fn code(src: &str) -> Vec<(TokKind, String)> {
    let toks = lex(src);
    code_indices(&toks)
        .into_iter()
        .map(|i| (toks[i].kind, toks[i].text(src).to_string()))
        .collect()
}

fn kinds(src: &str) -> Vec<TokKind> {
    code(src).into_iter().map(|(k, _)| k).collect()
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let src = r##"let s = r#"has " and // inside"#;"##;
    let toks = code(src);
    assert_eq!(
        toks[3],
        (TokKind::Str, r##"r#"has " and // inside"#"##.to_string())
    );
    assert_eq!(toks[4].1, ";");
    assert_lossless(src);

    // More hashes, and a terminator candidate with too few hashes
    // mid-string that must NOT close it.
    let src = r###"r##"ends "# not yet"##"###;
    let toks = code(src);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].0, TokKind::Str);
    assert_eq!(toks[0].1, src);
    assert_lossless(src);
}

#[test]
fn block_comments_nest() {
    let src = "a /* outer /* inner */ still comment */ b";
    let toks = lex(src);
    let comment: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind == TokKind::BlockComment)
        .collect();
    assert_eq!(comment.len(), 1, "one nested comment, not two");
    assert_eq!(
        comment[0].text(src),
        "/* outer /* inner */ still comment */"
    );
    assert_eq!(
        code(src)
            .iter()
            .map(|(_, t)| t.as_str())
            .collect::<Vec<_>>(),
        vec!["a", "b"]
    );
    assert_lossless(src);
}

#[test]
fn slashes_inside_strings_are_not_comments() {
    let src = r#"let url = "http://example//x"; let n = 1;"#;
    let toks = lex(src);
    assert!(
        toks.iter().all(|t| t.kind != TokKind::LineComment),
        "no comment token may come from a string body"
    );
    assert_eq!(code(src)[3].1, r#""http://example//x""#);
    assert_lossless(src);
}

#[test]
fn escaped_quote_does_not_close_a_string() {
    let src = r#""she said \"hi\" // still a string""#;
    let toks = code(src);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].0, TokKind::Str);
    assert_lossless(src);
}

#[test]
fn chars_vs_lifetimes() {
    assert_eq!(
        kinds("'a 'static 'x' '\\n' '\\u{1F600}' b'\\0'"),
        vec![
            TokKind::Lifetime,
            TokKind::Lifetime,
            TokKind::Char,
            TokKind::Char,
            TokKind::Char,
            TokKind::Char,
        ]
    );
    // A labelled loop: label, not an unterminated char literal.
    let src = "'outer: loop { break 'outer; }";
    assert_eq!(kinds(src)[0], TokKind::Lifetime);
    assert_lossless(src);
}

#[test]
fn prefixed_literals() {
    assert_eq!(
        kinds(r##"b"bytes" br#"raw bytes"# c"cstr" b'\xff'"##),
        vec![TokKind::Str, TokKind::Str, TokKind::Str, TokKind::Char]
    );
    // Idents that merely START with the prefix letters stay idents.
    assert_eq!(
        kinds("break crate r b c"),
        vec![TokKind::Ident; 5],
        "prefix letters alone are identifiers"
    );
}

#[test]
fn raw_identifiers_are_idents() {
    let toks = code("let r#match = r#fn;");
    assert_eq!(toks[1], (TokKind::Ident, "r#match".to_string()));
    assert_eq!(toks[3], (TokKind::Ident, "r#fn".to_string()));
}

#[test]
fn numbers_stay_whole() {
    assert_eq!(
        code("1_000 0xFF_u8 2.5e-3 0b1010 1.0f32")
            .iter()
            .map(|(k, _)| *k)
            .collect::<Vec<_>>(),
        vec![TokKind::Num; 5]
    );
    // `1..2` is a range, not a float: the dot must split off.
    let toks = code("1..2");
    assert_eq!(toks[0], (TokKind::Num, "1".to_string()));
    assert_eq!(toks[3], (TokKind::Num, "2".to_string()));
}

#[test]
fn line_numbers_are_one_based_and_track_newlines() {
    let src = "a\nbb\n\n  c /* x\ny */ d";
    let toks = lex(src);
    let lines: Vec<(String, u32)> = code_indices(&toks)
        .into_iter()
        .map(|i| (toks[i].text(src).to_string(), toks[i].line))
        .collect();
    assert_eq!(
        lines,
        vec![
            ("a".to_string(), 1),
            ("bb".to_string(), 2),
            ("c".to_string(), 4),
            // The block comment spans lines 4-5, so `d` is on line 5.
            ("d".to_string(), 5),
        ]
    );
}

#[test]
fn malformed_input_never_panics() {
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated",
        "'",
        "b'",
        "r#",
    ] {
        assert_lossless(src);
    }
}
