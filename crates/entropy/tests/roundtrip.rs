//! Property tests: the entropy stack must be lossless for arbitrary
//! symbol streams, and code length must track model entropy.

use nvc_entropy::container::{read_sections, Section, SectionWriter};
use nvc_entropy::{BitReader, BitWriter, Histogram, LaplaceModel, RangeDecoder, RangeEncoder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any symbol stream under any valid static histogram roundtrips.
    #[test]
    fn range_coder_roundtrips(
        freqs in proptest::collection::vec(1u32..300, 2..24),
        raw_symbols in proptest::collection::vec(0u32..1000, 0..600),
    ) {
        let model = Histogram::from_freqs(&freqs).unwrap();
        let n = model.len() as u32;
        let symbols: Vec<u32> = raw_symbols.iter().map(|s| s % n).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(&model.interval(s), model.total());
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &symbols {
            let f = dec.decode_freq(model.total());
            let (s, iv) = model.lookup(f);
            dec.decode_update(&iv, model.total());
            prop_assert_eq!(s, expect);
        }
    }

    /// Laplace-coded integer streams roundtrip, including clamped values.
    #[test]
    fn laplace_roundtrips(
        b in 0.2f64..8.0,
        max_sym in 4i32..64,
        values in proptest::collection::vec(-200i32..200, 0..400),
    ) {
        let model = LaplaceModel::new(b, max_sym).unwrap();
        let clamped: Vec<i32> = values.iter().map(|&v| model.clamp(v)).collect();
        let mut enc = RangeEncoder::new();
        for &v in &clamped {
            enc.encode(&model.interval(v), model.total());
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &clamped {
            let f = dec.decode_freq(model.total());
            let (v, iv) = model.lookup(f);
            dec.decode_update(&iv, model.total());
            prop_assert_eq!(v, expect);
        }
    }

    /// Measured code length stays within a few percent of the model's
    /// ideal entropy for long streams.
    #[test]
    fn code_length_tracks_entropy(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let model = LaplaceModel::new(1.5, 32).unwrap();
        // Sample from the model itself.
        let total = model.total();
        let mut ideal_bits = 0.0;
        let mut enc = RangeEncoder::new();
        let n = 4000;
        for _ in 0..n {
            let f = rng.gen_range(0..total);
            let (v, _) = model.lookup(f);
            ideal_bits += model.expected_bits(v);
            enc.encode(&model.interval(v), total);
        }
        let actual_bits = (enc.finish().len() * 8) as f64;
        // Range coding overhead is bounded; allow 3% + flush slack.
        prop_assert!(actual_bits <= ideal_bits * 1.03 + 64.0,
            "actual {actual_bits} vs ideal {ideal_bits}");
    }

    /// Bit I/O with mixed fixed-width and Exp-Golomb fields roundtrips.
    #[test]
    fn bit_io_roundtrips(
        fields in proptest::collection::vec((0u32..65536, 1u8..17), 0..100),
        ue_vals in proptest::collection::vec(0u32..10_000, 0..100),
        se_vals in proptest::collection::vec(-5000i32..5000, 0..100),
    ) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v & ((1u32 << n) - 1), n);
        }
        for &v in &ue_vals {
            w.write_ue(v);
        }
        for &v in &se_vals {
            w.write_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            prop_assert_eq!(r.read_bits(n).unwrap(), v & ((1u32 << n) - 1));
        }
        for &v in &ue_vals {
            prop_assert_eq!(r.read_ue().unwrap(), v);
        }
        for &v in &se_vals {
            prop_assert_eq!(r.read_se().unwrap(), v);
        }
    }

    /// Containers with arbitrary payloads roundtrip in order.
    #[test]
    fn container_roundtrips(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..10),
    ) {
        let tags = [Section::Motion, Section::Residual, Section::SideInfo, Section::Intra];
        let mut w = SectionWriter::new();
        for (i, p) in payloads.iter().enumerate() {
            w.push(tags[i % 4], p.clone());
        }
        let bytes = w.finish();
        let sections = read_sections(&bytes).unwrap();
        prop_assert_eq!(sections.len(), payloads.len());
        for (i, (tag, payload)) in sections.iter().enumerate() {
            prop_assert_eq!(*tag, tags[i % 4]);
            prop_assert_eq!(payload, &payloads[i]);
        }
    }
}
