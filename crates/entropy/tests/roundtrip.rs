//! Randomized-but-deterministic tests: the entropy stack must be lossless
//! for arbitrary symbol streams, code length must track model entropy, and
//! the packetized container must reject every corruption it can detect.
//!
//! The workspace's shared SplitMix64 PRNG drives the case generation so
//! the crate needs no external test dependencies.

use nvc_entropy::container::{
    read_sections, split_packets, FrameKind, Packet, Section, SectionWriter, PACKET_HEADER_BYTES,
};
use nvc_entropy::{BitReader, BitWriter, Histogram, LaplaceModel, RangeDecoder, RangeEncoder};
use nvc_tensor::init::SplitMix64;

struct Rng(SplitMix64);

impl Rng {
    fn seeded(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.0.next_u64() % (hi - lo) as u64) as i64
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.0.next_u64() as u8).collect()
    }
}

/// Any symbol stream under any valid static histogram roundtrips.
#[test]
fn range_coder_roundtrips() {
    let mut rng = Rng::seeded(0x5EED_0001);
    for _ in 0..48 {
        let n = rng.range(2, 24) as usize;
        let freqs: Vec<u32> = (0..n).map(|_| rng.range(1, 300) as u32).collect();
        let model = Histogram::from_freqs(&freqs).unwrap();
        let len = rng.range(0, 600) as usize;
        let symbols: Vec<u32> = (0..len).map(|_| rng.range(0, n as i64) as u32).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(&model.interval(s), model.total());
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &symbols {
            let f = dec.decode_freq(model.total());
            let (s, iv) = model.lookup(f);
            dec.decode_update(&iv, model.total());
            assert_eq!(s, expect);
        }
    }
}

/// Laplace-coded integer streams roundtrip, including clamped values.
#[test]
fn laplace_roundtrips() {
    let mut rng = Rng::seeded(0x5EED_0002);
    for _ in 0..48 {
        let b = 0.2 + rng.range(0, 780) as f64 / 100.0;
        let max_sym = rng.range(4, 64) as i32;
        let model = LaplaceModel::new(b, max_sym).unwrap();
        let len = rng.range(0, 400) as usize;
        let clamped: Vec<i32> = (0..len)
            .map(|_| model.clamp(rng.range(-200, 200) as i32))
            .collect();
        let mut enc = RangeEncoder::new();
        for &v in &clamped {
            enc.encode(&model.interval(v), model.total());
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &clamped {
            let f = dec.decode_freq(model.total());
            let (v, iv) = model.lookup(f);
            dec.decode_update(&iv, model.total());
            assert_eq!(v, expect);
        }
    }
}

/// Measured code length stays within a few percent of the model's ideal
/// entropy for long streams.
#[test]
fn code_length_tracks_entropy() {
    for seed in [3u64, 77, 190] {
        let mut rng = Rng::seeded(seed);
        let model = LaplaceModel::new(1.5, 32).unwrap();
        // Sample from the model itself.
        let total = model.total();
        let mut ideal_bits = 0.0;
        let mut enc = RangeEncoder::new();
        let n = 4000;
        for _ in 0..n {
            let f = rng.range(0, total as i64) as u32;
            let (v, _) = model.lookup(f);
            ideal_bits += model.expected_bits(v);
            enc.encode(&model.interval(v), total);
        }
        let actual_bits = (enc.finish().len() * 8) as f64;
        // Range coding overhead is bounded; allow 3% + flush slack.
        assert!(
            actual_bits <= ideal_bits * 1.03 + 64.0,
            "actual {actual_bits} vs ideal {ideal_bits}"
        );
    }
}

/// Bit I/O with mixed fixed-width and Exp-Golomb fields roundtrips.
#[test]
fn bit_io_roundtrips() {
    let mut rng = Rng::seeded(0x5EED_0003);
    for _ in 0..48 {
        let fields: Vec<(u32, u8)> = (0..rng.range(0, 100))
            .map(|_| (rng.range(0, 65536) as u32, rng.range(1, 17) as u8))
            .collect();
        let ue_vals: Vec<u32> = (0..rng.range(0, 100))
            .map(|_| rng.range(0, 10_000) as u32)
            .collect();
        let se_vals: Vec<i32> = (0..rng.range(0, 100))
            .map(|_| rng.range(-5000, 5000) as i32)
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v & ((1u32 << n) - 1), n);
        }
        for &v in &ue_vals {
            w.write_ue(v);
        }
        for &v in &se_vals {
            w.write_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap(), v & ((1u32 << n) - 1));
        }
        for &v in &ue_vals {
            assert_eq!(r.read_ue().unwrap(), v);
        }
        for &v in &se_vals {
            assert_eq!(r.read_se().unwrap(), v);
        }
    }
}

/// Containers with arbitrary payloads roundtrip in order.
#[test]
fn container_roundtrips() {
    let mut rng = Rng::seeded(0x5EED_0004);
    let tags = [
        Section::Motion,
        Section::Residual,
        Section::SideInfo,
        Section::Intra,
    ];
    for _ in 0..48 {
        let payloads: Vec<Vec<u8>> = (0..rng.range(0, 10))
            .map(|_| {
                let len = rng.range(0, 200) as usize;
                rng.bytes(len)
            })
            .collect();
        let mut w = SectionWriter::new();
        for (i, p) in payloads.iter().enumerate() {
            w.push(tags[i % 4], p.clone());
        }
        let bytes = w.finish();
        let sections = read_sections(&bytes).unwrap();
        assert_eq!(sections.len(), payloads.len());
        for (i, (tag, payload)) in sections.iter().enumerate() {
            assert_eq!(*tag, tags[i % 4]);
            assert_eq!(payload, &payloads[i]);
        }
    }
}

/// Frame packets roundtrip through serialization, individually and as a
/// concatenated stream.
#[test]
fn packets_roundtrip() {
    let mut rng = Rng::seeded(0x5EED_0005);
    for _ in 0..48 {
        let n = rng.range(1, 12) as usize;
        let packets: Vec<Packet> = (0..n)
            .map(|i| {
                let kind = if i == 0 {
                    FrameKind::Intra
                } else {
                    FrameKind::Predicted
                };
                let len = rng.range(0, 300) as usize;
                Packet::new(i as u32, kind, rng.bytes(len))
            })
            .collect();
        // Individual roundtrip.
        for p in &packets {
            let bytes = p.to_bytes();
            assert_eq!(bytes.len(), PACKET_HEADER_BYTES + p.payload.len());
            let (back, consumed) = Packet::from_bytes(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(&back, p);
        }
        // Stream roundtrip.
        let stream: Vec<u8> = packets.iter().flat_map(|p| p.to_bytes()).collect();
        let chunks = split_packets(&stream).unwrap();
        assert_eq!(chunks.len(), packets.len());
        for (chunk, p) in chunks.iter().zip(&packets) {
            let (back, _) = Packet::from_bytes(chunk).unwrap();
            assert_eq!(&back, p);
        }
    }
}

/// Every single-byte corruption of a packet is either caught by the CRC /
/// header validation or changes only header fields that are themselves
/// validated downstream — `Packet::from_bytes` never panics and never
/// returns the original payload under a corrupted CRC.
#[test]
fn packet_corruption_is_detected() {
    let mut rng = Rng::seeded(0x5EED_0006);
    let p = Packet::new(3, FrameKind::Predicted, rng.bytes(64));
    let clean = p.to_bytes();

    // Truncation at every possible length fails (except the full length).
    for cut in 0..clean.len() {
        assert!(
            Packet::from_bytes(&clean[..cut]).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }

    // Flip each byte in turn: payload corruption must be caught by the
    // CRC; header corruption must either error or alter header fields
    // without delivering a payload that fails its CRC.
    for i in 0..clean.len() {
        let mut bad = clean.clone();
        bad[i] ^= 0x5A;
        match Packet::from_bytes(&bad) {
            Err(_) => {}
            Ok((q, _)) => {
                // A successful parse under corruption can only happen for
                // header-field bytes (index/kind); the payload must still
                // match its CRC.
                assert_eq!(
                    q.payload, p.payload,
                    "byte {i}: CRC missed payload corruption"
                );
            }
        }
    }
}
