//! Symbol models for the range coder.

use crate::CodingError;

/// Half-open cumulative-frequency interval `[low, high)` of one symbol
/// under a model total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Cumulative frequency below the symbol.
    pub low: u32,
    /// Cumulative frequency including the symbol.
    pub high: u32,
}

/// Frequency-table model over the alphabet `0..n`. Supports both static
/// use and adaptive updating via [`record`](Histogram::record).
///
/// Internally stores raw frequencies plus a running total; totals are
/// halved (floor at 1) when they approach the range coder's limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    freqs: Vec<u32>,
    cum: Vec<u32>, // cum[i] = sum of freqs[0..i]; len = n+1
    dirty: bool,
}

impl Histogram {
    /// Uniform model over `n` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "alphabet must be non-empty");
        Histogram::from_freqs(&vec![1; n]).expect("uniform freqs are valid")
    }

    /// Model with explicit frequencies (all must be ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidModel`] if empty, any frequency is 0,
    /// or the total exceeds the coder limit.
    pub fn from_freqs(freqs: &[u32]) -> Result<Self, CodingError> {
        if freqs.is_empty() {
            return Err(CodingError::InvalidModel {
                reason: "empty alphabet".into(),
            });
        }
        if freqs.contains(&0) {
            return Err(CodingError::InvalidModel {
                reason: "zero frequency".into(),
            });
        }
        let total: u64 = freqs.iter().map(|&f| f as u64).sum();
        if total >= (crate::range::MAX_TOTAL as u64) {
            return Err(CodingError::InvalidModel {
                reason: format!("total {total} exceeds coder limit"),
            });
        }
        let mut h = Histogram {
            freqs: freqs.to_vec(),
            cum: Vec::new(),
            dirty: true,
        };
        h.rebuild();
        Ok(h)
    }

    fn rebuild(&mut self) {
        self.cum.clear();
        self.cum.push(0);
        let mut acc = 0u32;
        for &f in &self.freqs {
            acc += f;
            self.cum.push(acc);
        }
        self.dirty = false;
    }

    /// Alphabet size.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the alphabet is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Total frequency.
    pub fn total(&self) -> u32 {
        *self.cum.last().expect("cum never empty")
    }

    /// Cumulative interval of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn interval(&self, symbol: u32) -> Interval {
        let s = symbol as usize;
        assert!(s < self.freqs.len(), "symbol {symbol} outside alphabet");
        Interval {
            low: self.cum[s],
            high: self.cum[s + 1],
        }
    }

    /// Finds the symbol whose interval contains cumulative frequency `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= total()`.
    pub fn lookup(&self, f: u32) -> (u32, Interval) {
        assert!(f < self.total(), "frequency {f} >= total {}", self.total());
        // Binary search over the cumulative table.
        let mut lo = 0usize;
        let mut hi = self.freqs.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] <= f {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (
            lo as u32,
            Interval {
                low: self.cum[lo],
                high: self.cum[lo + 1],
            },
        )
    }

    /// Adaptive update: increments `symbol`'s frequency by 32, halving the
    /// whole table (floor 1) when the total nears the coder limit.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn record(&mut self, symbol: u32) {
        let s = symbol as usize;
        assert!(s < self.freqs.len(), "symbol {symbol} outside alphabet");
        self.freqs[s] += 32;
        if self.total() as u64 + 32 >= (crate::range::MAX_TOTAL as u64) / 2 {
            for f in &mut self.freqs {
                *f = (*f / 2).max(1);
            }
        }
        self.rebuild();
    }
}

/// Discretized Laplace distribution over integer symbols
/// `[-max_sym, max_sym]` plus a terminal escape bucket for saturated
/// values — the factorized prior used to code quantized latents.
///
/// The probability mass of integer `k` is `∝ exp(−|k|/b)`; masses are
/// quantized to integer frequencies with a floor of 1 so every symbol
/// remains codable.
///
/// # Example
///
/// ```
/// use nvc_entropy::LaplaceModel;
/// let m = LaplaceModel::new(1.5, 32).unwrap();
/// assert!(m.expected_bits(0) < m.expected_bits(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaplaceModel {
    hist: Histogram,
    max_sym: i32,
}

impl LaplaceModel {
    /// Creates a model with scale `b` (larger = flatter) over
    /// `[-max_sym, max_sym]`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidModel`] if `b` is not positive/finite
    /// or `max_sym` is 0 or enormous.
    pub fn new(b: f64, max_sym: i32) -> Result<Self, CodingError> {
        if !(b.is_finite() && b > 0.0) {
            return Err(CodingError::InvalidModel {
                reason: format!("scale {b} must be > 0"),
            });
        }
        if max_sym <= 0 || max_sym > 4096 {
            return Err(CodingError::InvalidModel {
                reason: format!("max symbol {max_sym} outside 1..=4096"),
            });
        }
        let n = (2 * max_sym + 1) as usize;
        // Quantize exp(-|k|/b) onto integer frequencies summing ~2^18.
        let budget = 1u32 << 18;
        let mut weights = Vec::with_capacity(n);
        let mut wsum = 0.0_f64;
        for k in -max_sym..=max_sym {
            let w = (-(k.abs() as f64) / b).exp();
            weights.push(w);
            wsum += w;
        }
        let mut freqs: Vec<u32> = weights
            .iter()
            .map(|w| ((w / wsum) * budget as f64).round().max(1.0) as u32)
            .collect();
        // Keep total under the coder limit (it already is, by budget).
        debug_assert!(freqs.iter().map(|&f| f as u64).sum::<u64>() < (1 << 22));
        // Ensure central symbol dominates ties for determinism.
        let centre = max_sym as usize;
        freqs[centre] = freqs[centre].max(2);
        Ok(LaplaceModel {
            hist: Histogram::from_freqs(&freqs)?,
            max_sym,
        })
    }

    /// Largest representable magnitude; values beyond are clamped by
    /// [`clamp`](Self::clamp).
    pub fn max_symbol(&self) -> i32 {
        self.max_sym
    }

    /// Clamps a raw integer to the representable symbol range.
    pub fn clamp(&self, v: i32) -> i32 {
        v.clamp(-self.max_sym, self.max_sym)
    }

    /// The underlying histogram (symbol `k` maps to index
    /// `k + max_symbol`).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Model total, forwarded from the histogram.
    pub fn total(&self) -> u32 {
        self.hist.total()
    }

    /// Interval of signed value `v` (clamped to range).
    pub fn interval(&self, v: i32) -> Interval {
        let idx = (self.clamp(v) + self.max_sym) as u32;
        self.hist.interval(idx)
    }

    /// Signed value whose interval contains cumulative frequency `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f >= total()`.
    pub fn lookup(&self, f: u32) -> (i32, Interval) {
        let (idx, iv) = self.hist.lookup(f);
        (idx as i32 - self.max_sym, iv)
    }

    /// Ideal code length of value `v` in bits, `−log2 p(v)`.
    pub fn expected_bits(&self, v: i32) -> f64 {
        let iv = self.interval(v);
        let p = (iv.high - iv.low) as f64 / self.total() as f64;
        -p.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_intervals_partition_total() {
        let h = Histogram::from_freqs(&[3, 1, 4, 1, 5]).unwrap();
        assert_eq!(h.total(), 14);
        let mut expect_low = 0;
        for s in 0..5 {
            let iv = h.interval(s);
            assert_eq!(iv.low, expect_low);
            expect_low = iv.high;
        }
        assert_eq!(expect_low, 14);
    }

    #[test]
    fn histogram_lookup_inverts_interval() {
        let h = Histogram::from_freqs(&[3, 1, 4, 1, 5]).unwrap();
        for s in 0..5u32 {
            let iv = h.interval(s);
            for f in iv.low..iv.high {
                let (sym, iv2) = h.lookup(f);
                assert_eq!(sym, s);
                assert_eq!(iv2, iv);
            }
        }
    }

    #[test]
    fn histogram_validation() {
        assert!(Histogram::from_freqs(&[]).is_err());
        assert!(Histogram::from_freqs(&[1, 0, 2]).is_err());
        assert!(Histogram::from_freqs(&[1 << 23]).is_err());
    }

    #[test]
    fn adaptive_update_rescales() {
        let mut h = Histogram::uniform(4);
        for _ in 0..100_000 {
            h.record(2);
        }
        assert!(h.total() < 1 << 22);
        // Symbol 2 dominates.
        let iv = h.interval(2);
        assert!((iv.high - iv.low) as f64 / h.total() as f64 > 0.9);
    }

    #[test]
    fn laplace_is_symmetric_and_peaked() {
        let m = LaplaceModel::new(2.0, 16).unwrap();
        for k in 1..=16 {
            let p_pos = m.interval(k);
            let p_neg = m.interval(-k);
            assert_eq!(p_pos.high - p_pos.low, p_neg.high - p_neg.low, "k={k}");
        }
        let p0 = m.interval(0);
        let p5 = m.interval(5);
        assert!(p0.high - p0.low > p5.high - p5.low);
    }

    #[test]
    fn laplace_clamps_out_of_range() {
        let m = LaplaceModel::new(1.0, 8).unwrap();
        assert_eq!(m.clamp(100), 8);
        assert_eq!(m.clamp(-100), -8);
        assert_eq!(m.interval(100), m.interval(8));
    }

    #[test]
    fn laplace_scale_controls_entropy() {
        let narrow = LaplaceModel::new(0.5, 32).unwrap();
        let wide = LaplaceModel::new(8.0, 32).unwrap();
        // Flatter distribution costs more bits at 0, fewer in the tails.
        assert!(narrow.expected_bits(0) < wide.expected_bits(0));
        assert!(narrow.expected_bits(20) > wide.expected_bits(20));
    }

    #[test]
    fn laplace_validation() {
        assert!(LaplaceModel::new(0.0, 8).is_err());
        assert!(LaplaceModel::new(-1.0, 8).is_err());
        assert!(LaplaceModel::new(f64::NAN, 8).is_err());
        assert!(LaplaceModel::new(1.0, 0).is_err());
        assert!(LaplaceModel::new(1.0, 10_000).is_err());
    }

    #[test]
    fn laplace_lookup_inverts() {
        let m = LaplaceModel::new(1.3, 12).unwrap();
        for v in -12..=12 {
            let iv = m.interval(v);
            let (sym, _) = m.lookup(iv.low);
            assert_eq!(sym, v);
            let (sym2, _) = m.lookup(iv.high - 1);
            assert_eq!(sym2, v);
        }
    }
}
