//! Sectioned bitstream container.
//!
//! A coded frame in the NVC pipeline carries several independent streams
//! (quantized motion latents, quantized residual latents, side
//! information). The container frames them as `[tag: u8][len: u32 LE]
//! [payload]` sections so the decoder can route each stream to its
//! synthesis module, mirroring how the paper's DMA controller distributes
//! "Sparse Index / Intermediate data / Weight" regions.
//!
//! # Example
//!
//! ```
//! use nvc_entropy::container::{Section, SectionWriter, read_sections};
//! # fn main() -> Result<(), nvc_entropy::CodingError> {
//! let mut w = SectionWriter::new();
//! w.push(Section::Motion, vec![1, 2, 3]);
//! w.push(Section::Residual, vec![4]);
//! let bytes = w.finish();
//! let sections = read_sections(&bytes)?;
//! assert_eq!(sections.len(), 2);
//! assert_eq!(sections[0].0, Section::Motion);
//! assert_eq!(sections[1].1, vec![4]);
//! # Ok(())
//! # }
//! ```

use crate::CodingError;

/// Section tags used by the codecs in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Section {
    /// Quantized motion latents.
    Motion,
    /// Quantized residual latents.
    Residual,
    /// Side information (entropy-model parameters, dynamic ranges).
    SideInfo,
    /// Intra-coded (keyframe) payload.
    Intra,
}

impl Section {
    fn tag(self) -> u8 {
        match self {
            Section::Motion => 0x4D,   // 'M'
            Section::Residual => 0x52, // 'R'
            Section::SideInfo => 0x53, // 'S'
            Section::Intra => 0x49,    // 'I'
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodingError> {
        match tag {
            0x4D => Ok(Section::Motion),
            0x52 => Ok(Section::Residual),
            0x53 => Ok(Section::SideInfo),
            0x49 => Ok(Section::Intra),
            other => Err(CodingError::BadContainer { reason: format!("unknown tag 0x{other:02X}") }),
        }
    }
}

/// Accumulates tagged sections into a frame payload.
#[derive(Debug, Clone, Default)]
pub struct SectionWriter {
    bytes: Vec<u8>,
}

impl SectionWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section.
    pub fn push(&mut self, section: Section, payload: Vec<u8>) {
        self.bytes.push(section.tag());
        self.bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(&payload);
    }

    /// Total bytes so far (including section headers).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no sections were pushed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns the framed bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Parses a frame payload back into its sections, in order.
///
/// # Errors
///
/// Returns [`CodingError::BadContainer`] on truncation or unknown tags.
pub fn read_sections(bytes: &[u8]) -> Result<Vec<(Section, Vec<u8>)>, CodingError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 5 > bytes.len() {
            return Err(CodingError::BadContainer { reason: "truncated section header".into() });
        }
        let section = Section::from_tag(bytes[pos])?;
        let len = u32::from_le_bytes(
            bytes[pos + 1..pos + 5].try_into().expect("slice is 4 bytes"),
        ) as usize;
        pos += 5;
        if pos + len > bytes.len() {
            return Err(CodingError::BadContainer {
                reason: format!("section claims {len} bytes, {} remain", bytes.len() - pos),
            });
        }
        out.push((section, bytes[pos..pos + len].to_vec()));
        pos += len;
    }
    Ok(out)
}

/// Finds the first section with the given tag.
///
/// # Errors
///
/// Returns [`CodingError::BadContainer`] if the section is absent (or the
/// container is malformed).
pub fn find_section(bytes: &[u8], section: Section) -> Result<Vec<u8>, CodingError> {
    read_sections(bytes)?
        .into_iter()
        .find(|(s, _)| *s == section)
        .map(|(_, payload)| payload)
        .ok_or_else(|| CodingError::BadContainer { reason: format!("missing section {section:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_sections() {
        let mut w = SectionWriter::new();
        w.push(Section::SideInfo, vec![9; 17]);
        w.push(Section::Motion, vec![1, 2]);
        w.push(Section::Residual, Vec::new());
        let bytes = w.finish();
        let sections = read_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0], (Section::SideInfo, vec![9; 17]));
        assert_eq!(sections[1], (Section::Motion, vec![1, 2]));
        assert_eq!(sections[2], (Section::Residual, Vec::new()));
    }

    #[test]
    fn find_section_locates_payload() {
        let mut w = SectionWriter::new();
        w.push(Section::Motion, vec![5]);
        w.push(Section::Residual, vec![6, 7]);
        let bytes = w.finish();
        assert_eq!(find_section(&bytes, Section::Residual).unwrap(), vec![6, 7]);
        assert!(find_section(&bytes, Section::Intra).is_err());
    }

    #[test]
    fn detects_corruption() {
        let mut w = SectionWriter::new();
        w.push(Section::Motion, vec![1, 2, 3]);
        let mut bytes = w.finish();
        // Truncate payload.
        bytes.pop();
        assert!(read_sections(&bytes).is_err());
        // Unknown tag.
        let bad = vec![0xEE, 0, 0, 0, 0];
        assert!(read_sections(&bad).is_err());
        // Truncated header.
        assert!(read_sections(&[0x4D, 1]).is_err());
    }

    #[test]
    fn empty_container_is_valid() {
        assert!(read_sections(&[]).unwrap().is_empty());
        assert!(SectionWriter::new().is_empty());
    }
}
